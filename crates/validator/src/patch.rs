//! Incremental revalidation over a typed patch stream.
//!
//! A full [`validate_document`](crate::validate_document) pass costs
//! O(document) per mutation — the wrong shape for live editors and
//! in-place views that mutate one node at a time. This module keeps a
//! document **valid by construction** instead: [`IncrementalValidator`]
//! holds a document proven valid once, and every [`DomPatch`] is checked
//! *locally* before it commits — the parent's interned content DFA is
//! resumed at the edit point ([`ContentDfa::resume`]) and stepped only
//! over the affected sibling suffix, attribute and simple-content facets
//! are re-checked only on the touched element, and a freshly spliced
//! subtree is the only thing validated recursively. A patch that would
//! make the document invalid is rejected with **exactly** the
//! [`ValidationError`] list a full pass over the patched tree would
//! produce (same kinds, same spans, same order), and the document is
//! rolled back byte-identically.
//!
//! Why local checking is sound: the held document is always valid, so a
//! full pass over the patched tree can only find errors at the edit
//! locus — the parent's content walk (the DFA is deterministic, so the
//! state before the edit point is exactly the state a from-scratch walk
//! reaches there), the touched element's attributes, the enclosing
//! simple-typed element's text, or the inserted subtree. Everything
//! outside the locus reproduces the previous, error-free run. The
//! differential mutation battery in `tests/tests/patch_prop.rs` holds
//! this equivalence over random patch sequences; `ContentDfa::resume`'s
//! mid-sibling soundness is pinned by `tests/tests/resume_audit.rs`.
//!
//! Resource governance: the session's [`Limits`] bound patch payload
//! size (`max_patch_bytes`), lifetime patch count (`max_patches`),
//! fragment parsing (the full parse-side budget set), insertion depth,
//! and attribute ceilings — each violation is a typed
//! [`PatchError::Resource`], never a panic.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use automata::{ContentDfa, Matcher};
use dom::{Document, NodeId, NodeKind};
use limits::{Limits, ResourceErrorKind};
use schema::{CompiledSchema, ContentPlan, ElemPlan, RootPlan, TypeRef};
use symbols::Sym;

use crate::error::{ValidationError, ValidationErrorKind};
use crate::{cap_errors, check_attributes_declared, node_span, record_errors, validate_element};
use crate::{validate_document_with_limits, validate_simple_element};

/// Addresses a node as child indexes from the document node: `[]` is the
/// document node itself, `[0]` its first child (usually the root
/// element), `[0, 2]` the root's third child, and so on. Indexes count
/// *all* node kinds — text, comments, and processing instructions
/// included — in document order.
pub type NodePath = Vec<usize>;

/// A node to splice into the document, supplied by value so patches can
/// travel over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NewNode {
    /// An element subtree, given as fragment markup (one element,
    /// optionally surrounded by whitespace). Parsed under the session's
    /// [`Limits`]; nodes imported from a fragment carry no source spans,
    /// exactly like programmatically built nodes.
    Element {
        /// The fragment markup.
        xml: String,
    },
    /// A text node with this (unescaped) character data.
    Text(String),
    /// A comment node. The content must be serializable as a comment:
    /// no `--`, no trailing `-`.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// The PI target (an XML name, not `xml`).
        target: String,
        /// The PI data (must not contain `?>`).
        data: String,
    },
}

/// One typed mutation of the held document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomPatch {
    /// Replaces the character data of the text node at `at`.
    SetText {
        /// Path to a text node.
        at: NodePath,
        /// The new character data.
        text: String,
    },
    /// Sets (or replaces) an attribute on the element at `at`.
    SetAttr {
        /// Path to an element.
        at: NodePath,
        /// Attribute name.
        name: String,
        /// Attribute value.
        value: String,
    },
    /// Removes an attribute from the element at `at`. Removing an absent
    /// attribute is a [`PatchError::Structure`] error.
    RemoveAttr {
        /// Path to an element.
        at: NodePath,
        /// Attribute name.
        name: String,
    },
    /// Appends `child` as the last child of the container at `at`.
    AppendChild {
        /// Path to an element (or the document node).
        at: NodePath,
        /// The node to append.
        child: NewNode,
    },
    /// Inserts `child` at `index` among the children of `at`.
    InsertChild {
        /// Path to an element (or the document node).
        at: NodePath,
        /// Insertion position, `0..=child_count`.
        index: usize,
        /// The node to insert.
        child: NewNode,
    },
    /// Removes (and frees) the child at `index` of `at`.
    RemoveChild {
        /// Path to an element (or the document node).
        at: NodePath,
        /// Position of the child to remove.
        index: usize,
    },
    /// Replaces the child at `index` of `at` with `child`.
    ReplaceChild {
        /// Path to an element (or the document node).
        at: NodePath,
        /// Position of the child to replace.
        index: usize,
        /// The replacement node.
        child: NewNode,
    },
}

impl DomPatch {
    /// A stable name for this operation — the `op` label of the session
    /// metrics.
    pub fn op_name(&self) -> &'static str {
        match self {
            DomPatch::SetText { .. } => "set_text",
            DomPatch::SetAttr { .. } => "set_attr",
            DomPatch::RemoveAttr { .. } => "remove_attr",
            DomPatch::AppendChild { .. } => "append_child",
            DomPatch::InsertChild { .. } => "insert_child",
            DomPatch::RemoveChild { .. } => "remove_child",
            DomPatch::ReplaceChild { .. } => "replace_child",
        }
    }

    /// The raw byte size of the patch's variable payload — what
    /// `Limits::max_patch_bytes` is checked against.
    pub fn payload_bytes(&self) -> usize {
        match self {
            DomPatch::SetText { text, .. } => text.len(),
            DomPatch::SetAttr { name, value, .. } => name.len() + value.len(),
            DomPatch::RemoveAttr { name, .. } => name.len(),
            DomPatch::AppendChild { child, .. }
            | DomPatch::InsertChild { child, .. }
            | DomPatch::ReplaceChild { child, .. } => match child {
                NewNode::Element { xml } => xml.len(),
                NewNode::Text(t) => t.len(),
                NewNode::Comment(c) => c.len(),
                NewNode::Pi { target, data } => target.len() + data.len(),
            },
            DomPatch::RemoveChild { .. } => 0,
        }
    }
}

/// Why a patch did not commit. In every case the held document is
/// untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// The patch applies structurally but would make the document
    /// invalid. The list is exactly what [`crate::validate_document`]
    /// would report on the patched tree.
    Invalid(Vec<ValidationError>),
    /// The patch does not apply to this document at all: bad path, wrong
    /// node kind, index out of bounds, malformed name, content that
    /// cannot round-trip through serialization. Not a validity question.
    Structure(String),
    /// A [`NewNode::Element`] fragment failed to parse.
    Fragment(String),
    /// A resource budget tripped; the patch was refused, not disproven.
    Resource(ResourceErrorKind),
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::Invalid(errors) => {
                write!(f, "patch rejected: {} violation(s)", errors.len())?;
                if let Some(first) = errors.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            PatchError::Structure(msg) => write!(f, "patch does not apply: {msg}"),
            PatchError::Fragment(msg) => write!(f, "fragment does not parse: {msg}"),
            PatchError::Resource(kind) => write!(f, "patch refused: {kind}"),
        }
    }
}

impl std::error::Error for PatchError {}

fn structure(msg: impl Into<String>) -> PatchError {
    PatchError::Structure(msg.into())
}

/// Resolves a [`NodePath`] against `doc`, starting at the document node.
fn node_at(doc: &Document, path: &[usize]) -> Result<NodeId, PatchError> {
    let mut cur = doc.document_node();
    for (depth, &idx) in path.iter().enumerate() {
        let children = doc
            .child_slice(cur)
            .map_err(|e| structure(format!("path step {depth}: {e}")))?;
        cur = *children.get(idx).ok_or_else(|| {
            structure(format!(
                "path step {depth}: index {idx} out of bounds ({} children)",
                children.len()
            ))
        })?;
    }
    Ok(cur)
}

fn require_xml_chars(what: &str, s: &str) -> Result<(), PatchError> {
    match s.chars().find(|&c| !xmlchars::is_xml_char(c)) {
        Some(c) => Err(structure(format!(
            "{what} contains U+{:04X}, which is not an XML character",
            c as u32
        ))),
        None => Ok(()),
    }
}

/// Builds a detached [`NewNode`] inside `doc`, enforcing the payload
/// preconditions that keep the document serializable: XML characters
/// only, comment/PI content that round-trips, fragments parsed under
/// `limits`.
fn materialize(doc: &mut Document, node: &NewNode, limits: &Limits) -> Result<NodeId, PatchError> {
    match node {
        NewNode::Element { xml } => {
            let (frag, frag_root) =
                xmlparse::parse_fragment_with_limits(xml, limits).map_err(|e| match e.kind {
                    xmlparse::ParseErrorKind::Resource(kind) => PatchError::Resource(kind),
                    _ => PatchError::Fragment(e.to_string()),
                })?;
            doc.import_subtree(&frag, frag_root)
                .map_err(|e| structure(format!("import failed: {e}")))
        }
        NewNode::Text(t) => {
            require_xml_chars("text", t)?;
            Ok(doc.create_text(t.clone()))
        }
        NewNode::Comment(c) => {
            require_xml_chars("comment", c)?;
            if c.contains("--") || c.ends_with('-') {
                return Err(structure(
                    "comment content cannot contain `--` or end with `-`",
                ));
            }
            Ok(doc.create_comment(c.clone()))
        }
        NewNode::Pi { target, data } => {
            require_xml_chars("processing-instruction data", data)?;
            if target.eq_ignore_ascii_case("xml") {
                return Err(structure("`xml` is a reserved PI target"));
            }
            if data.contains("?>") {
                return Err(structure("processing-instruction data cannot contain `?>`"));
            }
            doc.create_pi(target.clone(), data.clone())
                .map_err(|e| structure(format!("{e}")))
        }
    }
}

/// Applies `patch` to a bare document with **no validation** — the
/// structural mutation alone, with fragments parsed unbounded. The
/// differential battery uses this to build the patched tree
/// independently and compare a full pass against the incremental
/// verdict; it is also the reference semantics for what each patch
/// *does*.
pub fn apply_unchecked(doc: &mut Document, patch: &DomPatch) -> Result<(), PatchError> {
    let unbounded = Limits::unbounded();
    match patch {
        DomPatch::SetText { at, text } => {
            let node = node_at(doc, at)?;
            if !matches!(doc.kind(node), Ok(NodeKind::Text(_))) {
                return Err(structure("SetText target is not a text node"));
            }
            require_xml_chars("text", text)?;
            doc.set_text(node, text.clone())
                .map_err(|e| structure(format!("{e}")))
        }
        DomPatch::SetAttr { at, name, value } => {
            let node = node_at(doc, at)?;
            require_xml_chars("attribute value", value)?;
            doc.set_attribute(node, name.clone(), value.clone())
                .map_err(|e| structure(format!("{e}")))
        }
        DomPatch::RemoveAttr { at, name } => {
            let node = node_at(doc, at)?;
            match doc.remove_attribute(node, name) {
                Ok(Some(_)) => Ok(()),
                Ok(None) => Err(structure(format!("no attribute named `{name}`"))),
                Err(e) => Err(structure(format!("{e}"))),
            }
        }
        DomPatch::AppendChild { at, child } => {
            let parent = node_at(doc, at)?;
            let index = doc
                .child_count(parent)
                .map_err(|e| structure(format!("{e}")))?;
            insert_unchecked(doc, parent, index, child, &unbounded)
        }
        DomPatch::InsertChild { at, index, child } => {
            let parent = node_at(doc, at)?;
            insert_unchecked(doc, parent, *index, child, &unbounded)
        }
        DomPatch::RemoveChild { at, index } => {
            let parent = node_at(doc, at)?;
            let target = child_at(doc, parent, *index)?;
            doc.remove(target).map_err(|e| structure(format!("{e}")))
        }
        DomPatch::ReplaceChild { at, index, child } => {
            let parent = node_at(doc, at)?;
            let target = child_at(doc, parent, *index)?;
            doc.detach(target).map_err(|e| structure(format!("{e}")))?;
            match insert_unchecked(doc, parent, *index, child, &unbounded) {
                Ok(()) => doc.remove(target).map_err(|e| structure(format!("{e}"))),
                Err(e) => {
                    // restore the original child before reporting
                    let _ = doc.insert_child(parent, *index, target);
                    Err(e)
                }
            }
        }
    }
}

fn child_at(doc: &Document, parent: NodeId, index: usize) -> Result<NodeId, PatchError> {
    let children = doc
        .child_slice(parent)
        .map_err(|e| structure(format!("{e}")))?;
    children.get(index).copied().ok_or_else(|| {
        structure(format!(
            "index {index} out of bounds ({} children)",
            children.len()
        ))
    })
}

fn insert_unchecked(
    doc: &mut Document,
    parent: NodeId,
    index: usize,
    child: &NewNode,
    limits: &Limits,
) -> Result<(), PatchError> {
    if parent == doc.document_node() && matches!(child, NewNode::Text(_)) {
        return Err(structure("text is not allowed at document level"));
    }
    let new = materialize(doc, child, limits)?;
    match doc.insert_child(parent, index, new) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = doc.remove(new);
            Err(structure(format!("{e}")))
        }
    }
}

/// How the edit parent validates its children — resolved per patch by
/// walking the target's ancestor chain through the schema's
/// [`SymIndex`](schema::SymIndex) plans.
enum ParentCtx {
    /// The document node: root-declaration rules apply.
    Document,
    /// Simple (text-only) content of this type.
    Simple(TypeRef),
    /// Complex content stepped by the type's interned DFA.
    Complex {
        type_sym: Sym,
        dfa: Arc<ContentDfa>,
        mixed: bool,
    },
}

/// What a child-list patch did, for the suffix walk and the rollback.
enum ChildOp<'a> {
    Insert { index: usize, child: &'a NewNode },
    Remove { index: usize },
    Replace { index: usize, child: &'a NewNode },
}

/// A validated document plus everything needed to revalidate patches in
/// O(affected siblings): per-parent DFA state snapshots (the state
/// *before* every child slot), resolved through the schema's interned
/// plans. See the module docs for the soundness argument.
pub struct IncrementalValidator {
    compiled: CompiledSchema,
    doc: Document,
    limits: Limits,
    /// For each complex-content parent that has been edited: the DFA
    /// state before each child slot plus the final state
    /// (`len == child_count + 1`). Built lazily on first edit, spliced
    /// on every commit. Stale ids from freed subtrees can never collide
    /// with live ones (the arena bumps generations on free).
    states: HashMap<NodeId, Vec<usize>>,
    patches_seen: u64,
    applied: u64,
    rejected: u64,
    last_nodes_rechecked: usize,
}

impl fmt::Debug for IncrementalValidator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IncrementalValidator")
            .field("nodes", &self.doc.len())
            .field("applied", &self.applied)
            .field("rejected", &self.rejected)
            .finish_non_exhaustive()
    }
}

impl IncrementalValidator {
    /// Takes ownership of `doc` after proving it valid under
    /// [`Limits::default`]. Returns the violations if it is not.
    pub fn new(compiled: CompiledSchema, doc: Document) -> Result<Self, Vec<ValidationError>> {
        IncrementalValidator::with_limits(compiled, doc, Limits::default())
    }

    /// [`new`](Self::new) under an explicit session budget: the initial
    /// full pass, every fragment parse, and every patch run under
    /// `limits`.
    pub fn with_limits(
        compiled: CompiledSchema,
        doc: Document,
        limits: Limits,
    ) -> Result<Self, Vec<ValidationError>> {
        let errors = validate_document_with_limits(&compiled, &doc, &limits);
        if !errors.is_empty() {
            return Err(errors);
        }
        Ok(IncrementalValidator {
            compiled,
            doc,
            limits,
            states: HashMap::new(),
            patches_seen: 0,
            applied: 0,
            rejected: 0,
            last_nodes_rechecked: 0,
        })
    }

    /// The held document — always valid.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The schema the document validates against.
    pub fn schema(&self) -> &CompiledSchema {
        &self.compiled
    }

    /// The session budget.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Nodes re-checked by the most recent [`apply`](Self::apply) —
    /// suffix slots walked plus inserted-subtree nodes validated. The
    /// wide-event `nodes_rechecked` field; divide by
    /// [`node_count`](Self::node_count) for the locality ratio B16
    /// reports.
    pub fn nodes_rechecked(&self) -> usize {
        self.last_nodes_rechecked
    }

    /// Live nodes in the held document (including the document node).
    pub fn node_count(&self) -> usize {
        self.doc.len()
    }

    /// Patches committed so far.
    pub fn applied_total(&self) -> u64 {
        self.applied
    }

    /// Patches rejected so far (validity, structure, or resource).
    pub fn rejected_total(&self) -> u64 {
        self.rejected
    }

    /// Applies one patch: checks the session budget, applies the
    /// mutation, revalidates the edit locus, and either commits or rolls
    /// back. On any `Err` the document is exactly as it was.
    pub fn apply(&mut self, patch: &DomPatch) -> Result<(), PatchError> {
        self.last_nodes_rechecked = 0;
        self.patches_seen = self.patches_seen.saturating_add(1);
        let result = self.apply_governed(patch);
        match &result {
            Ok(()) => self.applied += 1,
            Err(e) => {
                self.rejected += 1;
                if let PatchError::Invalid(errors) = e {
                    record_errors("patch", errors);
                }
            }
        }
        result
    }

    fn apply_governed(&mut self, patch: &DomPatch) -> Result<(), PatchError> {
        if let Some(kind) = self.limits.expired_kind() {
            limits::record_trip(&kind);
            return Err(PatchError::Resource(kind));
        }
        if self.patches_seen > self.limits.max_patches {
            let kind = ResourceErrorKind::TooManyPatches {
                limit: self.limits.max_patches,
            };
            limits::record_trip(&kind);
            return Err(PatchError::Resource(kind));
        }
        let payload = patch.payload_bytes();
        if payload > self.limits.max_patch_bytes {
            let kind = ResourceErrorKind::PatchTooLarge {
                limit: self.limits.max_patch_bytes,
                actual: payload,
            };
            limits::record_trip(&kind);
            return Err(PatchError::Resource(kind));
        }
        match patch {
            DomPatch::SetText { at, text } => self.set_text(at, text),
            DomPatch::SetAttr { at, name, value } => self.set_attr(at, name, Some(value)),
            DomPatch::RemoveAttr { at, name } => self.set_attr(at, name, None),
            DomPatch::AppendChild { at, child } => {
                let parent = node_at(&self.doc, at)?;
                let index = self
                    .doc
                    .child_count(parent)
                    .map_err(|e| structure(format!("{e}")))?;
                self.child_list_patch(parent, ChildOp::Insert { index, child })
            }
            DomPatch::InsertChild { at, index, child } => {
                let parent = node_at(&self.doc, at)?;
                self.child_list_patch(
                    parent,
                    ChildOp::Insert {
                        index: *index,
                        child,
                    },
                )
            }
            DomPatch::RemoveChild { at, index } => {
                let parent = node_at(&self.doc, at)?;
                self.child_list_patch(parent, ChildOp::Remove { index: *index })
            }
            DomPatch::ReplaceChild { at, index, child } => {
                let parent = node_at(&self.doc, at)?;
                self.child_list_patch(
                    parent,
                    ChildOp::Replace {
                        index: *index,
                        child,
                    },
                )
            }
        }
    }

    // ---- plan resolution ------------------------------------------------

    /// The open plan for an element of the held (valid) document,
    /// resolved by walking its ancestor chain through the `SymIndex`.
    /// O(depth); failures are defensive — they cannot occur for elements
    /// of a valid document.
    fn elem_plan(&self, node: NodeId) -> Result<Arc<ElemPlan>, PatchError> {
        let mut chain = Vec::new();
        let mut cur = node;
        let doc_node = self.doc.document_node();
        while cur != doc_node {
            chain.push(cur);
            cur = self
                .doc
                .parent(cur)
                .map_err(|e| structure(format!("{e}")))?
                .ok_or_else(|| structure("node is detached"))?;
        }
        chain.reverse();
        let index = self.compiled.sym_index();
        let mut plan: Option<Arc<ElemPlan>> = None;
        for &n in &chain {
            let tag = self
                .doc
                .tag_name(n)
                .map_err(|_| structure("path traverses a non-element node"))?;
            let sym = symbols::lookup(tag)
                .ok_or_else(|| structure(format!("element `{tag}` is not schema-tracked")))?;
            plan = Some(match plan {
                None => match index.root(sym) {
                    Some(RootPlan::Elem(p)) => p.clone(),
                    _ => return Err(structure(format!("`{tag}` is not a concrete root plan"))),
                },
                Some(p) => {
                    let type_sym = match &p.content {
                        ContentPlan::Complex { type_sym, .. } => *type_sym,
                        _ => {
                            return Err(structure(format!(
                                "`{tag}`'s parent does not admit element children"
                            )))
                        }
                    };
                    match index.child(type_sym, sym) {
                        Some(p) => p.clone(),
                        None => {
                            return Err(structure(format!(
                                "no plan for `{tag}` under its parent type"
                            )))
                        }
                    }
                }
            });
        }
        plan.ok_or_else(|| structure("the document node has no element plan"))
    }

    fn parent_ctx(&self, parent: NodeId) -> Result<ParentCtx, PatchError> {
        if parent == self.doc.document_node() {
            return Ok(ParentCtx::Document);
        }
        let plan = self.elem_plan(parent)?;
        match &plan.content {
            ContentPlan::Simple(type_ref) => Ok(ParentCtx::Simple(type_ref.clone())),
            ContentPlan::Complex {
                type_sym,
                dfa,
                mixed,
            } => Ok(ParentCtx::Complex {
                type_sym: *type_sym,
                dfa: dfa.clone(),
                mixed: *mixed,
            }),
            ContentPlan::Broken(_) | ContentPlan::Unknown(_) => Err(structure(
                "parent's content model is unusable (cannot occur in a valid document)",
            )),
        }
    }

    // ---- DFA state snapshots --------------------------------------------

    /// The per-slot DFA states for `parent`, built on first use by one
    /// full walk over its (pre-edit, valid) child list. `result[i]` is
    /// the state before slot `i`; the last entry is the final (always
    /// accepting) state.
    fn ensure_states(&mut self, parent: NodeId, dfa: &Arc<ContentDfa>) -> Vec<usize> {
        let IncrementalValidator { states, doc, .. } = self;
        states
            .entry(parent)
            .or_insert_with(|| {
                let children = doc.child_vec(parent).unwrap_or_default();
                let mut v = Vec::with_capacity(children.len() + 1);
                let mut m = dfa.start();
                v.push(m.state());
                for child in children {
                    if let Ok(NodeKind::Element { name, .. }) = doc.kind(child) {
                        // the held document is valid: every step succeeds
                        let _ = m.step(name);
                    }
                    v.push(m.state());
                }
                v
            })
            .clone()
    }

    /// Drops state snapshots for every node of a subtree about to be
    /// freed (the ids die with it; this only bounds map growth).
    fn evict_subtree(&mut self, node: NodeId) {
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            self.states.remove(&n);
            if let Ok(children) = self.doc.child_vec(n) {
                stack.extend(children);
            }
        }
    }

    // ---- SetText ---------------------------------------------------------

    fn set_text(&mut self, at: &[usize], text: &str) -> Result<(), PatchError> {
        let node = node_at(&self.doc, at)?;
        let old = match self.doc.kind(node) {
            Ok(NodeKind::Text(t)) => t.clone(),
            _ => return Err(structure("SetText target is not a text node")),
        };
        require_xml_chars("text", text)?;
        let parent = self
            .doc
            .parent(node)
            .map_err(|e| structure(format!("{e}")))?
            .ok_or_else(|| structure("text node is detached"))?;
        if parent == self.doc.document_node() {
            return Err(structure("text is not allowed at document level"));
        }
        let ctx = self.parent_ctx(parent)?;
        self.doc
            .set_text(node, text)
            .map_err(|e| structure(format!("{e}")))?;
        let mut errors = Vec::new();
        match ctx {
            ParentCtx::Simple(type_ref) => {
                validate_simple_element(&self.compiled, &self.doc, parent, &type_ref, &mut errors);
            }
            ParentCtx::Complex { mixed: false, .. } => {
                if !text.trim().is_empty() {
                    errors.push(ValidationError::at_opt(
                        ValidationErrorKind::TextNotAllowed {
                            element: self.doc.tag_name(parent).unwrap_or_default().to_string(),
                        },
                        node_span(&self.doc, node),
                    ));
                }
            }
            ParentCtx::Complex { mixed: true, .. } | ParentCtx::Document => {}
        }
        self.last_nodes_rechecked = 1;
        if errors.is_empty() {
            Ok(())
        } else {
            self.doc.set_text(node, old).expect("rollback to old text");
            cap_errors(&mut errors, &self.limits);
            Err(PatchError::Invalid(errors))
        }
    }

    // ---- SetAttr / RemoveAttr --------------------------------------------

    fn set_attr(
        &mut self,
        at: &[usize],
        name: &str,
        value: Option<&str>,
    ) -> Result<(), PatchError> {
        let node = node_at(&self.doc, at)?;
        let saved = self
            .doc
            .attributes(node)
            .map_err(|_| structure("attribute target is not an element"))?
            .to_vec();
        let plan = self.elem_plan(node)?;
        match value {
            Some(value) => {
                require_xml_chars("attribute value", value)?;
                if value.len() > self.limits.max_attr_value_bytes {
                    let kind = ResourceErrorKind::AttributeValueTooLong {
                        limit: self.limits.max_attr_value_bytes,
                        actual: value.len(),
                    };
                    limits::record_trip(&kind);
                    return Err(PatchError::Resource(kind));
                }
                let adds_new = !saved.iter().any(|a| a.name == name);
                if adds_new && saved.len() + 1 > self.limits.max_attributes {
                    let kind = ResourceErrorKind::TooManyAttributes {
                        limit: self.limits.max_attributes,
                    };
                    limits::record_trip(&kind);
                    return Err(PatchError::Resource(kind));
                }
                self.doc
                    .set_attribute(node, name, value)
                    .map_err(|e| structure(format!("{e}")))?;
            }
            None => match self.doc.remove_attribute(node, name) {
                Ok(Some(_)) => {}
                Ok(None) => return Err(structure(format!("no attribute named `{name}`"))),
                Err(e) => return Err(structure(format!("{e}"))),
            },
        }
        let mut errors = Vec::new();
        {
            let element = self.doc.tag_name(node).unwrap_or_default();
            let present: Vec<(&str, &str)> = self
                .doc
                .attributes(node)
                .unwrap_or(&[])
                .iter()
                .map(|a| (a.name.as_str(), a.value.as_str()))
                .collect();
            check_attributes_declared(
                &self.compiled,
                element,
                &present,
                &plan.attrs,
                node_span(&self.doc, node),
                &mut errors,
            );
        }
        self.last_nodes_rechecked = 1;
        if errors.is_empty() {
            Ok(())
        } else {
            self.doc
                .replace_attributes(node, saved)
                .expect("rollback to saved attributes");
            cap_errors(&mut errors, &self.limits);
            Err(PatchError::Invalid(errors))
        }
    }

    // ---- child-list patches ----------------------------------------------

    fn child_list_patch(&mut self, parent: NodeId, op: ChildOp<'_>) -> Result<(), PatchError> {
        let len = self
            .doc
            .child_count(parent)
            .map_err(|e| structure(format!("{e}")))?;
        let (index, new_node) = match &op {
            ChildOp::Insert { index, child } => {
                if *index > len {
                    return Err(structure(format!(
                        "index {index} out of bounds ({len} children)"
                    )));
                }
                (*index, Some(*child))
            }
            ChildOp::Remove { index } | ChildOp::Replace { index, .. } => {
                if *index >= len {
                    return Err(structure(format!(
                        "index {index} out of bounds ({len} children)"
                    )));
                }
                let child = match &op {
                    ChildOp::Replace { child, .. } => Some(*child),
                    _ => None,
                };
                (*index, child)
            }
        };
        let ctx = self.parent_ctx(parent)?;
        if matches!(ctx, ParentCtx::Document) && matches!(new_node, Some(NewNode::Text(_))) {
            return Err(structure("text is not allowed at document level"));
        }

        // Snapshot DFA states over the *pre-edit* child list.
        let old_states = match &ctx {
            ParentCtx::Complex { dfa, .. } => {
                let dfa = dfa.clone();
                self.ensure_states(parent, &dfa)
            }
            _ => Vec::new(),
        };

        // Materialize and depth-check the incoming node.
        let new = match new_node {
            Some(n) => {
                let id = materialize(&mut self.doc, n, &self.limits)?;
                if let Err(e) = self.check_insert_depth(parent, id) {
                    let _ = self.doc.remove(id);
                    return Err(e);
                }
                Some(id)
            }
            None => None,
        };

        // Apply the structural mutation (detach only — removal is
        // deferred to commit so rejection can restore it).
        let removed = match &op {
            ChildOp::Insert { .. } => None,
            ChildOp::Remove { index } | ChildOp::Replace { index, .. } => {
                let target = child_at(&self.doc, parent, *index)?;
                self.doc
                    .detach(target)
                    .map_err(|e| structure(format!("{e}")))?;
                Some(target)
            }
        };
        if let Some(id) = new {
            if let Err(e) = self.doc.insert_child(parent, index, id) {
                let _ = self.doc.remove(id);
                if let Some(old) = removed {
                    let _ = self.doc.insert_child(parent, index, old);
                }
                return Err(structure(format!("{e}")));
            }
        }

        // Revalidate the edit locus.
        let (mut errors, trial_states) = match &ctx {
            ParentCtx::Document => (self.recheck_document_level(new), Vec::new()),
            ParentCtx::Simple(type_ref) => {
                let mut errors = Vec::new();
                validate_simple_element(&self.compiled, &self.doc, parent, type_ref, &mut errors);
                self.last_nodes_rechecked = self.doc.child_count(parent).unwrap_or(0).max(1);
                (errors, Vec::new())
            }
            ParentCtx::Complex {
                type_sym,
                dfa,
                mixed,
            } => self.recheck_complex_suffix(parent, &op, index, new, &old_states, {
                ComplexCtx {
                    type_sym: *type_sym,
                    dfa: dfa.clone(),
                    mixed: *mixed,
                }
            }),
        };

        if errors.is_empty() {
            // Commit: splice states, free the detached subtree.
            if matches!(ctx, ParentCtx::Complex { .. }) {
                let mut spliced = old_states[..index].to_vec();
                spliced.extend_from_slice(&trial_states);
                self.states.insert(parent, spliced);
            }
            if let Some(old) = removed {
                self.evict_subtree(old);
                let _ = self.doc.remove(old);
            }
            Ok(())
        } else {
            // Rollback: undo the mutation in reverse order.
            if let Some(id) = new {
                let _ = self.doc.remove(id);
            }
            if let Some(old) = removed {
                self.doc
                    .insert_child(parent, index, old)
                    .expect("rollback reinsert");
            }
            cap_errors(&mut errors, &self.limits);
            Err(PatchError::Invalid(errors))
        }
    }

    /// `max_depth` for an insertion: ancestors of `parent` + the new
    /// subtree's own height must fit the budget, mirroring what the
    /// parse-side governor would reject when the document is re-read.
    fn check_insert_depth(&self, parent: NodeId, new: NodeId) -> Result<(), PatchError> {
        if self.limits.max_depth == usize::MAX {
            return Ok(());
        }
        let mut parent_depth = 0usize;
        let mut cur = parent;
        let doc_node = self.doc.document_node();
        while cur != doc_node {
            parent_depth += 1;
            cur = match self.doc.parent(cur) {
                Ok(Some(p)) => p,
                _ => break,
            };
        }
        // height of the new subtree counting element nesting
        let mut height = 0usize;
        let mut stack = vec![(new, 1usize)];
        while let Some((n, d)) = stack.pop() {
            if matches!(self.doc.kind(n), Ok(NodeKind::Element { .. })) {
                height = height.max(d);
                if let Ok(children) = self.doc.child_vec(n) {
                    stack.extend(children.into_iter().map(|c| (c, d + 1)));
                }
            }
        }
        if parent_depth + height > self.limits.max_depth {
            let kind = ResourceErrorKind::DepthExceeded {
                limit: self.limits.max_depth,
            };
            limits::record_trip(&kind);
            return Err(PatchError::Resource(kind));
        }
        Ok(())
    }

    /// Document-level recheck: reproduces `validate_document`'s root
    /// handling on the (already mutated) top-level child list.
    fn recheck_document_level(&mut self, new: Option<NodeId>) -> Vec<ValidationError> {
        let mut errors = Vec::new();
        self.last_nodes_rechecked = 1;
        match self.doc.root_element() {
            None => errors.push(ValidationError::nowhere(ValidationErrorKind::NoRootElement)),
            Some(root) => {
                // Only a freshly spliced root needs validation; an
                // untouched root is valid by the session invariant.
                if Some(root) == new {
                    let root_name = self.doc.tag_name(root).unwrap_or_default().to_string();
                    match self.compiled.schema().element(&root_name) {
                        Some(decl) => {
                            if decl.is_abstract {
                                errors.push(ValidationError::at_opt(
                                    ValidationErrorKind::AbstractElement(root_name),
                                    node_span(&self.doc, root),
                                ));
                            } else {
                                let type_ref = decl.type_ref.clone();
                                validate_element(
                                    &self.compiled,
                                    &self.doc,
                                    root,
                                    &type_ref,
                                    &mut errors,
                                );
                                self.last_nodes_rechecked = subtree_size(&self.doc, root);
                            }
                        }
                        None => errors.push(ValidationError::at_opt(
                            ValidationErrorKind::UndeclaredRoot(root_name),
                            node_span(&self.doc, root),
                        )),
                    }
                }
            }
        }
        errors
    }

    /// The heart of the tentpole: resume the parent's DFA at the edit
    /// point and walk only the sibling suffix, re-syncing with the old
    /// state snapshot as soon as the automaton provably re-converges.
    /// Returns the locus errors plus the trial state snapshot for slots
    /// `index..` (only meaningful when the errors are empty).
    fn recheck_complex_suffix(
        &mut self,
        parent: NodeId,
        op: &ChildOp<'_>,
        index: usize,
        new: Option<NodeId>,
        old_states: &[usize],
        ctx: ComplexCtx,
    ) -> (Vec<ValidationError>, Vec<usize>) {
        let parent_name = self.doc.tag_name(parent).unwrap_or_default().to_string();
        let type_name = symbols::name(ctx.type_sym);
        let children = self.doc.child_vec(parent).unwrap_or_default();
        let mut matcher = ctx.dfa.resume(old_states[index]);
        let mut content_ok = true;
        let mut errors: Vec<ValidationError> = Vec::new();
        let mut trial: Vec<usize> = Vec::new();
        let mut rechecked = 0usize;
        let mut synced = false;
        // Mapping from a post-edit slot j (past the edit region) to the
        // pre-edit slot whose "state before" it must reproduce.
        let (resync_from, old_of): (usize, fn(usize) -> usize) = match op {
            ChildOp::Insert { .. } => (index + 1, |j| j - 1),
            ChildOp::Remove { .. } => (index, |j| j + 1),
            ChildOp::Replace { .. } => (index + 1, |j| j),
        };
        for (j, &child) in children.iter().enumerate().skip(index) {
            if content_ok && j >= resync_from && matcher.state() == old_states[old_of(j)] {
                // Deterministic DFA + identical suffix ⇒ the rest of the
                // old (error-free, accepting) run replays verbatim.
                trial.extend_from_slice(&old_states[old_of(j)..]);
                synced = true;
                break;
            }
            if !content_ok && errors.is_empty() {
                // cannot happen (content_ok only drops with an error),
                // but keep the invariant obvious
                debug_assert!(false);
            }
            if !content_ok && j >= resync_from {
                // Past the edit region with the DFA already failed: the
                // remaining (unchanged, individually valid) siblings can
                // produce no further errors, and no states are needed
                // because this patch is being rejected.
                break;
            }
            rechecked += 1;
            trial.push(matcher.state());
            match self.doc.kind(child) {
                Ok(NodeKind::Element { name, .. }) => {
                    let name = name.clone();
                    if content_ok {
                        if let Err(e) = matcher.step(&name) {
                            errors.push(ValidationError::at_opt(
                                ValidationErrorKind::UnexpectedChild {
                                    parent: parent_name.clone(),
                                    child: name.clone(),
                                    expected: e.expected,
                                },
                                node_span(&self.doc, child),
                            ));
                            content_ok = false;
                        }
                    }
                    // Recurse only into the freshly spliced subtree;
                    // untouched siblings are valid by the invariant.
                    if Some(child) == new {
                        if let Some(child_type) = self.compiled.child_element_type(type_name, &name)
                        {
                            validate_element(
                                &self.compiled,
                                &self.doc,
                                child,
                                &child_type,
                                &mut errors,
                            );
                            rechecked += subtree_size(&self.doc, child).saturating_sub(1);
                        }
                    }
                }
                Ok(NodeKind::Text(t)) if !ctx.mixed && !t.trim().is_empty() => {
                    errors.push(ValidationError::at_opt(
                        ValidationErrorKind::TextNotAllowed {
                            element: parent_name.clone(),
                        },
                        node_span(&self.doc, child),
                    ));
                }
                _ => {}
            }
            // fix up the recorded state: the entry for slot j must be
            // the state *before* it, which we pushed above; nothing to
            // do here — the next iteration pushes the post-step state.
        }
        if !synced {
            trial.push(matcher.state());
            if content_ok && !matcher.is_accepting() {
                errors.push(ValidationError::at_opt(
                    ValidationErrorKind::IncompleteContent {
                        element: parent_name,
                        expected: matcher.expected(),
                    },
                    node_span(&self.doc, parent),
                ));
            }
        }
        self.last_nodes_rechecked = rechecked.max(1);
        (errors, trial)
    }
}

struct ComplexCtx {
    type_sym: Sym,
    dfa: Arc<ContentDfa>,
    mixed: bool,
}

fn subtree_size(doc: &Document, node: NodeId) -> usize {
    let mut count = 0usize;
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        count += 1;
        if let Ok(children) = doc.child_vec(n) {
            stack.extend(children);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_document;
    use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};

    fn po_session() -> IncrementalValidator {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let doc = xmlparse::parse_document(PURCHASE_ORDER_XML).unwrap();
        IncrementalValidator::new(compiled, doc).unwrap()
    }

    fn path_of(doc: &Document, node: NodeId) -> NodePath {
        let mut path = Vec::new();
        let mut cur = node;
        while let Ok(Some(parent)) = doc.parent(cur) {
            let idx = doc
                .child_slice(parent)
                .unwrap()
                .iter()
                .position(|&c| c == cur)
                .unwrap();
            path.push(idx);
            cur = parent;
        }
        path.reverse();
        path
    }

    #[test]
    fn invalid_document_is_refused_at_open() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let doc = xmlparse::parse_document("<purchaseOrder/>").unwrap();
        let errors = match IncrementalValidator::new(compiled, doc) {
            Err(errors) => errors,
            Ok(_) => panic!("invalid document accepted"),
        };
        assert!(!errors.is_empty());
    }

    #[test]
    fn set_text_accepts_and_rejects_with_full_pass_errors() {
        let mut s = po_session();
        let doc = s.document();
        let root = doc.root_element().unwrap();
        let ship = doc.child_element_named(root, "shipTo").unwrap();
        let zip = doc.child_element_named(ship, "zip").unwrap();
        let text = doc.child_vec(zip).unwrap()[0];
        let at = path_of(doc, text);

        // valid replacement commits
        s.apply(&DomPatch::SetText {
            at: at.clone(),
            text: "12345".into(),
        })
        .unwrap();
        assert_eq!(s.nodes_rechecked(), 1);

        // invalid replacement rejects with the full-pass error
        let before = dom::serialize(s.document(), s.document().document_node()).unwrap();
        let err = s
            .apply(&DomPatch::SetText {
                at,
                text: "not-a-number".into(),
            })
            .unwrap_err();
        let errors = match err {
            PatchError::Invalid(e) => e,
            other => panic!("{other:?}"),
        };
        let mut clone = s.document().clone();
        apply_unchecked(
            &mut clone,
            &DomPatch::SetText {
                at: path_of(s.document(), {
                    let doc = s.document();
                    let root = doc.root_element().unwrap();
                    let ship = doc.child_element_named(root, "shipTo").unwrap();
                    let zip = doc.child_element_named(ship, "zip").unwrap();
                    doc.child_vec(zip).unwrap()[0]
                }),
                text: "not-a-number".into(),
            },
        )
        .unwrap();
        assert_eq!(errors, validate_document(s.schema(), &clone));
        // rejected patch rolled back byte-identically
        let after = dom::serialize(s.document(), s.document().document_node()).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn attr_patch_round_trip() {
        let mut s = po_session();
        let root = s.document().root_element().unwrap();
        let at = path_of(s.document(), root);
        // undeclared attribute rejected, document untouched
        let before = dom::serialize(s.document(), s.document().document_node()).unwrap();
        let err = s
            .apply(&DomPatch::SetAttr {
                at: at.clone(),
                name: "bogus".into(),
                value: "x".into(),
            })
            .unwrap_err();
        assert!(matches!(err, PatchError::Invalid(_)));
        assert_eq!(
            before,
            dom::serialize(s.document(), s.document().document_node()).unwrap()
        );
        // declared attribute accepted
        s.apply(&DomPatch::SetAttr {
            at: at.clone(),
            name: "orderDate".into(),
            value: "2000-01-01".into(),
        })
        .unwrap();
        // removing an optional attribute is fine; removing a missing one
        // is a structure error
        s.apply(&DomPatch::RemoveAttr {
            at: at.clone(),
            name: "orderDate".into(),
        })
        .unwrap();
        let err = s
            .apply(&DomPatch::RemoveAttr {
                at,
                name: "orderDate".into(),
            })
            .unwrap_err();
        assert!(matches!(err, PatchError::Structure(_)));
    }

    #[test]
    fn append_item_is_o_of_one_and_occurrence_errors_match() {
        let mut s = po_session();
        let doc = s.document();
        let root = doc.root_element().unwrap();
        let items = doc.child_element_named(root, "items").unwrap();
        let at = path_of(doc, items);
        let item = NewNode::Element {
            xml: "<item partNum=\"123-AB\"><productName>P</productName>\
                  <quantity>1</quantity><USPrice>9.99</USPrice></item>"
                .to_string(),
        };
        let doc_size = s.node_count();
        s.apply(&DomPatch::AppendChild {
            at: at.clone(),
            child: item.clone(),
        })
        .unwrap();
        // rechecked the appended subtree only, not the document
        assert!(
            s.nodes_rechecked() < doc_size / 2,
            "{}",
            s.nodes_rechecked()
        );

        // a bad item (facet violation inside the subtree) rejects with
        // exactly the full-pass errors
        let bad = NewNode::Element {
            xml: "<item partNum=\"no\"><productName>P</productName>\
                  <quantity>500</quantity><USPrice>9.99</USPrice></item>"
                .to_string(),
        };
        let err = s
            .apply(&DomPatch::AppendChild {
                at: at.clone(),
                child: bad.clone(),
            })
            .unwrap_err();
        let errors = match err {
            PatchError::Invalid(e) => e,
            other => panic!("{other:?}"),
        };
        let mut clone = s.document().clone();
        apply_unchecked(&mut clone, &DomPatch::AppendChild { at, child: bad }).unwrap();
        assert_eq!(errors, validate_document(s.schema(), &clone));
    }

    #[test]
    fn remove_required_child_rejected_and_rolled_back() {
        let mut s = po_session();
        let doc = s.document();
        let root = doc.root_element().unwrap();
        let at = path_of(doc, root);
        let bill_idx = doc
            .child_slice(root)
            .unwrap()
            .iter()
            .position(|&c| doc.tag_name(c).map(|n| n == "billTo").unwrap_or(false))
            .unwrap();
        let before = dom::serialize(doc, doc.document_node()).unwrap();
        let err = s
            .apply(&DomPatch::RemoveChild {
                at: at.clone(),
                index: bill_idx,
            })
            .unwrap_err();
        let errors = match err {
            PatchError::Invalid(e) => e,
            other => panic!("{other:?}"),
        };
        let mut clone = s.document().clone();
        apply_unchecked(
            &mut clone,
            &DomPatch::RemoveChild {
                at,
                index: bill_idx,
            },
        )
        .unwrap();
        assert_eq!(errors, validate_document(s.schema(), &clone));
        assert_eq!(
            before,
            dom::serialize(s.document(), s.document().document_node()).unwrap()
        );
    }

    #[test]
    fn optional_prefix_insert_resyncs() {
        // Remove the optional <comment>, then insert a fresh one just
        // before <items>: both walks resume mid-list, the second one
        // after an optional-particle prefix. A *second* comment must
        // then be rejected (maxOccurs 1), exactly as a full pass would.
        let mut s = po_session();
        let doc = s.document();
        let root = doc.root_element().unwrap();
        let at = path_of(doc, root);
        let comment_idx = doc
            .child_slice(root)
            .unwrap()
            .iter()
            .position(|&c| doc.tag_name(c).map(|n| n == "comment").unwrap_or(false))
            .unwrap();
        s.apply(&DomPatch::RemoveChild {
            at: at.clone(),
            index: comment_idx,
        })
        .unwrap();
        assert!(validate_document(s.schema(), s.document()).is_empty());
        let doc = s.document();
        let items_idx = doc
            .child_slice(root)
            .unwrap()
            .iter()
            .position(|&c| doc.tag_name(c).map(|n| n == "items").unwrap_or(false))
            .unwrap();
        let comment = NewNode::Element {
            xml: "<comment>rush order</comment>".into(),
        };
        s.apply(&DomPatch::InsertChild {
            at: at.clone(),
            index: items_idx,
            child: comment.clone(),
        })
        .unwrap();
        assert!(validate_document(s.schema(), s.document()).is_empty());
        // occurrence overflow at the DFA boundary
        let err = s
            .apply(&DomPatch::InsertChild {
                at,
                index: items_idx,
                child: comment,
            })
            .unwrap_err();
        assert!(matches!(err, PatchError::Invalid(_)));
        assert!(validate_document(s.schema(), s.document()).is_empty());
    }

    #[test]
    fn mixed_content_patches() {
        let compiled = CompiledSchema::parse(WML_XSD).unwrap();
        let doc = xmlparse::parse_document(
            "<wml><card id=\"c\"><p>hello <b>bold</b> world</p></card></wml>",
        )
        .unwrap();
        let mut s = IncrementalValidator::new(compiled, doc).unwrap();
        // text inside mixed content: fine
        let p_path = vec![0, 0, 0];
        s.apply(&DomPatch::AppendChild {
            at: p_path.clone(),
            child: NewNode::Text("!".into()),
        })
        .unwrap();
        // an element the choice group does not admit: rejected
        let err = s
            .apply(&DomPatch::AppendChild {
                at: p_path,
                child: NewNode::Element {
                    xml: "<card/>".into(),
                },
            })
            .unwrap_err();
        assert!(matches!(err, PatchError::Invalid(_)));
    }

    #[test]
    fn root_replacement_and_removal() {
        let mut s = po_session();
        let err = s
            .apply(&DomPatch::RemoveChild {
                at: vec![],
                index: 0,
            })
            .unwrap_err();
        match err {
            PatchError::Invalid(errors) => {
                assert!(matches!(errors[0].kind, ValidationErrorKind::NoRootElement));
                assert_eq!(errors[0].span, None);
            }
            other => panic!("{other:?}"),
        }
        // still intact
        assert!(validate_document(s.schema(), s.document()).is_empty());
        // replacing with an undeclared root rejects
        let err = s
            .apply(&DomPatch::ReplaceChild {
                at: vec![],
                index: 0,
                child: NewNode::Element {
                    xml: "<unknownRoot/>".into(),
                },
            })
            .unwrap_err();
        match err {
            PatchError::Invalid(errors) => {
                assert!(matches!(
                    errors[0].kind,
                    ValidationErrorKind::UndeclaredRoot(_)
                ));
            }
            other => panic!("{other:?}"),
        }
        // comments at document level are unconstrained
        s.apply(&DomPatch::AppendChild {
            at: vec![],
            child: NewNode::Comment(" trailer ".into()),
        })
        .unwrap();
    }

    #[test]
    fn resource_governance() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let doc = xmlparse::parse_document(PURCHASE_ORDER_XML).unwrap();
        let limits = Limits::default()
            .with_max_patch_bytes(16)
            .with_max_patches(2);
        let mut s = IncrementalValidator::with_limits(compiled, doc, limits).unwrap();
        let root = s.document().root_element().unwrap();
        let ship = s.document().child_element_named(root, "shipTo").unwrap();
        let zip = s.document().child_element_named(ship, "zip").unwrap();
        let text = s.document().child_vec(zip).unwrap()[0];
        let at = path_of(s.document(), text);
        // oversized payload
        let err = s
            .apply(&DomPatch::SetText {
                at: at.clone(),
                text: "9".repeat(64),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PatchError::Resource(ResourceErrorKind::PatchTooLarge { .. })
        ));
        // patch-count budget: attempt #2 fits, #3 trips
        s.apply(&DomPatch::SetText {
            at: at.clone(),
            text: "12345".into(),
        })
        .unwrap();
        let err = s
            .apply(&DomPatch::SetText {
                at,
                text: "54321".into(),
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PatchError::Resource(ResourceErrorKind::TooManyPatches { limit: 2 })
        ));
        assert_eq!(s.applied_total(), 1);
        assert_eq!(s.rejected_total(), 2);
    }

    #[test]
    fn malformed_fragment_is_fragment_error() {
        let mut s = po_session();
        let root = s.document().root_element().unwrap();
        let items = s.document().child_element_named(root, "items").unwrap();
        let at = path_of(s.document(), items);
        let err = s
            .apply(&DomPatch::AppendChild {
                at,
                child: NewNode::Element {
                    xml: "<item".into(),
                },
            })
            .unwrap_err();
        assert!(matches!(err, PatchError::Fragment(_)));
    }
}
