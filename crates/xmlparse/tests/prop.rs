//! Property tests for the parser: no panics on arbitrary input, and
//! parse∘serialize is the identity on serializer output.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser must never panic, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = xmlparse::parse_document(&input);
    }

    /// Same for inputs that look like markup.
    #[test]
    fn parser_never_panics_on_markupish(input in "[<>/a-z\"'= &;!?\\-\\[\\]]{0,100}") {
        let _ = xmlparse::parse_document(&input);
    }

    /// Escaped text round-trips through a full parse.
    #[test]
    fn text_roundtrip(text in "[^\\x00-\\x08\\x0b\\x0c\\x0e-\\x1f]{0,40}") {
        let xml = format!("<a>{}</a>", xmlchars::escape_text(&text));
        let doc = xmlparse::parse_document(&xml).unwrap();
        let root = doc.root_element().unwrap();
        prop_assert_eq!(doc.text_content(root).unwrap(), text);
    }

    /// Escaped attribute values round-trip, including whitespace that
    /// attribute-value normalization would otherwise fold.
    #[test]
    fn attribute_roundtrip(value in "[^\\x00-\\x08\\x0b\\x0c\\x0e-\\x1f]{0,30}") {
        let xml = format!("<a v=\"{}\"/>", xmlchars::escape_attribute(&value));
        let doc = xmlparse::parse_document(&xml).unwrap();
        let root = doc.root_element().unwrap();
        prop_assert_eq!(doc.attribute(root, "v").unwrap().unwrap(), value);
    }

    /// Deeply nested documents parse without stack overflow (the tree
    /// builder and serializer are iterative where it matters).
    #[test]
    fn deep_nesting(depth in 1usize..400) {
        let mut xml = String::new();
        for _ in 0..depth {
            xml.push_str("<d>");
        }
        for _ in 0..depth {
            xml.push_str("</d>");
        }
        let doc = xmlparse::parse_document(&xml).unwrap();
        prop_assert_eq!(doc.len(), depth + 1);
    }
}
