//! Parse errors with source positions.

use std::fmt;

use limits::ResourceErrorKind;
use xmlchars::{Position, UnescapeError};

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of.
        context: &'static str,
    },
    /// A character that is not legal XML appeared in the input.
    IllegalChar(char),
    /// Something other than the expected token appeared.
    Expected {
        /// Human description of what was expected.
        what: &'static str,
        /// The character actually found.
        found: char,
    },
    /// A name (tag or attribute) was malformed.
    BadName(String),
    /// An end tag did not match the open start tag.
    MismatchedTag {
        /// Name in the start tag.
        open: String,
        /// Name in the end tag.
        close: String,
    },
    /// An end tag appeared with no element open.
    UnmatchedEndTag(String),
    /// The document ended with elements still open.
    UnclosedElements(Vec<String>),
    /// The same attribute appeared twice on one element.
    DuplicateAttribute(String),
    /// Bad entity or character reference.
    Reference(UnescapeError),
    /// More than one root element, or content after the root.
    TrailingContent,
    /// The document contains no root element.
    NoRootElement,
    /// `--` inside a comment, `]]>` in character data, etc.
    IllegalSequence(&'static str),
    /// DOCTYPE declarations are not supported by this pipeline.
    DoctypeUnsupported,
    /// A resource budget tripped ([`xmlparse::Reader::with_limits`]) —
    /// deliberately distinct from well-formedness errors: the document
    /// was not proven malformed, the parse was *stopped*.
    ///
    /// [`xmlparse::Reader::with_limits`]: crate::Reader::with_limits
    Resource(ResourceErrorKind),
    /// Chunked input ([`crate::FeedReader`]) ended mid-token: the parse
    /// is suspended, not failed — feed more bytes (or call `finish` to
    /// turn a truncated document into a hard error). Never produced by
    /// whole-input readers.
    NeedMoreData,
    /// Chunked input is not valid UTF-8 (whole-input entry points take
    /// `&str`, so only [`crate::FeedReader`] can see raw bytes).
    InvalidUtf8,
}

/// A parse error: kind plus position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where it went wrong.
    pub position: Position,
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, position: Position) -> Self {
        ParseError { kind, position }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.position)
    }
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedEof { context } => {
                write!(f, "unexpected end of input in {context}")
            }
            ParseErrorKind::IllegalChar(c) => write!(f, "illegal XML character {c:?}"),
            ParseErrorKind::Expected { what, found } => {
                write!(f, "expected {what}, found {found:?}")
            }
            ParseErrorKind::BadName(n) => write!(f, "malformed name {n:?}"),
            ParseErrorKind::MismatchedTag { open, close } => {
                write!(f, "end tag </{close}> does not match start tag <{open}>")
            }
            ParseErrorKind::UnmatchedEndTag(n) => write!(f, "end tag </{n}> with no open element"),
            ParseErrorKind::UnclosedElements(names) => {
                write!(
                    f,
                    "input ended with unclosed elements: {}",
                    names.join(", ")
                )
            }
            ParseErrorKind::DuplicateAttribute(n) => write!(f, "duplicate attribute {n:?}"),
            ParseErrorKind::Reference(e) => write!(f, "{e}"),
            ParseErrorKind::TrailingContent => write!(f, "content after document root"),
            ParseErrorKind::NoRootElement => write!(f, "document has no root element"),
            ParseErrorKind::IllegalSequence(s) => write!(f, "illegal sequence {s:?}"),
            ParseErrorKind::DoctypeUnsupported => {
                write!(
                    f,
                    "DOCTYPE declarations are not supported (schema-based pipeline)"
                )
            }
            ParseErrorKind::Resource(kind) => write!(f, "resource budget exceeded: {kind}"),
            ParseErrorKind::NeedMoreData => {
                write!(f, "input chunk ended mid-token; more data required")
            }
            ParseErrorKind::InvalidUtf8 => write!(f, "input is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ParseError {}
