//! The pull reader: a hand-written, position-tracking XML tokenizer with
//! integrated well-formedness checking.
//!
//! The reader is zero-copy: [`Reader::next_event_borrowed`] yields
//! [`BorrowedEvent`]s whose names and text are slices of the input, with
//! `Cow` values that only become owned when entity resolution or
//! attribute-value normalization actually rewrote something. The owned
//! [`Reader::next_event`] is a thin `.into_owned()` over the same stream.
//! Scan loops over character data and attribute values sweep plain ASCII
//! byte-wise (a run of bytes in `0x20..0x80` is a run of one-column
//! characters, so position tracking stays exact) and fall back to
//! per-character decoding only at markup, references, controls, or
//! non-ASCII.

use std::borrow::Cow;

use limits::{Limits, ResourceErrorKind};
use xmlchars::chars::{is_name_char, is_name_start_char, is_xml_char, is_xml_whitespace};
use xmlchars::{unescape, Position, Span, UnescapeError};

use crate::error::{ParseError, ParseErrorKind};
use crate::event::{BorrowedAttribute, BorrowedEvent, Event};

/// The produced event before the attribute buffer is attached — an
/// internal form that does not borrow the reader, so bookkeeping can run
/// between production and hand-off.
enum RawEvent<'src> {
    Start {
        name: &'src str,
        self_closing: bool,
        span: Span,
    },
    End {
        name: &'src str,
        span: Span,
    },
    Text {
        text: Cow<'src, str>,
        span: Span,
    },
    Comment {
        text: &'src str,
        span: Span,
    },
    Pi {
        target: &'src str,
        data: &'src str,
        span: Span,
    },
    Eof,
}

/// A pull parser over a complete in-memory document.
///
/// Call [`Reader::next_event`] (owned) or
/// [`Reader::next_event_borrowed`] (zero-copy) repeatedly until `Eof`.
/// The reader enforces well-formedness: tag nesting, attribute
/// uniqueness, character legality, a single root element, and reference
/// syntax. Errors are fatal; after an error the reader should be
/// discarded.
pub struct Reader<'a> {
    src: &'a str,
    pos: Position,
    /// Stack of open element names (slices of the source) for nesting
    /// checks.
    open: Vec<&'a str>,
    /// Whether the root element has been seen and closed.
    root_closed: bool,
    /// Whether any root element has been opened yet.
    root_seen: bool,
    /// Queued end-element event for self-closing tags.
    pending_end: Option<(&'a str, Span)>,
    /// Reused per-start-tag attribute storage; borrowed events slice it.
    attr_buf: Vec<BorrowedAttribute<'a>>,
    /// Events produced so far (observability; flushed on drop).
    events_seen: u64,
    /// Events whose every string borrowed the source (observability).
    borrowed_events: u64,
    /// Events that needed an owned copy — entity expansion or attribute
    /// normalization rewrote something (observability).
    owned_fallback: u64,
    /// Whether an event ended in a parse error (observability).
    errored: bool,
    /// Resource budgets enforced while parsing ([`Limits::unbounded`]
    /// for [`Reader::new`], so ungoverned callers are byte-identical to
    /// pre-limits behavior).
    limits: Limits,
    /// Entity/character references resolved so far (budget accounting).
    expansions: u64,
    /// Cumulative bytes produced by reference expansion (budget
    /// accounting; the amplification guard).
    expansion_bytes: usize,
    /// Whether the up-front input-size budget has been checked yet.
    input_checked: bool,
}

/// Bytes consumed and events produced flush to the metrics registry once
/// per reader, so the per-event cost of observability is a local `u64`
/// increment and the disabled cost is one atomic load at drop.
impl Drop for Reader<'_> {
    fn drop(&mut self) {
        if !obs::enabled() {
            return;
        }
        let metrics = obs::metrics();
        metrics
            .counter("xmlparse_events_total", "Parser events produced.")
            .inc_by(self.events_seen);
        metrics
            .counter(
                "xmlparse_bytes_total",
                "Source bytes consumed by the parser.",
            )
            .inc_by(self.pos.offset as u64);
        metrics
            .counter(
                "borrowed_events_total",
                "Events whose strings were all zero-copy slices of the source.",
            )
            .inc_by(self.borrowed_events);
        metrics
            .counter(
                "owned_fallback_total",
                "Events that required an owned copy (entity expansion or \
                 attribute-value normalization).",
            )
            .inc_by(self.owned_fallback);
        if self.errored {
            metrics
                .counter(
                    "xmlparse_errors_total",
                    "Documents rejected as not well-formed.",
                )
                .inc();
        }
    }
}

impl<'a> Reader<'a> {
    /// Creates a reader for a complete document, with no resource
    /// budgets ([`Limits::unbounded`]) — behavior is byte-identical to
    /// the pre-governance reader. Use [`Reader::with_limits`] on
    /// untrusted input.
    pub fn new(src: &'a str) -> Self {
        Reader::with_limits(src, Limits::unbounded())
    }

    /// Creates a reader that enforces `limits` while parsing: input
    /// size, element depth, per-element attribute count, attribute-value
    /// length, and entity-expansion volume. A tripped budget surfaces as
    /// [`ParseErrorKind::Resource`] at the position where it tripped;
    /// like every other reader error it is fatal.
    pub fn with_limits(src: &'a str, limits: Limits) -> Self {
        Reader {
            src,
            pos: Position::START,
            open: Vec::new(),
            root_closed: false,
            root_seen: false,
            pending_end: None,
            attr_buf: Vec::new(),
            events_seen: 0,
            borrowed_events: 0,
            owned_fallback: 0,
            errored: false,
            limits,
            expansions: 0,
            expansion_bytes: 0,
            input_checked: false,
        }
    }

    /// Creates a reader for a fragment: leading/trailing whitespace and a
    /// missing XML declaration are fine, but exactly one element must span
    /// the content (as required of P-XML constructors). The grammar happens
    /// to coincide with [`Reader::new`]; the constructor exists so callers
    /// state their intent and fragment-specific rules have a home.
    pub fn fragment(src: &'a str) -> Self {
        Reader::new(src)
    }

    /// Current position (for error reporting by embedding tools).
    pub fn position(&self) -> Position {
        self.pos
    }

    /// Names of currently open elements, outermost first (slices of the
    /// source).
    pub fn open_elements(&self) -> &[&'a str] {
        &self.open
    }

    // ---- low-level cursor helpers --------------------------------------

    fn rest(&self) -> &'a str {
        &self.src[self.pos.offset..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos.advance(c);
        Some(c)
    }

    /// Advances over a run of plain ASCII bytes — `0x20..0x80`, none of
    /// `stops`. Every byte in such a run is exactly one column and one
    /// byte and never a newline, so position tracking stays exact without
    /// decoding; anything outside the run (markup, controls, non-ASCII)
    /// is left for the caller's per-character path.
    #[inline]
    fn skip_plain_ascii(&mut self, stops: &[u8]) {
        let bytes = self.src.as_bytes();
        let mut i = self.pos.offset;
        while i < bytes.len() {
            let b = bytes[i];
            if !(0x20..0x80).contains(&b) || stops.contains(&b) {
                break;
            }
            i += 1;
        }
        let run = i - self.pos.offset;
        self.pos.offset = i;
        self.pos.column += run as u32;
    }

    fn eat(&mut self, expected: char, what: &'static str) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == expected => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(ParseErrorKind::Expected { what, found: c })),
            None => Err(self.err(ParseErrorKind::UnexpectedEof { context: what })),
        }
    }

    fn eat_str(&mut self, expected: &str, what: &'static str) -> Result<(), ParseError> {
        if self.rest().starts_with(expected) {
            for _ in expected.chars() {
                self.bump();
            }
            Ok(())
        } else {
            match self.peek() {
                Some(c) => Err(self.err(ParseErrorKind::Expected { what, found: c })),
                None => Err(self.err(ParseErrorKind::UnexpectedEof { context: what })),
            }
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if is_xml_whitespace(c)) {
            self.bump();
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, self.pos)
    }

    fn err_at(&self, kind: ParseErrorKind, at: Position) -> ParseError {
        ParseError::new(kind, at)
    }

    /// Builds a budget-violation error at `at`, counting the trip in
    /// `limit_trips_total`.
    fn resource_err(&self, kind: ResourceErrorKind, at: Position) -> ParseError {
        limits::record_trip(&kind);
        ParseError::new(ParseErrorKind::Resource(kind), at)
    }

    /// Budget accounting for one text or attribute run whose references
    /// were actually expanded: `raw` is the pre-expansion slice (one `&`
    /// per reference), `expanded` the bytes the expansion produced.
    fn note_expansions(
        &mut self,
        raw: &str,
        expanded: usize,
        at: Position,
    ) -> Result<(), ParseError> {
        let refs = raw.bytes().filter(|&b| b == b'&').count() as u64;
        if refs == 0 {
            // an owned rewrite without references (attribute whitespace
            // normalization) is not expansion; nothing to account
            return Ok(());
        }
        self.expansions = self.expansions.saturating_add(refs);
        if self.expansions > self.limits.max_entity_expansions {
            return Err(self.resource_err(
                ResourceErrorKind::TooManyExpansions {
                    limit: self.limits.max_entity_expansions,
                },
                at,
            ));
        }
        self.expansion_bytes = self.expansion_bytes.saturating_add(expanded);
        if self.expansion_bytes > self.limits.max_expansion_bytes {
            return Err(self.resource_err(
                ResourceErrorKind::ExpansionTooLarge {
                    limit: self.limits.max_expansion_bytes,
                },
                at,
            ));
        }
        Ok(())
    }

    fn read_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos.offset;
        match self.peek() {
            Some(c) if is_name_start_char(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(self.err(ParseErrorKind::Expected {
                    what: "name",
                    found: c,
                }))
            }
            None => {
                return Err(self.err(ParseErrorKind::UnexpectedEof { context: "name" }));
            }
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(&self.src[start..self.pos.offset])
    }

    // ---- event production ----------------------------------------------

    /// Produces the next event, owned. Exactly
    /// [`next_event_borrowed`](Self::next_event_borrowed) plus
    /// [`BorrowedEvent::into_owned`].
    pub fn next_event(&mut self) -> Result<Event, ParseError> {
        self.next_event_borrowed().map(BorrowedEvent::into_owned)
    }

    /// Produces the next event as zero-copy slices of the source.
    ///
    /// The returned event borrows the reader (its attribute buffer is
    /// reused between start tags), so it must be dropped before the next
    /// call — the natural shape of a pull loop.
    pub fn next_event_borrowed(&mut self) -> Result<BorrowedEvent<'a, '_>, ParseError> {
        let raw = match self.next_event_inner() {
            Ok(raw) => raw,
            Err(e) => {
                self.errored = true;
                return Err(e);
            }
        };
        match &raw {
            RawEvent::Eof => {}
            RawEvent::Text {
                text: Cow::Owned(_),
                ..
            } => {
                self.events_seen += 1;
                self.owned_fallback += 1;
            }
            RawEvent::Start { .. }
                if self
                    .attr_buf
                    .iter()
                    .any(|a| matches!(a.value, Cow::Owned(_))) =>
            {
                self.events_seen += 1;
                self.owned_fallback += 1;
            }
            _ => {
                self.events_seen += 1;
                self.borrowed_events += 1;
            }
        }
        Ok(self.materialize(raw))
    }

    /// Attaches the shared attribute buffer to a raw start event.
    fn materialize(&self, raw: RawEvent<'a>) -> BorrowedEvent<'a, '_> {
        match raw {
            RawEvent::Start {
                name,
                self_closing,
                span,
            } => BorrowedEvent::StartElement {
                name,
                attributes: &self.attr_buf,
                self_closing,
                span,
            },
            RawEvent::End { name, span } => BorrowedEvent::EndElement { name, span },
            RawEvent::Text { text, span } => BorrowedEvent::Text { text, span },
            RawEvent::Comment { text, span } => BorrowedEvent::Comment { text, span },
            RawEvent::Pi { target, data, span } => {
                BorrowedEvent::ProcessingInstruction { target, data, span }
            }
            RawEvent::Eof => BorrowedEvent::Eof,
        }
    }

    fn next_event_inner(&mut self) -> Result<RawEvent<'a>, ParseError> {
        if !self.input_checked {
            self.input_checked = true;
            if self.src.len() > self.limits.max_input_bytes {
                return Err(self.resource_err(
                    ResourceErrorKind::InputTooLarge {
                        limit: self.limits.max_input_bytes,
                        actual: self.src.len(),
                    },
                    Position::START,
                ));
            }
        }
        if let Some((name, span)) = self.pending_end.take() {
            self.finish_element(name)?;
            return Ok(RawEvent::End { name, span });
        }
        // Outside the root element, skip whitespace-only text.
        if self.open.is_empty() {
            self.skip_whitespace();
        }
        match self.peek() {
            Some('<') => self.read_markup(),
            Some(_) => {
                if self.open.is_empty() {
                    return Err(self.err(ParseErrorKind::TrailingContent));
                }
                self.read_text()
            }
            None => self.finish_document(),
        }
    }

    fn finish_document(&mut self) -> Result<RawEvent<'a>, ParseError> {
        if !self.open.is_empty() {
            return Err(self.err(ParseErrorKind::UnclosedElements(
                self.open.iter().map(|s| s.to_string()).collect(),
            )));
        }
        if !self.root_seen {
            return Err(self.err(ParseErrorKind::NoRootElement));
        }
        Ok(RawEvent::Eof)
    }

    fn read_markup(&mut self) -> Result<RawEvent<'a>, ParseError> {
        let start = self.pos;
        self.eat('<', "markup")?;
        match self.peek() {
            Some('?') => self.read_pi(start),
            Some('!') => {
                self.bump();
                if self.rest().starts_with("--") {
                    self.read_comment(start)
                } else if self.rest().starts_with("[CDATA[") {
                    self.read_cdata(start)
                } else if self.rest().starts_with("DOCTYPE") {
                    Err(self.err_at(ParseErrorKind::DoctypeUnsupported, start))
                } else {
                    Err(self.err(ParseErrorKind::IllegalSequence("<!")))
                }
            }
            Some('/') => {
                self.bump();
                self.read_end_tag(start)
            }
            _ => self.read_start_tag(start),
        }
    }

    fn read_start_tag(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        if self.root_closed && self.open.is_empty() {
            return Err(self.err_at(ParseErrorKind::TrailingContent, start));
        }
        let name = self.read_name()?;
        if self.open.len() >= self.limits.max_depth {
            return Err(self.resource_err(
                ResourceErrorKind::DepthExceeded {
                    limit: self.limits.max_depth,
                },
                start,
            ));
        }
        self.attr_buf.clear();
        loop {
            let had_space = matches!(self.peek(), Some(c) if is_xml_whitespace(c));
            self.skip_whitespace();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.eat('>', "self-closing tag")?;
                    let span = Span::new(start, self.pos);
                    self.open.push(name);
                    self.root_seen = true;
                    self.pending_end = Some((name, span));
                    return Ok(RawEvent::Start {
                        name,
                        self_closing: true,
                        span,
                    });
                }
                Some(c) if is_name_start_char(c) => {
                    if !had_space {
                        return Err(self.err(ParseErrorKind::Expected {
                            what: "whitespace before attribute",
                            found: c,
                        }));
                    }
                    if self.attr_buf.len() >= self.limits.max_attributes {
                        return Err(self.resource_err(
                            ResourceErrorKind::TooManyAttributes {
                                limit: self.limits.max_attributes,
                            },
                            self.pos,
                        ));
                    }
                    let attr = self.read_attribute()?;
                    if self.attr_buf.iter().any(|a| a.name == attr.name) {
                        return Err(
                            self.err(ParseErrorKind::DuplicateAttribute(attr.name.to_string()))
                        );
                    }
                    self.attr_buf.push(attr);
                }
                Some(c) => {
                    return Err(self.err(ParseErrorKind::Expected {
                        what: "attribute, '>' or '/>'",
                        found: c,
                    }))
                }
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        context: "start tag",
                    }))
                }
            }
        }
        let span = Span::new(start, self.pos);
        self.open.push(name);
        self.root_seen = true;
        Ok(RawEvent::Start {
            name,
            self_closing: false,
            span,
        })
    }

    fn read_attribute(&mut self) -> Result<BorrowedAttribute<'a>, ParseError> {
        let name = self.read_name()?;
        self.skip_whitespace();
        self.eat('=', "'=' in attribute")?;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                q
            }
            Some(c) => {
                return Err(self.err(ParseErrorKind::Expected {
                    what: "quoted attribute value",
                    found: c,
                }))
            }
            None => {
                return Err(self.err(ParseErrorKind::UnexpectedEof {
                    context: "attribute value",
                }))
            }
        };
        let start = self.pos.offset;
        loop {
            self.skip_plain_ascii(&[quote as u8, b'<']);
            match self.peek() {
                Some(c) if c == quote => break,
                Some('<') => {
                    return Err(self.err(ParseErrorKind::Expected {
                        what: "attribute value character",
                        found: '<',
                    }))
                }
                Some(c) if !is_xml_char(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                Some(_) => {
                    self.bump();
                }
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        context: "attribute value",
                    }))
                }
            }
        }
        let raw = &self.src[start..self.pos.offset];
        if raw.len() > self.limits.max_attr_value_bytes {
            return Err(self.resource_err(
                ResourceErrorKind::AttributeValueTooLong {
                    limit: self.limits.max_attr_value_bytes,
                    actual: raw.len(),
                },
                self.pos,
            ));
        }
        self.bump(); // closing quote
        let value =
            normalize_attr_value(raw).map_err(|e| self.err(ParseErrorKind::Reference(e)))?;
        if let Cow::Owned(v) = &value {
            let expanded = v.len();
            self.note_expansions(raw, expanded, self.pos)?;
        }
        Ok(BorrowedAttribute { name, value })
    }

    fn read_end_tag(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        let name = self.read_name()?;
        self.skip_whitespace();
        self.eat('>', "end tag")?;
        let span = Span::new(start, self.pos);
        self.finish_element(name)?;
        Ok(RawEvent::End { name, span })
    }

    fn finish_element(&mut self, name: &str) -> Result<(), ParseError> {
        match self.open.pop() {
            Some(open) if open == name => {
                if self.open.is_empty() {
                    self.root_closed = true;
                }
                Ok(())
            }
            Some(open) => Err(self.err(ParseErrorKind::MismatchedTag {
                open: open.to_string(),
                close: name.to_string(),
            })),
            None => Err(self.err(ParseErrorKind::UnmatchedEndTag(name.to_string()))),
        }
    }

    fn read_text(&mut self) -> Result<RawEvent<'a>, ParseError> {
        let start = self.pos;
        let begin = self.pos.offset;
        loop {
            self.skip_plain_ascii(b"<]");
            match self.peek() {
                Some('<') | None => break,
                Some(']') if self.rest().starts_with("]]>") => {
                    return Err(self.err(ParseErrorKind::IllegalSequence("]]>")));
                }
                Some(c) if !is_xml_char(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                Some(_) => {
                    self.bump();
                }
            }
        }
        let raw = &self.src[begin..self.pos.offset];
        let text = unescape(raw).map_err(|e| self.err(ParseErrorKind::Reference(e)))?;
        if let Cow::Owned(t) = &text {
            let expanded = t.len();
            self.note_expansions(raw, expanded, start)?;
        }
        Ok(RawEvent::Text {
            text,
            span: Span::new(start, self.pos),
        })
    }

    fn read_comment(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        self.eat_str("--", "comment opener")?;
        let begin = self.pos.offset;
        loop {
            self.skip_plain_ascii(b"-");
            if self.rest().starts_with("-->") {
                break;
            }
            if self.rest().starts_with("--") {
                return Err(self.err(ParseErrorKind::IllegalSequence("-- inside comment")));
            }
            match self.peek() {
                Some(c) if is_xml_char(c) => {
                    self.bump();
                }
                Some(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                None => return Err(self.err(ParseErrorKind::UnexpectedEof { context: "comment" })),
            }
        }
        let text = &self.src[begin..self.pos.offset];
        self.eat_str("-->", "comment closer")?;
        Ok(RawEvent::Comment {
            text,
            span: Span::new(start, self.pos),
        })
    }

    fn read_cdata(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        self.eat_str("[CDATA[", "CDATA opener")?;
        if self.open.is_empty() {
            return Err(self.err_at(ParseErrorKind::TrailingContent, start));
        }
        let begin = self.pos.offset;
        loop {
            self.skip_plain_ascii(b"]");
            if self.rest().starts_with("]]>") {
                break;
            }
            match self.peek() {
                Some(c) if is_xml_char(c) => {
                    self.bump();
                }
                Some(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        context: "CDATA section",
                    }))
                }
            }
        }
        let text = &self.src[begin..self.pos.offset];
        self.eat_str("]]>", "CDATA closer")?;
        Ok(RawEvent::Text {
            text: Cow::Borrowed(text),
            span: Span::new(start, self.pos),
        })
    }

    fn read_pi(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        self.eat('?', "processing instruction")?;
        let target = self.read_name()?;
        if target.eq_ignore_ascii_case("xml") && start.offset != 0 {
            return Err(self.err_at(
                ParseErrorKind::IllegalSequence("XML declaration not at start"),
                start,
            ));
        }
        self.skip_whitespace();
        let begin = self.pos.offset;
        loop {
            self.skip_plain_ascii(b"?");
            if self.rest().starts_with("?>") {
                break;
            }
            match self.peek() {
                Some(c) if is_xml_char(c) => {
                    self.bump();
                }
                Some(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        context: "processing instruction",
                    }))
                }
            }
        }
        let data = &self.src[begin..self.pos.offset];
        self.eat_str("?>", "PI closer")?;
        let span = Span::new(start, self.pos);
        if target.eq_ignore_ascii_case("xml") {
            // Swallow the XML declaration and continue with the next event
            // (the inner form, so the wrapper counts the event only once).
            return self.next_event_inner();
        }
        Ok(RawEvent::Pi { target, data, span })
    }
}

/// Attribute-value normalization (XML 1.0 §3.3.3): tabs and newlines
/// become spaces, then references are resolved. Borrows when the value
/// needed neither — the zero-copy fast path. The whitespace substitution
/// is byte-for-byte, so reference-error offsets are unaffected by it.
fn normalize_attr_value(raw: &str) -> Result<Cow<'_, str>, UnescapeError> {
    if raw.bytes().any(|b| matches!(b, b'\t' | b'\n' | b'\r')) {
        let normalized: String = raw
            .chars()
            .map(|c| {
                if matches!(c, '\t' | '\n' | '\r') {
                    ' '
                } else {
                    c
                }
            })
            .collect();
        return Ok(Cow::Owned(unescape(&normalized)?.into_owned()));
    }
    unescape(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Result<Vec<Event>, ParseError> {
        let mut r = Reader::new(src);
        let mut out = Vec::new();
        loop {
            let e = r.next_event()?;
            let done = e == Event::Eof;
            out.push(e);
            if done {
                return Ok(out);
            }
        }
    }

    fn names(src: &str) -> Vec<String> {
        events(src)
            .unwrap()
            .into_iter()
            .filter_map(|e| match e {
                Event::StartElement { name, .. } => Some(format!("+{name}")),
                Event::EndElement { name, .. } => Some(format!("-{name}")),
                Event::Text { text, .. } => Some(format!("\"{text}\"")),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            names("<a><b>hi</b></a>"),
            ["+a", "+b", "\"hi\"", "-b", "-a"]
        );
    }

    #[test]
    fn self_closing_emits_end_event() {
        assert_eq!(names("<a><b/></a>"), ["+a", "+b", "-b", "-a"]);
    }

    #[test]
    fn attributes_parsed_and_normalized() {
        let evs = events("<a x=\"1\" y='two &amp; three'\n z=\"a\tb\"/>").unwrap();
        match &evs[0] {
            Event::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].value, "two & three");
                assert_eq!(attributes[2].value, "a b"); // tab normalized
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn borrowed_events_slice_the_source() {
        let src = "<a x=\"plain\">text</a>";
        let mut r = Reader::new(src);
        match r.next_event_borrowed().unwrap() {
            BorrowedEvent::StartElement {
                name, attributes, ..
            } => {
                assert_eq!(name, "a");
                assert!(matches!(attributes[0].value, Cow::Borrowed(_)));
                assert_eq!(attributes[0].value, "plain");
            }
            other => panic!("unexpected {other:?}"),
        }
        match r.next_event_borrowed().unwrap() {
            BorrowedEvent::Text { text, .. } => {
                assert!(matches!(text, Cow::Borrowed(_)));
                assert_eq!(text, "text");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entity_values_fall_back_to_owned() {
        let mut r = Reader::new("<a x=\"1 &amp; 2\">a &lt; b</a>");
        match r.next_event_borrowed().unwrap() {
            BorrowedEvent::StartElement { attributes, .. } => {
                assert!(matches!(attributes[0].value, Cow::Owned(_)));
                assert_eq!(attributes[0].value, "1 & 2");
            }
            other => panic!("unexpected {other:?}"),
        }
        match r.next_event_borrowed().unwrap() {
            BorrowedEvent::Text { text, .. } => {
                assert!(matches!(text, Cow::Owned(_)));
                assert_eq!(text, "a < b");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn borrowed_stream_matches_owned_stream() {
        let src = "<?xml version=\"1.0\"?><root a=\"v\">\n  <child b='1 &gt; 0'>x &amp; y</child>\n  <!-- note --><![CDATA[raw <>]]><?pi data?>\n  <empty/>\n</root>";
        let mut owned = Vec::new();
        let mut r = Reader::new(src);
        loop {
            let e = r.next_event().unwrap();
            let done = e == Event::Eof;
            owned.push(e);
            if done {
                break;
            }
        }
        let mut r = Reader::new(src);
        for expect in &owned {
            let got = r.next_event_borrowed().unwrap().into_owned();
            assert_eq!(&got, expect);
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = events("<a x=\"1\" x=\"2\"/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn mismatched_tags_rejected_with_position() {
        let err = events("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
        assert_eq!(err.position.line, 1);
    }

    #[test]
    fn unclosed_elements_rejected() {
        let err = events("<a><b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnclosedElements(ref v) if v == &["a", "b"]));
    }

    #[test]
    fn second_root_rejected() {
        let err = events("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn no_root_rejected() {
        let err = events("   \n  ").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::NoRootElement));
    }

    #[test]
    fn cdata_folds_into_text() {
        assert_eq!(
            names("<a><![CDATA[<raw> & text]]></a>"),
            ["+a", "\"<raw> & text\"", "-a"]
        );
    }

    #[test]
    fn comments_and_pis() {
        let evs = events("<?xml version=\"1.0\"?><!-- top --><a><?php echo?></a>").unwrap();
        assert!(matches!(&evs[0], Event::Comment { text, .. } if text == " top "));
        assert!(evs
            .iter()
            .any(|e| matches!(e, Event::ProcessingInstruction { target, .. } if target == "php")));
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        let err = events("<a><!-- bad -- comment --></a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::IllegalSequence(_)));
    }

    #[test]
    fn doctype_rejected_clearly() {
        let err = events("<!DOCTYPE html><a/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DoctypeUnsupported));
    }

    #[test]
    fn cdata_end_in_text_rejected() {
        let err = events("<a>bad ]]> text</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::IllegalSequence("]]>")));
    }

    #[test]
    fn bad_entity_rejected() {
        let err = events("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Reference(_)));
    }

    #[test]
    fn positions_track_lines() {
        let err = events("<a>\n  <b>\n</a>").unwrap_err();
        assert_eq!(err.position.line, 3);
    }

    #[test]
    fn positions_track_lines_through_multiline_text_and_values() {
        // newlines inside text runs and attribute values go through the
        // byte-sweep fast path's slow lane; line accounting must survive
        let err = events("<a v=\"one\ntwo\">line\nline\nline<b>\n</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
        assert_eq!(err.position.line, 5);
    }

    #[test]
    fn non_ascii_text_positions_count_chars() {
        // '€' is one column but three bytes; a following error must sit
        // at the character-accurate column
        let evs = events("<a>€€€</a>").unwrap();
        match &evs[1] {
            Event::Text { text, span } => {
                assert_eq!(text, "€€€");
                assert_eq!(span.end.column, span.start.column + 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn limited_events(src: &str, limits: Limits) -> Result<Vec<Event>, ParseError> {
        let mut r = Reader::with_limits(src, limits);
        let mut out = Vec::new();
        loop {
            let e = r.next_event()?;
            let done = e == Event::Eof;
            out.push(e);
            if done {
                return Ok(out);
            }
        }
    }

    #[test]
    fn input_size_budget_trips_before_parsing() {
        let err = limited_events("<a>hello</a>", Limits::unbounded().with_max_input_bytes(4))
            .unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::InputTooLarge {
                limit: 4,
                actual: 12
            })
        ));
        assert_eq!(err.position.offset, 0);
    }

    #[test]
    fn depth_budget_trips_at_the_offending_tag() {
        let err = limited_events("<a><b><c/></b></a>", Limits::unbounded().with_max_depth(2))
            .unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::DepthExceeded { limit: 2 })
        ));
        // the budget trips at <c>, which sits on line 1 past <a><b>
        assert_eq!(err.position.offset, 6);
    }

    #[test]
    fn depth_budget_ignores_siblings() {
        // 100 self-closing siblings never accumulate depth
        let src = format!("<a>{}</a>", "<b/>".repeat(100));
        assert!(limited_events(&src, Limits::unbounded().with_max_depth(2)).is_ok());
    }

    #[test]
    fn attribute_count_budget_trips() {
        let src = "<a p=\"1\" q=\"2\" r=\"3\"/>";
        let err = limited_events(src, Limits::unbounded().with_max_attributes(2)).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::TooManyAttributes { limit: 2 })
        ));
        assert!(limited_events(src, Limits::unbounded().with_max_attributes(3)).is_ok());
    }

    #[test]
    fn attribute_value_budget_trips_on_raw_length() {
        let src = "<a v=\"0123456789\"/>";
        let err =
            limited_events(src, Limits::unbounded().with_max_attr_value_bytes(8)).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::AttributeValueTooLong {
                limit: 8,
                actual: 10
            })
        ));
    }

    #[test]
    fn expansion_count_budget_trips() {
        let src = format!("<a>{}</a>", "&amp;".repeat(10));
        let err =
            limited_events(&src, Limits::unbounded().with_max_entity_expansions(9)).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::TooManyExpansions { limit: 9 })
        ));
        assert!(limited_events(&src, Limits::unbounded().with_max_entity_expansions(10)).is_ok());
    }

    #[test]
    fn expansion_bytes_budget_counts_cumulative_output() {
        // each run expands to 3 bytes ("a&b"); the third run crosses 8
        let src = "<r><x>a&amp;b</x><x>a&amp;b</x><x>a&amp;b</x></r>";
        let err = limited_events(src, Limits::unbounded().with_max_expansion_bytes(8)).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::ExpansionTooLarge { limit: 8 })
        ));
        assert!(limited_events(src, Limits::unbounded().with_max_expansion_bytes(9)).is_ok());
    }

    #[test]
    fn whitespace_normalization_is_not_expansion() {
        // owned rewrite with zero references: no expansion accounting
        let src = "<a v=\"x\ty\"/>";
        assert!(limited_events(src, Limits::unbounded().with_max_expansion_bytes(0)).is_ok());
    }

    #[test]
    fn default_limits_accept_ordinary_documents() {
        let src = "<po date=\"1999-10-20\"><item part=\"a &amp; b\">2 &lt; 3</item></po>";
        assert_eq!(
            limited_events(src, Limits::default()).unwrap(),
            events(src).unwrap()
        );
    }

    #[test]
    fn purchase_order_smoke() {
        let src = "<purchaseOrder orderDate=\"1999-10-20\">\n  <shipTo country=\"US\">\n    <name>Alice Smith</name>\n  </shipTo>\n</purchaseOrder>";
        let evs = events(src).unwrap();
        assert!(matches!(
            &evs[0],
            Event::StartElement { name, attributes, .. }
                if name == "purchaseOrder" && attributes[0].value == "1999-10-20"
        ));
    }
}
