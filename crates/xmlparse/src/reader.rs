//! The pull reader: a hand-written, position-tracking XML tokenizer with
//! integrated well-formedness checking.
//!
//! The reader is zero-copy: [`Reader::next_event_borrowed`] yields
//! [`BorrowedEvent`]s whose names and text are slices of the input, with
//! `Cow` values that only become owned when entity resolution,
//! attribute-value normalization, or end-of-line normalization actually
//! rewrote something. The owned [`Reader::next_event`] is a thin
//! `.into_owned()` over the same stream.
//!
//! Scan loops over character data, attribute values, comments, CDATA,
//! and PI data run the [`crate::scan`] SWAR classifier: a run of
//! printable-ASCII non-stop bytes is consumed eight bytes per iteration
//! (every such byte is one column, one byte, never a line break, so
//! position tracking stays exact without decoding), and only markup,
//! references, controls, or non-ASCII drop to the per-character slow
//! lane.
//!
//! End-of-line handling is XML 1.0 §2.11-conformant: `\r\n` and lone
//! `\r` reach the application as a single `\n` in character content (and
//! in comments and PI data), count as exactly one line break in
//! positions, and collapse to a single space in attribute values (§2.11
//! runs before §3.3.3). Documents without a `\r` — the common case —
//! stay on the zero-copy path; a `\r` forces the owned lane for that one
//! run, counted by `owned_fallback_total`.

use std::borrow::Cow;

use limits::{Limits, ResourceErrorKind};
use xmlchars::chars::{is_name_char, is_name_start_char, is_xml_char, is_xml_whitespace};
use xmlchars::{unescape, Position, Span, UnescapeError};

use crate::error::{ParseError, ParseErrorKind};
use crate::event::{BorrowedAttribute, BorrowedEvent, Event};
use crate::scan;

/// The produced event before the attribute buffer is attached — an
/// internal form that does not borrow the reader, so bookkeeping can run
/// between production and hand-off.
enum RawEvent<'src> {
    Start {
        name: &'src str,
        self_closing: bool,
        span: Span,
    },
    End {
        name: &'src str,
        span: Span,
    },
    Text {
        text: Cow<'src, str>,
        span: Span,
    },
    Comment {
        text: Cow<'src, str>,
        span: Span,
    },
    Pi {
        target: &'src str,
        data: Cow<'src, str>,
        span: Span,
    },
    Eof,
}

/// The cross-chunk tokenizer state a suspended reader carries between
/// [`crate::FeedReader::feed`] calls: everything that outlives the
/// buffer the next chunk will be parsed from. Open-element names are
/// owned copies — the borrowed originals die when the consumed prefix
/// of the feed buffer is compacted away.
#[derive(Debug, Clone, Default)]
pub(crate) struct Suspended {
    pub(crate) open: Vec<String>,
    pub(crate) root_seen: bool,
    pub(crate) root_closed: bool,
    pub(crate) pos: Position,
    pub(crate) prev_cr: bool,
    pub(crate) expansions: u64,
    pub(crate) expansion_bytes: usize,
}

/// The state a feed-mode parse attempt must rewind on
/// [`ParseErrorKind::NeedMoreData`]: the cursor plus the budget
/// counters that may have advanced mid-token (attribute expansions run
/// before the start tag completes). Everything else — the open stack,
/// root flags, pending end — only mutates when an event completes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Checkpoint {
    pos: Position,
    prev_cr: bool,
    expansions: u64,
    expansion_bytes: usize,
}

/// A pull parser over a complete in-memory document.
///
/// Call [`Reader::next_event`] (owned) or
/// [`Reader::next_event_borrowed`] (zero-copy) repeatedly until `Eof`.
/// The reader enforces well-formedness: tag nesting, attribute
/// uniqueness, character legality, a single root element, and reference
/// syntax. Errors are fatal; after an error the reader should be
/// discarded. For input that arrives in chunks, see
/// [`crate::FeedReader`], which resumes this tokenizer across buffers.
pub struct Reader<'a> {
    src: &'a str,
    /// Absolute document offset of `src[0]` — always 0 for whole-input
    /// readers; the consumed-and-compacted byte count for feed-mode
    /// resumption, so positions and spans stay document-absolute.
    base: usize,
    pos: Position,
    /// Stack of open element names for nesting checks: borrowed slices
    /// of the source normally, owned copies when resumed across chunks.
    open: Vec<Cow<'a, str>>,
    /// Whether the root element has been seen and closed.
    root_closed: bool,
    /// Whether any root element has been opened yet.
    root_seen: bool,
    /// Queued end-element event for self-closing tags.
    pending_end: Option<(&'a str, Span)>,
    /// Reused per-start-tag attribute storage; borrowed events slice it.
    attr_buf: Vec<BorrowedAttribute<'a>>,
    /// Events produced so far (observability; flushed on drop).
    events_seen: u64,
    /// Events whose every string borrowed the source (observability).
    borrowed_events: u64,
    /// Events that needed an owned copy — entity expansion, attribute
    /// normalization, or EOL normalization rewrote something
    /// (observability).
    owned_fallback: u64,
    /// Whether an event ended in a parse error (observability).
    errored: bool,
    /// Resource budgets enforced while parsing ([`Limits::unbounded`]
    /// for [`Reader::new`], so ungoverned callers are byte-identical to
    /// pre-limits behavior).
    limits: Limits,
    /// Entity/character references resolved so far (budget accounting).
    expansions: u64,
    /// Cumulative bytes produced by reference expansion (budget
    /// accounting; the amplification guard).
    expansion_bytes: usize,
    /// Whether the up-front input-size budget has been checked yet.
    input_checked: bool,
    /// Whether the previously consumed character was `\r` — the one bit
    /// of lookbehind §2.11 needs so a following `\n` extends the same
    /// line break instead of opening a second one.
    prev_cr: bool,
    /// Feed mode: more input may arrive after `src`, so running off the
    /// end of the buffer means [`ParseErrorKind::NeedMoreData`], not a
    /// hard `UnexpectedEof` / `Eof`.
    feed_mode: bool,
    /// `pos.offset` at construction; metrics report the delta so a
    /// resumed reader counts only the bytes it consumed itself.
    start_offset: usize,
}

/// Bytes consumed and events produced flush to the metrics registry once
/// per reader, so the per-event cost of observability is a local `u64`
/// increment and the disabled cost is one atomic load at drop.
impl Drop for Reader<'_> {
    fn drop(&mut self) {
        if !obs::enabled() {
            return;
        }
        let metrics = obs::metrics();
        metrics
            .counter("xmlparse_events_total", "Parser events produced.")
            .inc_by(self.events_seen);
        metrics
            .counter(
                "xmlparse_bytes_total",
                "Source bytes consumed by the parser.",
            )
            .inc_by((self.pos.offset - self.start_offset) as u64);
        metrics
            .counter(
                "borrowed_events_total",
                "Events whose strings were all zero-copy slices of the source.",
            )
            .inc_by(self.borrowed_events);
        metrics
            .counter(
                "owned_fallback_total",
                "Events that required an owned copy (entity expansion, \
                 attribute-value normalization, or EOL normalization).",
            )
            .inc_by(self.owned_fallback);
        if self.errored {
            metrics
                .counter(
                    "xmlparse_errors_total",
                    "Documents rejected as not well-formed.",
                )
                .inc();
        }
    }
}

/// A point-in-time snapshot of one reader's throughput counters — the
/// per-document numbers the flight recorder's wide events carry, read
/// without waiting for the metrics flush at drop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReaderStats {
    /// Source bytes consumed so far.
    pub bytes: u64,
    /// Events produced so far.
    pub events: u64,
    /// Events whose every string borrowed the source.
    pub borrowed_events: u64,
    /// Events that needed an owned copy (entity expansion, attribute or
    /// EOL normalization).
    pub owned_events: u64,
}

impl ReaderStats {
    /// Accumulates another snapshot into this one — how
    /// [`crate::FeedReader`] totals the readers it resumes per chunk.
    pub fn absorb(&mut self, other: ReaderStats) {
        self.bytes += other.bytes;
        self.events += other.events;
        self.borrowed_events += other.borrowed_events;
        self.owned_events += other.owned_events;
    }
}

impl<'a> Reader<'a> {
    /// Creates a reader for a complete document, with no resource
    /// budgets ([`Limits::unbounded`]) — behavior is byte-identical to
    /// the pre-governance reader. Use [`Reader::with_limits`] on
    /// untrusted input.
    pub fn new(src: &'a str) -> Self {
        Reader::with_limits(src, Limits::unbounded())
    }

    /// Creates a reader that enforces `limits` while parsing: input
    /// size, element depth, per-element attribute count, attribute-value
    /// length, and entity-expansion volume. A tripped budget surfaces as
    /// [`ParseErrorKind::Resource`] at the position where it tripped;
    /// like every other reader error it is fatal.
    pub fn with_limits(src: &'a str, limits: Limits) -> Self {
        Reader {
            src,
            base: 0,
            pos: Position::START,
            open: Vec::new(),
            root_closed: false,
            root_seen: false,
            pending_end: None,
            attr_buf: Vec::new(),
            events_seen: 0,
            borrowed_events: 0,
            owned_fallback: 0,
            errored: false,
            limits,
            expansions: 0,
            expansion_bytes: 0,
            input_checked: false,
            prev_cr: false,
            feed_mode: false,
            start_offset: 0,
        }
    }

    /// Creates a reader for a fragment: leading/trailing whitespace and a
    /// missing XML declaration are fine, but exactly one element must span
    /// the content (as required of P-XML constructors). The grammar happens
    /// to coincide with [`Reader::new`]; the constructor exists so callers
    /// state their intent and fragment-specific rules have a home.
    pub fn fragment(src: &'a str) -> Self {
        Reader::new(src)
    }

    /// This reader's throughput counters so far. For a reader resumed
    /// from a checkpoint the byte count covers only this reader's own
    /// consumption (the same delta its metrics flush reports).
    pub fn stats(&self) -> ReaderStats {
        ReaderStats {
            bytes: (self.pos.offset - self.start_offset) as u64,
            events: self.events_seen,
            borrowed_events: self.borrowed_events,
            owned_events: self.owned_fallback,
        }
    }

    /// Rebuilds a reader over the current feed buffer from suspended
    /// cross-chunk state. `base` is the absolute document offset of
    /// `src[0]`; positions keep counting from the document start. The
    /// input-size budget is the feed driver's job (it sees the
    /// cumulative byte count), so it is marked already-checked here.
    pub(crate) fn resume(
        src: &'a str,
        base: usize,
        state: Suspended,
        limits: Limits,
        feed_mode: bool,
    ) -> Reader<'a> {
        Reader {
            src,
            base,
            pos: state.pos,
            open: state.open.into_iter().map(Cow::Owned).collect(),
            root_closed: state.root_closed,
            root_seen: state.root_seen,
            pending_end: None,
            attr_buf: Vec::new(),
            events_seen: 0,
            borrowed_events: 0,
            owned_fallback: 0,
            errored: false,
            limits,
            expansions: state.expansions,
            expansion_bytes: state.expansion_bytes,
            input_checked: true,
            prev_cr: state.prev_cr,
            feed_mode,
            start_offset: state.pos.offset,
        }
    }

    /// Extracts the cross-chunk state (consuming the reader; metrics
    /// still flush via `Drop`). Open-element names are copied out — the
    /// buffer they borrow is about to be compacted.
    pub(crate) fn suspend(mut self) -> Suspended {
        debug_assert!(
            self.pending_end.is_none(),
            "suspended with a queued end event; the pump must drain it"
        );
        Suspended {
            open: std::mem::take(&mut self.open)
                .into_iter()
                .map(Cow::into_owned)
                .collect(),
            root_seen: self.root_seen,
            root_closed: self.root_closed,
            pos: self.pos,
            prev_cr: self.prev_cr,
            expansions: self.expansions,
            expansion_bytes: self.expansion_bytes,
        }
    }

    /// Snapshots the rewindable cursor state before a feed-mode parse
    /// attempt.
    pub(crate) fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            pos: self.pos,
            prev_cr: self.prev_cr,
            expansions: self.expansions,
            expansion_bytes: self.expansion_bytes,
        }
    }

    /// Rewinds to `cp` after [`ParseErrorKind::NeedMoreData`] so the
    /// interrupted token reparses from its first byte once more input
    /// arrives.
    pub(crate) fn rollback(&mut self, cp: Checkpoint) {
        self.pos = cp.pos;
        self.prev_cr = cp.prev_cr;
        self.expansions = cp.expansions;
        self.expansion_bytes = cp.expansion_bytes;
    }

    /// Current position (for error reporting by embedding tools).
    pub fn position(&self) -> Position {
        self.pos
    }

    /// Names of currently open elements, outermost first.
    pub fn open_elements(&self) -> impl Iterator<Item = &str> {
        self.open.iter().map(|s| s.as_ref())
    }

    // ---- low-level cursor helpers --------------------------------------

    fn rest(&self) -> &'a str {
        &self.src[self.pos.offset - self.base..]
    }

    /// The absolute-offset slice `[start, end)` of the source.
    fn slice(&self, start: usize, end: usize) -> &'a str {
        &self.src[start - self.base..end - self.base]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos.offset += c.len_utf8();
        match c {
            // the \n of a \r\n pair: the \r already opened the new line
            '\n' if self.prev_cr => self.pos.column = 1,
            '\n' | '\r' => {
                self.pos.line += 1;
                self.pos.column = 1;
            }
            _ => self.pos.column += 1,
        }
        self.prev_cr = c == '\r';
        Some(c)
    }

    /// Advances over a run of plain ASCII bytes — printable
    /// (`0x20..0x80`), none of `stops` — via the SWAR word scan. Every
    /// byte in such a run is exactly one column and one byte and never a
    /// line break, so position tracking stays exact without decoding;
    /// anything outside the run (markup, controls including `\r`,
    /// non-ASCII) is left for the caller's per-character path.
    #[inline]
    fn skip_plain_ascii(&mut self, stops: [u8; 2]) {
        let from = self.pos.offset - self.base;
        let to = scan::scan_plain(self.src.as_bytes(), from, stops);
        let run = to - from;
        if run > 0 {
            self.pos.offset += run;
            self.pos.column += run as u32;
            self.prev_cr = false;
        }
    }

    fn eat(&mut self, expected: char, what: &'static str) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == expected => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(ParseErrorKind::Expected { what, found: c })),
            None => Err(self.eof_err(what)),
        }
    }

    fn eat_str(&mut self, expected: &str, what: &'static str) -> Result<(), ParseError> {
        let rest = self.rest();
        if rest.starts_with(expected) {
            for _ in expected.chars() {
                self.bump();
            }
            Ok(())
        } else if self.feed_mode && rest.len() < expected.len() && expected.starts_with(rest) {
            Err(self.need_more())
        } else {
            match self.peek() {
                Some(c) => Err(self.err(ParseErrorKind::Expected { what, found: c })),
                None => Err(self.eof_err(what)),
            }
        }
    }

    /// Whether the input continues with `pat`. In feed mode, a buffer
    /// that ends mid-`pat` is ambiguous — the rest of the delimiter may
    /// be in the next chunk — so the attempt suspends with
    /// [`ParseErrorKind::NeedMoreData`] instead of guessing.
    fn lookahead(&self, pat: &'static str) -> Result<bool, ParseError> {
        let rest = self.rest();
        if rest.starts_with(pat) {
            Ok(true)
        } else if self.feed_mode && rest.len() < pat.len() && pat.starts_with(rest) {
            Err(self.need_more())
        } else {
            Ok(false)
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if is_xml_whitespace(c)) {
            self.bump();
        }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, self.pos)
    }

    fn err_at(&self, kind: ParseErrorKind, at: Position) -> ParseError {
        ParseError::new(kind, at)
    }

    fn need_more(&self) -> ParseError {
        ParseError::new(ParseErrorKind::NeedMoreData, self.pos)
    }

    /// End-of-input mid-construct: a hard error for a complete document,
    /// a suspension request in feed mode.
    fn eof_err(&self, context: &'static str) -> ParseError {
        if self.feed_mode {
            self.need_more()
        } else {
            self.err(ParseErrorKind::UnexpectedEof { context })
        }
    }

    /// Builds a budget-violation error at `at`, counting the trip in
    /// `limit_trips_total`.
    fn resource_err(&self, kind: ResourceErrorKind, at: Position) -> ParseError {
        limits::record_trip(&kind);
        ParseError::new(ParseErrorKind::Resource(kind), at)
    }

    /// Budget accounting for one text or attribute run whose references
    /// were actually expanded: `raw` is the pre-expansion slice (one `&`
    /// per reference), `expanded` the bytes the expansion produced.
    fn note_expansions(
        &mut self,
        raw: &str,
        expanded: usize,
        at: Position,
    ) -> Result<(), ParseError> {
        let refs = raw.bytes().filter(|&b| b == b'&').count() as u64;
        if refs == 0 {
            // an owned rewrite without references (attribute whitespace
            // or EOL normalization) is not expansion; nothing to account
            return Ok(());
        }
        self.expansions = self.expansions.saturating_add(refs);
        if self.expansions > self.limits.max_entity_expansions {
            return Err(self.resource_err(
                ResourceErrorKind::TooManyExpansions {
                    limit: self.limits.max_entity_expansions,
                },
                at,
            ));
        }
        self.expansion_bytes = self.expansion_bytes.saturating_add(expanded);
        if self.expansion_bytes > self.limits.max_expansion_bytes {
            return Err(self.resource_err(
                ResourceErrorKind::ExpansionTooLarge {
                    limit: self.limits.max_expansion_bytes,
                },
                at,
            ));
        }
        Ok(())
    }

    fn read_name(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos.offset;
        match self.peek() {
            Some(c) if is_name_start_char(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(self.err(ParseErrorKind::Expected {
                    what: "name",
                    found: c,
                }))
            }
            None => {
                return Err(self.eof_err("name"));
            }
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.slice(start, self.pos.offset))
    }

    // ---- event production ----------------------------------------------

    /// Produces the next event, owned. Exactly
    /// [`next_event_borrowed`](Self::next_event_borrowed) plus
    /// [`BorrowedEvent::into_owned`].
    pub fn next_event(&mut self) -> Result<Event, ParseError> {
        self.next_event_borrowed().map(BorrowedEvent::into_owned)
    }

    /// Produces the next event as zero-copy slices of the source.
    ///
    /// The returned event borrows the reader (its attribute buffer is
    /// reused between start tags), so it must be dropped before the next
    /// call — the natural shape of a pull loop.
    pub fn next_event_borrowed(&mut self) -> Result<BorrowedEvent<'a, '_>, ParseError> {
        let raw = match self.next_event_inner() {
            Ok(raw) => raw,
            Err(e) => {
                // a feed-mode suspension is not a document error
                if !matches!(e.kind, ParseErrorKind::NeedMoreData) {
                    self.errored = true;
                }
                return Err(e);
            }
        };
        let fully_borrowed = match &raw {
            RawEvent::Text { text, .. }
            | RawEvent::Comment { text, .. }
            | RawEvent::Pi { data: text, .. } => matches!(text, Cow::Borrowed(_)),
            RawEvent::Start { .. } => !self
                .attr_buf
                .iter()
                .any(|a| matches!(a.value, Cow::Owned(_))),
            _ => true,
        };
        if !matches!(raw, RawEvent::Eof) {
            self.events_seen += 1;
            if fully_borrowed {
                self.borrowed_events += 1;
            } else {
                self.owned_fallback += 1;
            }
        }
        Ok(self.materialize(raw))
    }

    /// Attaches the shared attribute buffer to a raw start event.
    fn materialize(&self, raw: RawEvent<'a>) -> BorrowedEvent<'a, '_> {
        match raw {
            RawEvent::Start {
                name,
                self_closing,
                span,
            } => BorrowedEvent::StartElement {
                name,
                attributes: &self.attr_buf,
                self_closing,
                span,
            },
            RawEvent::End { name, span } => BorrowedEvent::EndElement { name, span },
            RawEvent::Text { text, span } => BorrowedEvent::Text { text, span },
            RawEvent::Comment { text, span } => BorrowedEvent::Comment { text, span },
            RawEvent::Pi { target, data, span } => {
                BorrowedEvent::ProcessingInstruction { target, data, span }
            }
            RawEvent::Eof => BorrowedEvent::Eof,
        }
    }

    fn next_event_inner(&mut self) -> Result<RawEvent<'a>, ParseError> {
        if !self.input_checked {
            self.input_checked = true;
            if self.src.len() > self.limits.max_input_bytes {
                return Err(self.resource_err(
                    ResourceErrorKind::InputTooLarge {
                        limit: self.limits.max_input_bytes,
                        actual: self.src.len(),
                    },
                    Position::START,
                ));
            }
        }
        if let Some((name, span)) = self.pending_end.take() {
            self.finish_element(name)?;
            return Ok(RawEvent::End { name, span });
        }
        // Outside the root element, skip whitespace-only text.
        if self.open.is_empty() {
            self.skip_whitespace();
        }
        match self.peek() {
            Some('<') => self.read_markup(),
            Some(_) => {
                if self.open.is_empty() {
                    return Err(self.err(ParseErrorKind::TrailingContent));
                }
                self.read_text()
            }
            None => self.finish_document(),
        }
    }

    fn finish_document(&mut self) -> Result<RawEvent<'a>, ParseError> {
        if self.feed_mode {
            // quiescent between chunks — not the end of the document
            return Err(self.need_more());
        }
        if !self.open.is_empty() {
            return Err(self.err(ParseErrorKind::UnclosedElements(
                self.open.iter().map(|s| s.to_string()).collect(),
            )));
        }
        if !self.root_seen {
            return Err(self.err(ParseErrorKind::NoRootElement));
        }
        Ok(RawEvent::Eof)
    }

    fn read_markup(&mut self) -> Result<RawEvent<'a>, ParseError> {
        let start = self.pos;
        self.eat('<', "markup")?;
        match self.peek() {
            Some('?') => self.read_pi(start),
            Some('!') => {
                self.bump();
                if self.lookahead("--")? {
                    self.read_comment(start)
                } else if self.lookahead("[CDATA[")? {
                    self.read_cdata(start)
                } else if self.lookahead("DOCTYPE")? {
                    Err(self.err_at(ParseErrorKind::DoctypeUnsupported, start))
                } else {
                    Err(self.err(ParseErrorKind::IllegalSequence("<!")))
                }
            }
            Some('/') => {
                self.bump();
                self.read_end_tag(start)
            }
            None => Err(self.eof_err("markup")),
            _ => self.read_start_tag(start),
        }
    }

    fn read_start_tag(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        if self.root_closed && self.open.is_empty() {
            return Err(self.err_at(ParseErrorKind::TrailingContent, start));
        }
        let name = self.read_name()?;
        if self.open.len() >= self.limits.max_depth {
            return Err(self.resource_err(
                ResourceErrorKind::DepthExceeded {
                    limit: self.limits.max_depth,
                },
                start,
            ));
        }
        self.attr_buf.clear();
        loop {
            let had_space = matches!(self.peek(), Some(c) if is_xml_whitespace(c));
            self.skip_whitespace();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.eat('>', "self-closing tag")?;
                    let span = Span::new(start, self.pos);
                    self.open.push(Cow::Borrowed(name));
                    self.root_seen = true;
                    self.pending_end = Some((name, span));
                    return Ok(RawEvent::Start {
                        name,
                        self_closing: true,
                        span,
                    });
                }
                Some(c) if is_name_start_char(c) => {
                    if !had_space {
                        return Err(self.err(ParseErrorKind::Expected {
                            what: "whitespace before attribute",
                            found: c,
                        }));
                    }
                    if self.attr_buf.len() >= self.limits.max_attributes {
                        return Err(self.resource_err(
                            ResourceErrorKind::TooManyAttributes {
                                limit: self.limits.max_attributes,
                            },
                            self.pos,
                        ));
                    }
                    let attr = self.read_attribute()?;
                    if self.attr_buf.iter().any(|a| a.name == attr.name) {
                        return Err(
                            self.err(ParseErrorKind::DuplicateAttribute(attr.name.to_string()))
                        );
                    }
                    self.attr_buf.push(attr);
                }
                Some(c) => {
                    return Err(self.err(ParseErrorKind::Expected {
                        what: "attribute, '>' or '/>'",
                        found: c,
                    }))
                }
                None => {
                    return Err(self.eof_err("start tag"));
                }
            }
        }
        let span = Span::new(start, self.pos);
        self.open.push(Cow::Borrowed(name));
        self.root_seen = true;
        Ok(RawEvent::Start {
            name,
            self_closing: false,
            span,
        })
    }

    fn read_attribute(&mut self) -> Result<BorrowedAttribute<'a>, ParseError> {
        let name = self.read_name()?;
        self.skip_whitespace();
        self.eat('=', "'=' in attribute")?;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                q
            }
            Some(c) => {
                return Err(self.err(ParseErrorKind::Expected {
                    what: "quoted attribute value",
                    found: c,
                }))
            }
            None => {
                return Err(self.eof_err("attribute value"));
            }
        };
        let start = self.pos.offset;
        loop {
            self.skip_plain_ascii([quote as u8, b'<']);
            match self.peek() {
                Some(c) if c == quote => break,
                Some('<') => {
                    return Err(self.err(ParseErrorKind::Expected {
                        what: "attribute value character",
                        found: '<',
                    }))
                }
                Some(c) if !is_xml_char(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                Some(_) => {
                    self.bump();
                }
                None => {
                    return Err(self.eof_err("attribute value"));
                }
            }
        }
        let raw = self.slice(start, self.pos.offset);
        if raw.len() > self.limits.max_attr_value_bytes {
            return Err(self.resource_err(
                ResourceErrorKind::AttributeValueTooLong {
                    limit: self.limits.max_attr_value_bytes,
                    actual: raw.len(),
                },
                self.pos,
            ));
        }
        self.bump(); // closing quote
        let value =
            normalize_attr_value(raw).map_err(|e| self.err(ParseErrorKind::Reference(e)))?;
        if let Cow::Owned(v) = &value {
            let expanded = v.len();
            self.note_expansions(raw, expanded, self.pos)?;
        }
        Ok(BorrowedAttribute { name, value })
    }

    fn read_end_tag(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        let name = self.read_name()?;
        self.skip_whitespace();
        self.eat('>', "end tag")?;
        let span = Span::new(start, self.pos);
        self.finish_element(name)?;
        Ok(RawEvent::End { name, span })
    }

    fn finish_element(&mut self, name: &str) -> Result<(), ParseError> {
        match self.open.pop() {
            Some(open) if open == name => {
                if self.open.is_empty() {
                    self.root_closed = true;
                }
                Ok(())
            }
            Some(open) => Err(self.err(ParseErrorKind::MismatchedTag {
                open: open.into_owned(),
                close: name.to_string(),
            })),
            None => Err(self.err(ParseErrorKind::UnmatchedEndTag(name.to_string()))),
        }
    }

    fn read_text(&mut self) -> Result<RawEvent<'a>, ParseError> {
        let start = self.pos;
        let begin = self.pos.offset;
        let mut saw_cr = false;
        loop {
            self.skip_plain_ascii([b'<', b']']);
            match self.peek() {
                Some('<') => break,
                None => {
                    if self.feed_mode {
                        // the run may continue in the next chunk; hold it
                        return Err(self.need_more());
                    }
                    break;
                }
                Some(']') => {
                    if self.lookahead("]]>")? {
                        return Err(self.err(ParseErrorKind::IllegalSequence("]]>")));
                    }
                    self.bump();
                }
                Some('\r') => {
                    saw_cr = true;
                    self.bump();
                }
                Some(c) if !is_xml_char(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                Some(_) => {
                    self.bump();
                }
            }
        }
        let raw = self.slice(begin, self.pos.offset);
        let text = if saw_cr {
            // §2.11 slow lane: \r\n / \r become \n before references
            // resolve, so &#13; still yields a literal carriage return
            let normalized = normalize_eol(raw);
            Cow::Owned(
                unescape(&normalized)
                    .map_err(|e| self.err(ParseErrorKind::Reference(e)))?
                    .into_owned(),
            )
        } else {
            unescape(raw).map_err(|e| self.err(ParseErrorKind::Reference(e)))?
        };
        if let Cow::Owned(t) = &text {
            let expanded = t.len();
            self.note_expansions(raw, expanded, start)?;
        }
        Ok(RawEvent::Text {
            text,
            span: Span::new(start, self.pos),
        })
    }

    fn read_comment(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        self.eat_str("--", "comment opener")?;
        let begin = self.pos.offset;
        let mut saw_cr = false;
        loop {
            self.skip_plain_ascii([b'-', b'-']);
            if self.lookahead("-->")? {
                break;
            }
            if self.rest().starts_with("--") {
                return Err(self.err(ParseErrorKind::IllegalSequence("-- inside comment")));
            }
            match self.peek() {
                Some('\r') => {
                    saw_cr = true;
                    self.bump();
                }
                Some(c) if is_xml_char(c) => {
                    self.bump();
                }
                Some(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                None => return Err(self.eof_err("comment")),
            }
        }
        let raw = self.slice(begin, self.pos.offset);
        let text = if saw_cr {
            Cow::Owned(normalize_eol(raw))
        } else {
            Cow::Borrowed(raw)
        };
        self.eat_str("-->", "comment closer")?;
        Ok(RawEvent::Comment {
            text,
            span: Span::new(start, self.pos),
        })
    }

    fn read_cdata(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        self.eat_str("[CDATA[", "CDATA opener")?;
        if self.open.is_empty() {
            return Err(self.err_at(ParseErrorKind::TrailingContent, start));
        }
        let begin = self.pos.offset;
        let mut saw_cr = false;
        loop {
            self.skip_plain_ascii([b']', b']']);
            if self.lookahead("]]>")? {
                break;
            }
            match self.peek() {
                Some('\r') => {
                    saw_cr = true;
                    self.bump();
                }
                Some(c) if is_xml_char(c) => {
                    self.bump();
                }
                Some(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                None => {
                    return Err(self.eof_err("CDATA section"));
                }
            }
        }
        let raw = self.slice(begin, self.pos.offset);
        let text = if saw_cr {
            Cow::Owned(normalize_eol(raw))
        } else {
            Cow::Borrowed(raw)
        };
        self.eat_str("]]>", "CDATA closer")?;
        Ok(RawEvent::Text {
            text,
            span: Span::new(start, self.pos),
        })
    }

    fn read_pi(&mut self, start: Position) -> Result<RawEvent<'a>, ParseError> {
        self.eat('?', "processing instruction")?;
        let target = self.read_name()?;
        if target.eq_ignore_ascii_case("xml") && start.offset != 0 {
            return Err(self.err_at(
                ParseErrorKind::IllegalSequence("XML declaration not at start"),
                start,
            ));
        }
        self.skip_whitespace();
        let begin = self.pos.offset;
        let mut saw_cr = false;
        loop {
            self.skip_plain_ascii([b'?', b'?']);
            if self.lookahead("?>")? {
                break;
            }
            match self.peek() {
                Some('\r') => {
                    saw_cr = true;
                    self.bump();
                }
                Some(c) if is_xml_char(c) => {
                    self.bump();
                }
                Some(c) => return Err(self.err(ParseErrorKind::IllegalChar(c))),
                None => {
                    return Err(self.eof_err("processing instruction"));
                }
            }
        }
        let raw = self.slice(begin, self.pos.offset);
        let data = if saw_cr {
            Cow::Owned(normalize_eol(raw))
        } else {
            Cow::Borrowed(raw)
        };
        self.eat_str("?>", "PI closer")?;
        let span = Span::new(start, self.pos);
        if target.eq_ignore_ascii_case("xml") {
            // Swallow the XML declaration and continue with the next event
            // (the inner form, so the wrapper counts the event only once).
            return self.next_event_inner();
        }
        Ok(RawEvent::Pi { target, data, span })
    }
}

/// XML 1.0 §2.11 end-of-line normalization: every `\r\n` pair and every
/// lone `\r` becomes a single `\n`. Runs on raw source slices *before*
/// reference resolution, so `&#13;` still delivers a literal `\r`.
fn normalize_eol(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = String::with_capacity(raw.len());
    let mut seg = 0;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\r' {
            out.push_str(&raw[seg..i]);
            out.push('\n');
            i += 1;
            if i < bytes.len() && bytes[i] == b'\n' {
                i += 1;
            }
            seg = i;
        } else {
            i += 1;
        }
    }
    out.push_str(&raw[seg..]);
    out
}

/// Attribute-value normalization (XML 1.0 §3.3.3 after §2.11): line
/// breaks — `\r\n` counting as *one* — and tabs become single spaces,
/// then references are resolved. Borrows when the value needed neither —
/// the zero-copy fast path. Because §2.11 runs first, a literal `\r\n`
/// in a value yields one space, while `&#13;`/`&#10;` still deliver the
/// control characters themselves.
fn normalize_attr_value(raw: &str) -> Result<Cow<'_, str>, UnescapeError> {
    if raw.bytes().any(|b| matches!(b, b'\t' | b'\n' | b'\r')) {
        let bytes = raw.as_bytes();
        let mut normalized = String::with_capacity(raw.len());
        let mut seg = 0;
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\r' => {
                    normalized.push_str(&raw[seg..i]);
                    normalized.push(' ');
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'\n' {
                        i += 1;
                    }
                    seg = i;
                }
                b'\t' | b'\n' => {
                    normalized.push_str(&raw[seg..i]);
                    normalized.push(' ');
                    i += 1;
                    seg = i;
                }
                _ => i += 1,
            }
        }
        normalized.push_str(&raw[seg..]);
        return Ok(Cow::Owned(unescape(&normalized)?.into_owned()));
    }
    unescape(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Result<Vec<Event>, ParseError> {
        let mut r = Reader::new(src);
        let mut out = Vec::new();
        loop {
            let e = r.next_event()?;
            let done = e == Event::Eof;
            out.push(e);
            if done {
                return Ok(out);
            }
        }
    }

    fn names(src: &str) -> Vec<String> {
        events(src)
            .unwrap()
            .into_iter()
            .filter_map(|e| match e {
                Event::StartElement { name, .. } => Some(format!("+{name}")),
                Event::EndElement { name, .. } => Some(format!("-{name}")),
                Event::Text { text, .. } => Some(format!("\"{text}\"")),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn simple_document() {
        assert_eq!(
            names("<a><b>hi</b></a>"),
            ["+a", "+b", "\"hi\"", "-b", "-a"]
        );
    }

    #[test]
    fn self_closing_emits_end_event() {
        assert_eq!(names("<a><b/></a>"), ["+a", "+b", "-b", "-a"]);
    }

    #[test]
    fn attributes_parsed_and_normalized() {
        let evs = events("<a x=\"1\" y='two &amp; three'\n z=\"a\tb\"/>").unwrap();
        match &evs[0] {
            Event::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].value, "two & three");
                assert_eq!(attributes[2].value, "a b"); // tab normalized
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn crlf_in_attribute_value_is_one_space() {
        // §2.11 before §3.3.3: the pair is one line break, so one space
        let evs = events("<a v=\"x\r\ny\" w=\"p\rq\" u=\"m\r\n\nn\"/>").unwrap();
        match &evs[0] {
            Event::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "x y");
                assert_eq!(attributes[1].value, "p q");
                assert_eq!(attributes[2].value, "m  n"); // \r\n then \n: two breaks
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn char_refs_to_whitespace_survive_attr_normalization() {
        // §3.3.3: references to #xD/#xA/#x9 are NOT normalized
        let evs = events("<a v=\"x&#13;&#10;&#9;y\"/>").unwrap();
        match &evs[0] {
            Event::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].value, "x\r\n\ty");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn eol_normalized_in_text() {
        assert_eq!(names("<a>x\r\ny\rz\n</a>"), ["+a", "\"x\ny\nz\n\"", "-a"]);
    }

    #[test]
    fn eol_normalized_in_cdata() {
        assert_eq!(
            names("<a><![CDATA[x\r\ny\rz]]></a>"),
            ["+a", "\"x\ny\nz\"", "-a"]
        );
    }

    #[test]
    fn eol_normalized_in_comments_and_pis() {
        let evs = events("<a><!--l1\r\nl2\rl3--><?pi d1\r\nd2?></a>").unwrap();
        assert!(
            matches!(&evs[1], Event::Comment { text, .. } if text == "l1\nl2\nl3"),
            "{evs:#?}"
        );
        assert!(
            matches!(&evs[2], Event::ProcessingInstruction { data, .. } if data == "d1\nd2"),
            "{evs:#?}"
        );
    }

    #[test]
    fn char_ref_cr_survives_in_text() {
        // &#13; resolves after §2.11, so the literal CR reaches content
        assert_eq!(names("<a>x&#13;y</a>"), ["+a", "\"x\ry\"", "-a"]);
    }

    #[test]
    fn cr_only_document_counts_lines() {
        // classic-Mac line endings: every error position used to say line 1
        let err = events("<a>\r  <b>\r</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
        assert_eq!(err.position.line, 3);
    }

    #[test]
    fn crlf_counts_one_line_break() {
        let err = events("<a>\r\n<b>\r\n</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
        assert_eq!(err.position.line, 3);
        // and the column restarts after the pair
        let evs = events("<a>\r\nxy</a>").unwrap();
        match &evs[1] {
            Event::Text { span, .. } => assert_eq!((span.end.line, span.end.column), (2, 3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cr_text_falls_back_to_owned_and_is_counted() {
        let src = "<a>line1\r\nline2</a>";
        let mut r = Reader::new(src);
        r.next_event_borrowed().unwrap();
        match r.next_event_borrowed().unwrap() {
            BorrowedEvent::Text { text, .. } => {
                assert!(matches!(text, Cow::Owned(_)));
                assert_eq!(text, "line1\nline2");
            }
            other => panic!("unexpected {other:?}"),
        }
        while !matches!(r.next_event_borrowed().unwrap(), BorrowedEvent::Eof) {}
        assert_eq!(r.owned_fallback, 1);
    }

    #[test]
    fn borrowed_events_slice_the_source() {
        let src = "<a x=\"plain\">text</a>";
        let mut r = Reader::new(src);
        match r.next_event_borrowed().unwrap() {
            BorrowedEvent::StartElement {
                name, attributes, ..
            } => {
                assert_eq!(name, "a");
                assert!(matches!(attributes[0].value, Cow::Borrowed(_)));
                assert_eq!(attributes[0].value, "plain");
            }
            other => panic!("unexpected {other:?}"),
        }
        match r.next_event_borrowed().unwrap() {
            BorrowedEvent::Text { text, .. } => {
                assert!(matches!(text, Cow::Borrowed(_)));
                assert_eq!(text, "text");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn entity_values_fall_back_to_owned() {
        let mut r = Reader::new("<a x=\"1 &amp; 2\">a &lt; b</a>");
        match r.next_event_borrowed().unwrap() {
            BorrowedEvent::StartElement { attributes, .. } => {
                assert!(matches!(attributes[0].value, Cow::Owned(_)));
                assert_eq!(attributes[0].value, "1 & 2");
            }
            other => panic!("unexpected {other:?}"),
        }
        match r.next_event_borrowed().unwrap() {
            BorrowedEvent::Text { text, .. } => {
                assert!(matches!(text, Cow::Owned(_)));
                assert_eq!(text, "a < b");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn borrowed_stream_matches_owned_stream() {
        let src = "<?xml version=\"1.0\"?><root a=\"v\">\n  <child b='1 &gt; 0'>x &amp; y</child>\n  <!-- note --><![CDATA[raw <>]]><?pi data?>\n  <empty/>\n</root>";
        let mut owned = Vec::new();
        let mut r = Reader::new(src);
        loop {
            let e = r.next_event().unwrap();
            let done = e == Event::Eof;
            owned.push(e);
            if done {
                break;
            }
        }
        let mut r = Reader::new(src);
        for expect in &owned {
            let got = r.next_event_borrowed().unwrap().into_owned();
            assert_eq!(&got, expect);
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = events("<a x=\"1\" x=\"2\"/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn mismatched_tags_rejected_with_position() {
        let err = events("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
        assert_eq!(err.position.line, 1);
    }

    #[test]
    fn unclosed_elements_rejected() {
        let err = events("<a><b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnclosedElements(ref v) if v == &["a", "b"]));
    }

    #[test]
    fn second_root_rejected() {
        let err = events("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn no_root_rejected() {
        let err = events("   \n  ").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::NoRootElement));
    }

    #[test]
    fn cdata_folds_into_text() {
        assert_eq!(
            names("<a><![CDATA[<raw> & text]]></a>"),
            ["+a", "\"<raw> & text\"", "-a"]
        );
    }

    #[test]
    fn comments_and_pis() {
        let evs = events("<?xml version=\"1.0\"?><!-- top --><a><?php echo?></a>").unwrap();
        assert!(matches!(&evs[0], Event::Comment { text, .. } if text == " top "));
        assert!(evs
            .iter()
            .any(|e| matches!(e, Event::ProcessingInstruction { target, .. } if target == "php")));
    }

    #[test]
    fn double_dash_in_comment_rejected() {
        let err = events("<a><!-- bad -- comment --></a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::IllegalSequence(_)));
    }

    #[test]
    fn doctype_rejected_clearly() {
        let err = events("<!DOCTYPE html><a/>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DoctypeUnsupported));
    }

    #[test]
    fn cdata_end_in_text_rejected() {
        let err = events("<a>bad ]]> text</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::IllegalSequence("]]>")));
    }

    #[test]
    fn bad_entity_rejected() {
        let err = events("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Reference(_)));
    }

    #[test]
    fn positions_track_lines() {
        let err = events("<a>\n  <b>\n</a>").unwrap_err();
        assert_eq!(err.position.line, 3);
    }

    #[test]
    fn positions_track_lines_through_multiline_text_and_values() {
        // newlines inside text runs and attribute values go through the
        // byte-sweep fast path's slow lane; line accounting must survive
        let err = events("<a v=\"one\ntwo\">line\nline\nline<b>\n</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
        assert_eq!(err.position.line, 5);
    }

    #[test]
    fn non_ascii_text_positions_count_chars() {
        // '€' is one column but three bytes; a following error must sit
        // at the character-accurate column
        let evs = events("<a>€€€</a>").unwrap();
        match &evs[1] {
            Event::Text { text, span } => {
                assert_eq!(text, "€€€");
                assert_eq!(span.end.column, span.start.column + 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn long_text_runs_cross_word_boundaries_cleanly() {
        // runs longer than the 16-byte SWAR stride, with stops planted
        // at every alignment relative to the run start
        for pad in 0..17 {
            let text = format!("{}&amp;{}", "x".repeat(pad), "y".repeat(40));
            let src = format!("<a>{text}</a>");
            let evs = events(&src).unwrap();
            match &evs[1] {
                Event::Text { text: t, .. } => {
                    assert_eq!(*t, text.replace("&amp;", "&"), "pad {pad}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    fn limited_events(src: &str, limits: Limits) -> Result<Vec<Event>, ParseError> {
        let mut r = Reader::with_limits(src, limits);
        let mut out = Vec::new();
        loop {
            let e = r.next_event()?;
            let done = e == Event::Eof;
            out.push(e);
            if done {
                return Ok(out);
            }
        }
    }

    #[test]
    fn input_size_budget_trips_before_parsing() {
        let err = limited_events("<a>hello</a>", Limits::unbounded().with_max_input_bytes(4))
            .unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::InputTooLarge {
                limit: 4,
                actual: 12
            })
        ));
        assert_eq!(err.position.offset, 0);
    }

    #[test]
    fn depth_budget_trips_at_the_offending_tag() {
        let err = limited_events("<a><b><c/></b></a>", Limits::unbounded().with_max_depth(2))
            .unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::DepthExceeded { limit: 2 })
        ));
        // the budget trips at <c>, which sits on line 1 past <a><b>
        assert_eq!(err.position.offset, 6);
    }

    #[test]
    fn depth_budget_ignores_siblings() {
        // 100 self-closing siblings never accumulate depth
        let src = format!("<a>{}</a>", "<b/>".repeat(100));
        assert!(limited_events(&src, Limits::unbounded().with_max_depth(2)).is_ok());
    }

    #[test]
    fn attribute_count_budget_trips() {
        let src = "<a p=\"1\" q=\"2\" r=\"3\"/>";
        let err = limited_events(src, Limits::unbounded().with_max_attributes(2)).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::TooManyAttributes { limit: 2 })
        ));
        assert!(limited_events(src, Limits::unbounded().with_max_attributes(3)).is_ok());
    }

    #[test]
    fn attribute_value_budget_trips_on_raw_length() {
        let src = "<a v=\"0123456789\"/>";
        let err =
            limited_events(src, Limits::unbounded().with_max_attr_value_bytes(8)).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::AttributeValueTooLong {
                limit: 8,
                actual: 10
            })
        ));
    }

    #[test]
    fn expansion_count_budget_trips() {
        let src = format!("<a>{}</a>", "&amp;".repeat(10));
        let err =
            limited_events(&src, Limits::unbounded().with_max_entity_expansions(9)).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::TooManyExpansions { limit: 9 })
        ));
        assert!(limited_events(&src, Limits::unbounded().with_max_entity_expansions(10)).is_ok());
    }

    #[test]
    fn expansion_bytes_budget_counts_cumulative_output() {
        // each run expands to 3 bytes ("a&b"); the third run crosses 8
        let src = "<r><x>a&amp;b</x><x>a&amp;b</x><x>a&amp;b</x></r>";
        let err = limited_events(src, Limits::unbounded().with_max_expansion_bytes(8)).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::ExpansionTooLarge { limit: 8 })
        ));
        assert!(limited_events(src, Limits::unbounded().with_max_expansion_bytes(9)).is_ok());
    }

    #[test]
    fn whitespace_normalization_is_not_expansion() {
        // owned rewrite with zero references: no expansion accounting
        let src = "<a v=\"x\ty\"/>";
        assert!(limited_events(src, Limits::unbounded().with_max_expansion_bytes(0)).is_ok());
    }

    #[test]
    fn eol_normalization_is_not_expansion() {
        let src = "<a>x\r\ny</a>";
        assert!(limited_events(src, Limits::unbounded().with_max_expansion_bytes(0)).is_ok());
    }

    #[test]
    fn default_limits_accept_ordinary_documents() {
        let src = "<po date=\"1999-10-20\"><item part=\"a &amp; b\">2 &lt; 3</item></po>";
        assert_eq!(
            limited_events(src, Limits::default()).unwrap(),
            events(src).unwrap()
        );
    }

    #[test]
    fn purchase_order_smoke() {
        let src = "<purchaseOrder orderDate=\"1999-10-20\">\n  <shipTo country=\"US\">\n    <name>Alice Smith</name>\n  </shipTo>\n</purchaseOrder>";
        let evs = events(src).unwrap();
        assert!(matches!(
            &evs[0],
            Event::StartElement { name, attributes, .. }
                if name == "purchaseOrder" && attributes[0].value == "1999-10-20"
        ));
    }

    #[test]
    fn normalize_eol_unit() {
        assert_eq!(normalize_eol("a\r\nb"), "a\nb");
        assert_eq!(normalize_eol("a\rb"), "a\nb");
        assert_eq!(normalize_eol("\r\r\n\r"), "\n\n\n");
        assert_eq!(normalize_eol("plain"), "plain");
        assert_eq!(normalize_eol("a\r\n\nb"), "a\n\nb");
    }

    #[test]
    fn normalize_attr_value_unit() {
        assert_eq!(normalize_attr_value("a\r\nb").unwrap(), "a b");
        assert_eq!(normalize_attr_value("a\rb").unwrap(), "a b");
        assert_eq!(normalize_attr_value("a\r\n\nb").unwrap(), "a  b");
        assert_eq!(normalize_attr_value("a\t\r\n\rb").unwrap(), "a   b");
        assert!(matches!(
            normalize_attr_value("plain").unwrap(),
            Cow::Borrowed(_)
        ));
    }
}
