//! Tree builder: turns the event stream into a [`dom::Document`].

use dom::{Document, NodeId};
use limits::Limits;

use crate::error::{ParseError, ParseErrorKind};
use crate::event::Event;
use crate::reader::Reader;

/// Parses a complete XML document into a DOM tree.
///
/// Whitespace-only text *between* elements is preserved exactly as
/// written; callers that want it stripped (e.g. the schema reader) filter
/// text nodes themselves.
pub fn parse_document(src: &str) -> Result<Document, ParseError> {
    build(Reader::new(src))
}

/// [`parse_document`] under a resource budget: the reader enforces
/// `limits` (input size, depth, attributes, expansion volume) and a trip
/// aborts the build with [`ParseErrorKind::Resource`] before the tree can
/// grow past the budget.
pub fn parse_document_with_limits(src: &str, limits: &Limits) -> Result<Document, ParseError> {
    build(Reader::with_limits(src, limits.clone()))
}

/// Parses a fragment: a single element, optionally surrounded by
/// whitespace, without requiring a document prolog.
///
/// Returns the document plus the id of the fragment's root element. Used
/// by the P-XML constructor parser.
pub fn parse_fragment(src: &str) -> Result<(Document, NodeId), ParseError> {
    parse_fragment_with_limits(src, &Limits::unbounded())
}

/// [`parse_fragment`] under a resource budget — the incremental
/// revalidator (`validator::patch`) parses patch-supplied fragments with
/// the session's [`Limits`] so a hostile payload is rejected with a
/// typed [`ParseErrorKind::Resource`] before it can grow a tree.
pub fn parse_fragment_with_limits(
    src: &str,
    limits: &Limits,
) -> Result<(Document, NodeId), ParseError> {
    let doc = build(Reader::with_limits(src, limits.clone()))?;
    let root = doc.root_element().ok_or(ParseError::new(
        ParseErrorKind::NoRootElement,
        xmlchars::Position::START,
    ))?;
    Ok((doc, root))
}

fn build(mut reader: Reader<'_>) -> Result<Document, ParseError> {
    let mut doc = Document::new();
    let mut stack: Vec<NodeId> = vec![doc.document_node()];
    loop {
        match reader.next_event()? {
            Event::StartElement {
                name,
                attributes,
                span,
                ..
            } => {
                let el = doc
                    .create_element(name)
                    .map_err(|_| ParseError::new(ParseErrorKind::NoRootElement, span.start))?;
                doc.set_span(el, span).expect("fresh node");
                for attr in attributes {
                    doc.set_attribute(el, attr.name, attr.value)
                        .expect("reader validated attribute names");
                }
                let parent = *stack.last().expect("document node always present");
                doc.append_child(parent, el)
                    .expect("reader enforces single root");
                stack.push(el);
            }
            Event::EndElement { .. } => {
                stack.pop();
            }
            Event::Text { text, span } => {
                // Only keep text inside the root element; the reader already
                // rejects non-whitespace text outside it.
                if stack.len() > 1 {
                    let t = doc.create_text(text);
                    doc.set_span(t, span).expect("fresh node");
                    let parent = *stack.last().unwrap();
                    doc.append_child(parent, t).expect("text under element");
                }
            }
            Event::Comment { text, span } => {
                let c = doc.create_comment(text);
                doc.set_span(c, span).expect("fresh node");
                let parent = *stack.last().unwrap();
                doc.append_child(parent, c).expect("comment");
            }
            Event::ProcessingInstruction { target, data, span } => {
                let pi = doc
                    .create_pi(target, data)
                    .expect("reader validated PI target");
                doc.set_span(pi, span).expect("fresh node");
                let parent = *stack.last().unwrap();
                doc.append_child(parent, pi).expect("pi");
            }
            Event::Eof => break,
        }
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dom::serialize;

    #[test]
    fn roundtrip_compact_document() {
        let src = "<purchaseOrder orderDate=\"1999-10-20\"><shipTo country=\"US\"><name>Alice Smith</name><zip>90952</zip></shipTo><comment>Hurry!</comment></purchaseOrder>";
        let doc = parse_document(src).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(serialize(&doc, root).unwrap(), src);
    }

    #[test]
    fn whitespace_between_elements_preserved() {
        let src = "<a>\n  <b/>\n</a>";
        let doc = parse_document(src).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(serialize(&doc, root).unwrap(), src);
    }

    #[test]
    fn fragment_returns_root() {
        let (doc, root) =
            parse_fragment("  <shipTo country=\"US\"><name>A</name></shipTo>\n").unwrap();
        assert_eq!(doc.tag_name(root).unwrap(), "shipTo");
        assert_eq!(doc.attribute(root, "country").unwrap(), Some("US"));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(parse_document("<a><b></a>").is_err());
        assert!(parse_fragment("no markup").is_err());
    }

    #[test]
    fn entities_resolved_in_tree() {
        let doc = parse_document("<a>x &lt; y &#38; z</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root).unwrap(), "x < y & z");
    }

    #[test]
    fn comments_and_pis_in_tree() {
        let doc = parse_document("<!-- top --><a><?target data?></a>").unwrap();
        let dn = doc.document_node();
        assert_eq!(doc.child_count(dn).unwrap(), 2);
        let root = doc.root_element().unwrap();
        assert_eq!(doc.child_count(root).unwrap(), 1);
    }

    #[test]
    fn spans_recorded_on_elements() {
        let doc = parse_document("<a>\n<b/></a>").unwrap();
        let root = doc.root_element().unwrap();
        let b = doc.child_element_named(root, "b").unwrap();
        assert_eq!(doc.span(b).unwrap().start.line, 2);
    }

    #[test]
    fn spans_recorded_on_text_nodes() {
        let doc = parse_document("<a>\n<b/>hi</a>").unwrap();
        let root = doc.root_element().unwrap();
        let children = doc.child_vec(root).unwrap();
        // [text "\n", <b/>, text "hi"] — the trailing text starts on line 2
        let hi = children[2];
        let span = doc.span(hi).unwrap();
        assert_eq!(span.start.line, 2);
        assert!(span.end.offset > span.start.offset);
    }
}
