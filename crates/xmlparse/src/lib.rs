//! An XML 1.0 parser: a pull (event) reader with well-formedness
//! checking, plus a tree builder producing [`dom::Document`] values.
//!
//! Coverage matches the document class used throughout the paper and by
//! XML Schema instance documents: elements, attributes, character data,
//! CDATA sections, comments, processing instructions, the XML declaration,
//! the five predefined entities and character references, and namespace
//! *syntax* (prefixes are preserved; resolution lives in `dom`'s
//! `namespace_of_prefix`). Not supported — and rejected with a clear error
//! rather than silently ignored — are DOCTYPE declarations with internal
//! subsets (the paper's pipeline is schema-based, not DTD-based).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod feed;
pub mod reader;
pub mod scan;
pub mod tree;

pub use error::{ParseError, ParseErrorKind};
pub use event::{AttributeEvent, BorrowedAttribute, BorrowedEvent, Event};
pub use feed::FeedReader;
pub use reader::{Reader, ReaderStats};
pub use tree::{
    parse_document, parse_document_with_limits, parse_fragment, parse_fragment_with_limits,
};
