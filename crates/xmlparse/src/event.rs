//! The events produced by the pull reader.
//!
//! Two families: the owned [`Event`] (what the tree builder and most
//! callers consume) and the zero-copy [`BorrowedEvent`], whose names and
//! text are slices of the source buffer. [`BorrowedEvent::into_owned`]
//! converts one into the other; [`crate::Reader::next_event`] is exactly
//! `next_event_borrowed().map(into_owned)`, so the two streams are
//! identical by construction.

use std::borrow::Cow;

use xmlchars::Span;

/// One attribute as read from a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeEvent {
    /// Lexical attribute name.
    pub name: String,
    /// Value after attribute-value normalization and entity resolution.
    pub value: String,
}

/// A parsing event.
///
/// The reader guarantees that start/end events are properly nested and
/// that exactly one root element is produced before [`Event::Eof`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" …>` — `self_closing` distinguishes `<name/>`.
    StartElement {
        /// Lexical tag name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<AttributeEvent>,
        /// Whether the tag was `<name/>`; the reader still emits a
        /// matching [`Event::EndElement`] immediately after.
        self_closing: bool,
        /// Source span of the tag.
        span: Span,
    },
    /// `</name>` (also synthesized after a self-closing start tag).
    EndElement {
        /// Lexical tag name.
        name: String,
        /// Source span of the tag.
        span: Span,
    },
    /// Character data with entities resolved; CDATA sections are folded in.
    Text {
        /// Resolved text.
        text: String,
        /// Source span of the run.
        span: Span,
    },
    /// `<!-- … -->` without the delimiters.
    Comment {
        /// Comment body.
        text: String,
        /// Source span.
        span: Span,
    },
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data, possibly empty.
        data: String,
        /// Source span.
        span: Span,
    },
    /// End of input, after the root element closed.
    Eof,
}

/// One attribute as read from a start tag, borrowing the source buffer.
///
/// The name is always a slice of the source; the value is borrowed
/// unless attribute-value normalization or entity resolution actually
/// rewrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BorrowedAttribute<'src> {
    /// Lexical attribute name (a slice of the source).
    pub name: &'src str,
    /// Value after normalization; borrowed when already normal.
    pub value: Cow<'src, str>,
}

impl BorrowedAttribute<'_> {
    /// An owned copy of this attribute.
    pub fn to_owned_event(&self) -> AttributeEvent {
        AttributeEvent {
            name: self.name.to_string(),
            value: self.value.clone().into_owned(),
        }
    }
}

/// A parsing event borrowing the source buffer (`'src`) and, for start
/// tags, the reader's reusable attribute buffer (`'buf`).
///
/// Produced by [`crate::Reader::next_event_borrowed`]; for documents
/// without entity references, producing one of these performs no heap
/// allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BorrowedEvent<'src, 'buf> {
    /// `<name attr="v" …>` — `self_closing` distinguishes `<name/>`.
    StartElement {
        /// Lexical tag name (a slice of the source).
        name: &'src str,
        /// Attributes in document order, in the reader's reused buffer.
        attributes: &'buf [BorrowedAttribute<'src>],
        /// Whether the tag was `<name/>`; the reader still emits a
        /// matching end event immediately after.
        self_closing: bool,
        /// Source span of the tag.
        span: Span,
    },
    /// `</name>` (also synthesized after a self-closing start tag).
    EndElement {
        /// Lexical tag name (a slice of the source).
        name: &'src str,
        /// Source span of the tag.
        span: Span,
    },
    /// Character data; borrowed unless entity resolution rewrote it.
    /// CDATA sections are folded in (always borrowed).
    Text {
        /// Resolved text.
        text: Cow<'src, str>,
        /// Source span of the run.
        span: Span,
    },
    /// `<!-- … -->` without the delimiters; borrowed unless end-of-line
    /// normalization rewrote a `\r`.
    Comment {
        /// Comment body.
        text: Cow<'src, str>,
        /// Source span.
        span: Span,
    },
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target.
        target: &'src str,
        /// PI data, possibly empty; borrowed unless end-of-line
        /// normalization rewrote a `\r`.
        data: Cow<'src, str>,
        /// Source span.
        span: Span,
    },
    /// End of input, after the root element closed.
    Eof,
}

impl BorrowedEvent<'_, '_> {
    /// Copies the event into its owned form.
    pub fn into_owned(self) -> Event {
        match self {
            BorrowedEvent::StartElement {
                name,
                attributes,
                self_closing,
                span,
            } => Event::StartElement {
                name: name.to_string(),
                attributes: attributes
                    .iter()
                    .map(BorrowedAttribute::to_owned_event)
                    .collect(),
                self_closing,
                span,
            },
            BorrowedEvent::EndElement { name, span } => Event::EndElement {
                name: name.to_string(),
                span,
            },
            BorrowedEvent::Text { text, span } => Event::Text {
                text: text.into_owned(),
                span,
            },
            BorrowedEvent::Comment { text, span } => Event::Comment {
                text: text.into_owned(),
                span,
            },
            BorrowedEvent::ProcessingInstruction { target, data, span } => {
                Event::ProcessingInstruction {
                    target: target.to_string(),
                    data: data.into_owned(),
                    span,
                }
            }
            BorrowedEvent::Eof => Event::Eof,
        }
    }

    /// Whether every string in the event borrows the source buffer (the
    /// zero-allocation case; `false` means entity expansion or
    /// normalization forced an owned copy somewhere).
    pub fn is_fully_borrowed(&self) -> bool {
        match self {
            BorrowedEvent::StartElement { attributes, .. } => attributes
                .iter()
                .all(|a| matches!(a.value, Cow::Borrowed(_))),
            BorrowedEvent::Text { text, .. } | BorrowedEvent::Comment { text, .. } => {
                matches!(text, Cow::Borrowed(_))
            }
            BorrowedEvent::ProcessingInstruction { data, .. } => matches!(data, Cow::Borrowed(_)),
            _ => true,
        }
    }
}
