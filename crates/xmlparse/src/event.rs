//! The events produced by the pull reader.

use xmlchars::Span;

/// One attribute as read from a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeEvent {
    /// Lexical attribute name.
    pub name: String,
    /// Value after attribute-value normalization and entity resolution.
    pub value: String,
}

/// A parsing event.
///
/// The reader guarantees that start/end events are properly nested and
/// that exactly one root element is produced before [`Event::Eof`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `<name attr="v" …>` — `self_closing` distinguishes `<name/>`.
    StartElement {
        /// Lexical tag name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<AttributeEvent>,
        /// Whether the tag was `<name/>`; the reader still emits a
        /// matching [`Event::EndElement`] immediately after.
        self_closing: bool,
        /// Source span of the tag.
        span: Span,
    },
    /// `</name>` (also synthesized after a self-closing start tag).
    EndElement {
        /// Lexical tag name.
        name: String,
        /// Source span of the tag.
        span: Span,
    },
    /// Character data with entities resolved; CDATA sections are folded in.
    Text {
        /// Resolved text.
        text: String,
        /// Source span of the run.
        span: Span,
    },
    /// `<!-- … -->` without the delimiters.
    Comment {
        /// Comment body.
        text: String,
        /// Source span.
        span: Span,
    },
    /// `<?target data?>`.
    ProcessingInstruction {
        /// PI target.
        target: String,
        /// PI data, possibly empty.
        data: String,
        /// Source span.
        span: Span,
    },
    /// End of input, after the root element closed.
    Eof,
}
