//! Word-at-a-time classification of "plain" bytes — the reader's inner
//! scan loops, widened from one byte per iteration to eight.
//!
//! A byte is *plain* for a given context when it is printable ASCII
//! (`0x20..0x80`) and not one of up to two context-specific stop bytes
//! (`<` and `]` in character data, the quote and `<` in attribute
//! values, `-`/`]`/`?` in comments/CDATA/PIs). Everything the reader has
//! to look at — markup, stops, controls (including `\r`, which
//! end-of-line normalization must rewrite), and non-ASCII — falls out of
//! the plain class, so [`scan_plain`] returns the index of the first
//! byte the per-character slow lane must decode.
//!
//! The classifier is u64 SWAR (SIMD within a register), std-only and
//! safe: the workspace forbids `unsafe`, which rules out the
//! `std::arch` SSE2/AVX2 intrinsic paths (their unaligned loads require
//! raw pointers), so the portable eight-lane word trick is the widest
//! scan available. Two words are processed per iteration to keep the
//! loop ahead of the byte-shuffling overhead; `u64::from_le_bytes` on a
//! copied 8-byte array compiles to a single unaligned load on every
//! target that matters.
//!
//! The bit tricks (Hacker's Delight §6-1, the classic `haszero` /
//! `hasless` idioms) can raise false positives in lanes *more
//! significant* than a true hit when the subtraction borrows across a
//! lane boundary — but never in lanes before one, and never a false
//! negative. Since the scanner only consumes bytes strictly before the
//! first set lane (`trailing_zeros` on the little-endian word order),
//! those spurious upper-lane bits are harmless: the returned index is
//! exact. `tests::swar_matches_scalar` holds the word path to the
//! byte-loop reference on exhaustive two-byte windows and randomized
//! buffers.

/// All-ones-per-lane and lane-high-bit masks for the SWAR tricks.
const ONES: u64 = 0x0101_0101_0101_0101;
const HIGHS: u64 = 0x8080_8080_8080_8080;

/// Lane-high-bit mask of lanes equal to zero (plus possible spurious
/// bits in lanes above a true hit — see the module docs).
#[inline(always)]
fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(ONES) & !x & HIGHS
}

/// Lane-high-bit mask of lanes less than `n` (`n <= 0x80`), with the
/// same upper-lane false-positive caveat.
#[inline(always)]
fn lt_lanes(x: u64, n: u8) -> u64 {
    x.wrapping_sub(ONES * n as u64) & !x & HIGHS
}

/// Lane-high-bit mask of the non-plain lanes in `word`: controls
/// (`< 0x20`, which includes `\t`, `\n`, and `\r`), non-ASCII
/// (`>= 0x80`), and the two stop bytes.
#[inline(always)]
fn classify(word: u64, stop_a: u64, stop_b: u64) -> u64 {
    (word & HIGHS) | lt_lanes(word, 0x20) | zero_lanes(word ^ stop_a) | zero_lanes(word ^ stop_b)
}

/// Returns the index of the first byte at or after `start` that is not
/// plain — not printable ASCII, or one of the two `stops` bytes —
/// or `bytes.len()` if the rest of the buffer is plain. Both stop bytes
/// must be ASCII (callers pass markup delimiters); pass the same byte
/// twice when the context has only one stop.
#[inline]
pub fn scan_plain(bytes: &[u8], start: usize, stops: [u8; 2]) -> usize {
    let stop_a = ONES * stops[0] as u64;
    let stop_b = ONES * stops[1] as u64;
    let mut i = start;
    // main lane: two unrolled 8-byte words per iteration
    while i + 16 <= bytes.len() {
        let w0 = u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let m0 = classify(w0, stop_a, stop_b);
        if m0 != 0 {
            return i + (m0.trailing_zeros() / 8) as usize;
        }
        let w1 = u64::from_le_bytes(bytes[i + 8..i + 16].try_into().unwrap());
        let m1 = classify(w1, stop_a, stop_b);
        if m1 != 0 {
            return i + 8 + (m1.trailing_zeros() / 8) as usize;
        }
        i += 16;
    }
    if i + 8 <= bytes.len() {
        let w = u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
        let m = classify(w, stop_a, stop_b);
        if m != 0 {
            return i + (m.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    // tail: at most 7 bytes, byte at a time
    while i < bytes.len() && is_plain(bytes[i], stops) {
        i += 1;
    }
    i
}

/// The scalar definition of the plain class — the reference the SWAR
/// path is tested against, and the pre-SWAR per-byte loop the B12 bench
/// measures the widening against.
#[inline(always)]
pub fn is_plain(b: u8, stops: [u8; 2]) -> bool {
    (0x20..0x80).contains(&b) && b != stops[0] && b != stops[1]
}

/// [`scan_plain`], one byte per iteration: the PR 4 byte-sweep loop,
/// kept as the differential-test oracle and the B12 baseline.
#[inline]
pub fn scan_plain_scalar(bytes: &[u8], start: usize, stops: [u8; 2]) -> usize {
    let mut i = start;
    while i < bytes.len() && is_plain(bytes[i], stops) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_all_plain() {
        assert_eq!(scan_plain(b"", 0, [b'<', b']']), 0);
        let plain = b"abcdefghijklmnopqrstuvwxyz 0123456789";
        assert_eq!(scan_plain(plain, 0, [b'<', b']']), plain.len());
        assert_eq!(scan_plain(plain, 10, [b'<', b']']), plain.len());
    }

    #[test]
    fn stops_found_at_every_alignment() {
        // slide a stop byte across two full words plus a tail
        for at in 0..24 {
            let mut buf = vec![b'x'; 24];
            buf[at] = b'<';
            assert_eq!(scan_plain(&buf, 0, [b'<', b']']), at, "offset {at}");
            buf[at] = b']';
            assert_eq!(scan_plain(&buf, 0, [b'<', b']']), at, "offset {at}");
            buf[at] = b'\r';
            assert_eq!(scan_plain(&buf, 0, [b'<', b']']), at, "offset {at}");
            buf[at] = 0xC3; // non-ASCII lead byte
            assert_eq!(scan_plain(&buf, 0, [b'<', b']']), at, "offset {at}");
        }
    }

    #[test]
    fn boundary_bytes_classify_exactly() {
        // 0x1F control, 0x20 space, 0x7F DEL, 0x80 non-ASCII
        assert!(!is_plain(0x1F, [b'<', b'<']));
        assert!(is_plain(0x20, [b'<', b'<']));
        assert!(is_plain(0x7F, [b'<', b'<']));
        assert!(!is_plain(0x80, [b'<', b'<']));
        assert_eq!(scan_plain(&[b'a', 0x1F, b'b'], 0, [b'<', b'<']), 1);
        assert_eq!(scan_plain(&[b'a', 0x7F, 0x80], 0, [b'<', b'<']), 2);
    }

    #[test]
    fn adjacent_control_does_not_shadow_a_space() {
        // the hasless borrow chain: a control directly before a space
        // must not flag the space (the documented upper-lane false
        // positive is past the first hit, so the index stays exact)
        let buf = b"aaaaaaa\n bbbbbbbb";
        assert_eq!(scan_plain(buf, 0, [b'<', b'<']), 7);
        assert_eq!(scan_plain(buf, 8, [b'<', b'<']), buf.len());
    }

    #[test]
    fn swar_matches_scalar() {
        // exhaustive two-byte windows at a word boundary, plus an LCG
        // sweep of longer buffers with mixed byte classes
        let stops = [b'<', b'"'];
        for a in 0..=255u8 {
            for b in [0x00, 0x0D, 0x1F, 0x20, b'<', b'"', 0x7F, 0x80, 0xFF] {
                let mut buf = vec![b'p'; 7];
                buf.push(a);
                buf.push(b);
                buf.extend_from_slice(b"ppppppppp");
                assert_eq!(
                    scan_plain(&buf, 0, stops),
                    scan_plain_scalar(&buf, 0, stops),
                    "a={a:#x} b={b:#x}"
                );
            }
        }
        let mut state = 0x5eed_cafe_u64;
        for len in [1usize, 7, 8, 9, 15, 16, 17, 31, 64, 257] {
            for _ in 0..64 {
                let buf: Vec<u8> = (0..len)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        // bias toward plain bytes so runs actually form
                        match state >> 60 {
                            0 => (state >> 33) as u8,
                            _ => 0x20 + ((state >> 33) % 0x5F) as u8,
                        }
                    })
                    .collect();
                for start in [0, len / 2, len.saturating_sub(1)] {
                    assert_eq!(
                        scan_plain(&buf, start, stops),
                        scan_plain_scalar(&buf, start, stops),
                        "len={len} start={start} buf={buf:?}"
                    );
                }
            }
        }
    }
}
