//! Chunked ("push") input: parse documents larger than memory.
//!
//! [`FeedReader`] accepts raw bytes in arbitrary slices via
//! [`feed`](FeedReader::feed) and delivers the same event stream — same
//! text, same spans, same line/column positions, same errors — as a
//! whole-input [`Reader`](crate::Reader) over the concatenation. Only
//! the *unconsumed suffix* of the input (at most one in-flight token
//! plus the current chunk) is buffered, so an O(depth) consumer such as
//! `validator::StreamingValidator` runs in memory independent of
//! document length.
//!
//! How it works: each `feed` appends to an internal buffer and resumes
//! the tokenizer over it in *feed mode*, where running off the end of
//! the buffer mid-token yields the internal
//! [`ParseErrorKind::NeedMoreData`] instead of a hard end-of-input
//! error. The attempt then rolls back to the token's first byte, the
//! tokenizer's cross-chunk state (open-element stack, position, EOL
//! lookbehind, expansion budgets) is suspended, and the consumed prefix
//! of the buffer is compacted away. Multi-byte delimiters that straddle
//! a chunk edge (`]]>`, `-->`, `?>`, `<![CDATA[`…) are handled by the
//! tokenizer's feed-mode lookahead: a buffer that ends on a proper
//! prefix of a delimiter suspends rather than guesses. Split UTF-8
//! sequences are stitched before decoding ([`FeedReader::feed`] takes
//! `&[u8]`, the one entry point where invalid UTF-8 is even
//! representable — it surfaces as [`ParseErrorKind::InvalidUtf8`]).
//! Split `\r\n` pairs need no special casing: a text run is only
//! emitted once its terminating `<` is buffered, so §2.11 normalization
//! always sees the whole run.
//!
//! Because a suspended attempt reparses its partial token from the
//! start on the next feed, a single token (one text run, one tag) that
//! spans many chunks costs O(token·chunks) re-scans. Tokens are tiny
//! next to sensible chunk sizes (64 KiB+), so in practice each byte is
//! scanned ~once; the B12 bench measures exactly this end-to-end.

use limits::{Limits, ResourceErrorKind};

use crate::error::{ParseError, ParseErrorKind};
use crate::event::BorrowedEvent;
use crate::reader::{Reader, ReaderStats, Suspended};

/// How a pump pass over the buffered input ended.
enum Pump {
    /// Ran out of buffered input mid-token; suspended for more.
    Suspended,
    /// The sink returned `false`; no further events wanted.
    Stopped,
    /// The document completed (finish mode only).
    Done,
}

/// An incremental parser fed with byte chunks; see the module docs.
///
/// Events are delivered to a sink closure during [`feed`](Self::feed) /
/// [`finish`](Self::finish) — they borrow the internal buffer, which
/// mutates between calls, so they cannot be returned by value. The sink
/// returns `true` to keep parsing; `false` abandons the rest of the
/// stream (the reader discards its buffer and ignores further feeds).
///
/// ```
/// use xmlparse::{BorrowedEvent, FeedReader};
///
/// let mut text = String::new();
/// let mut feeder = FeedReader::new();
/// for chunk in ["<doc><item>a", "b</item", "></doc>"] {
///     feeder
///         .feed(chunk.as_bytes(), |event| {
///             if let BorrowedEvent::Text { text: t, .. } = event {
///                 text.push_str(t);
///             }
///             true
///         })
///         .unwrap();
/// }
/// feeder.finish(|_| true).unwrap();
/// assert_eq!(text, "ab");
/// ```
pub struct FeedReader {
    /// The unconsumed window of the document, always valid UTF-8.
    buf: String,
    /// Incomplete trailing UTF-8 sequence from the last chunk (0–3
    /// bytes), stitched to the front of the next chunk.
    utf8_tail: Vec<u8>,
    /// Absolute document offset of `buf[0]`.
    base: usize,
    /// The tokenizer's cross-chunk state.
    state: Suspended,
    limits: Limits,
    /// Cumulative bytes fed — the chunked analogue of the whole-input
    /// `max_input_bytes` check.
    total_bytes: usize,
    /// The sink asked to stop; further input is discarded.
    stopped: bool,
    /// Terminal error, latched so every later call re-reports it.
    error: Option<ParseError>,
    /// Cumulative throughput counters across every resumed tokenizer
    /// pass (each pass reports only its own delta).
    stats: ReaderStats,
}

impl FeedReader {
    /// A feed reader with no resource budgets ([`Limits::unbounded`]).
    pub fn new() -> Self {
        FeedReader::with_limits(Limits::unbounded())
    }

    /// A feed reader enforcing `limits` — the same parse-side budgets as
    /// [`Reader::with_limits`](crate::Reader::with_limits), with
    /// `max_input_bytes` applied to the *cumulative* feed total (the
    /// whole-input check sees the full document up front; the chunked
    /// one trips on the feed that crosses the ceiling).
    pub fn with_limits(limits: Limits) -> Self {
        FeedReader {
            buf: String::new(),
            utf8_tail: Vec::new(),
            base: 0,
            state: Suspended::default(),
            limits,
            total_bytes: 0,
            stopped: false,
            error: None,
            stats: ReaderStats::default(),
        }
    }

    /// The tokenizer's current position — the end of the last completed
    /// event (document-absolute, so it keeps growing across chunks).
    pub fn position(&self) -> xmlchars::Position {
        self.state.pos
    }

    /// Bytes currently buffered (the unconsumed suffix: at most one
    /// in-flight token plus the latest chunk).
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() + self.utf8_tail.len()
    }

    /// Cumulative throughput counters over every chunk so far — the
    /// chunked analogue of [`Reader::stats`](crate::Reader::stats),
    /// carried by the flight recorder's wide events.
    pub fn stats(&self) -> ReaderStats {
        self.stats
    }

    /// Re-arms the reader for a fresh document, keeping the configured
    /// [`Limits`]. Everything per-document resets: the cumulative input
    /// budget (`max_input_bytes` counts from zero again), the expansion
    /// budgets, the tokenizer's cross-chunk state, buffered bytes,
    /// positions, throughput counters, a latched terminal error, and a
    /// sink-requested stop.
    ///
    /// Without this, a reader reused across requests on one keep-alive
    /// connection keeps charging each request's bytes against the *same*
    /// cumulative budget: the Nth request is rejected with
    /// `InputTooLarge` even though each individual document is far under
    /// the ceiling.
    pub fn reset(&mut self) {
        *self = FeedReader::with_limits(self.limits.clone());
    }

    /// Appends a chunk and delivers every event it completes to
    /// `on_event`. Returns `Ok(true)` to keep feeding, `Ok(false)` if
    /// the sink stopped the stream, and `Err` on the first (terminal)
    /// parse error. An empty chunk is a no-op.
    pub fn feed<F>(&mut self, chunk: &[u8], mut on_event: F) -> Result<bool, ParseError>
    where
        F: FnMut(&BorrowedEvent<'_, '_>) -> bool,
    {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        if self.stopped {
            return Ok(false);
        }
        self.total_bytes = self.total_bytes.saturating_add(chunk.len());
        if self.total_bytes > self.limits.max_input_bytes {
            let kind = ResourceErrorKind::InputTooLarge {
                limit: self.limits.max_input_bytes,
                actual: self.total_bytes,
            };
            limits::record_trip(&kind);
            return Err(self.latch(ParseErrorKind::Resource(kind)));
        }
        self.ingest(chunk)?;
        self.pump(false, &mut on_event)
    }

    /// Marks the end of input: delivers the remaining events (including
    /// `Eof`) and runs the end-of-document checks a whole-input reader
    /// would — a mid-token truncation is now a hard `UnexpectedEof`, an
    /// unterminated element a hard `UnclosedElements`. The reader stays
    /// usable for post-mortem queries ([`stats`](Self::stats),
    /// [`position`](Self::position)) afterwards; a second `finish` is a
    /// no-op (or re-reports the latched error).
    pub fn finish<F>(&mut self, mut on_event: F) -> Result<(), ParseError>
    where
        F: FnMut(&BorrowedEvent<'_, '_>) -> bool,
    {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        if self.stopped {
            return Ok(());
        }
        if !self.utf8_tail.is_empty() {
            // the document ended inside a multi-byte sequence
            return Err(self.latch(ParseErrorKind::InvalidUtf8));
        }
        let result = self.pump(true, &mut on_event).map(|_| ());
        self.stopped = true;
        result
    }

    /// Stitches `chunk` onto the buffer, carrying an incomplete trailing
    /// UTF-8 sequence (at most 3 bytes) over to the next call.
    fn ingest(&mut self, chunk: &[u8]) -> Result<(), ParseError> {
        let mut rest = chunk;
        if !self.utf8_tail.is_empty() {
            // complete the pending sequence byte by byte: a UTF-8
            // character is at most 4 bytes, so this loop runs ≤ 3 times
            while !rest.is_empty() {
                self.utf8_tail.push(rest[0]);
                rest = &rest[1..];
                match std::str::from_utf8(&self.utf8_tail) {
                    Ok(s) => {
                        self.buf.push_str(s);
                        self.utf8_tail.clear();
                        break;
                    }
                    Err(e) if e.error_len().is_none() && self.utf8_tail.len() < 4 => continue,
                    Err(_) => return Err(self.latch(ParseErrorKind::InvalidUtf8)),
                }
            }
        }
        match std::str::from_utf8(rest) {
            Ok(s) => self.buf.push_str(s),
            Err(e) => {
                let valid = e.valid_up_to();
                self.buf
                    .push_str(std::str::from_utf8(&rest[..valid]).expect("validated prefix"));
                if e.error_len().is_some() {
                    return Err(self.latch(ParseErrorKind::InvalidUtf8));
                }
                self.utf8_tail.extend_from_slice(&rest[valid..]);
            }
        }
        Ok(())
    }

    /// Resumes the tokenizer over the buffered window and drains every
    /// completable event into `on_event`, then suspends and compacts.
    fn pump<F>(&mut self, at_end: bool, on_event: &mut F) -> Result<bool, ParseError>
    where
        F: FnMut(&BorrowedEvent<'_, '_>) -> bool,
    {
        let mut reader = Reader::resume(
            &self.buf,
            self.base,
            self.state.clone(),
            self.limits.clone(),
            !at_end,
        );
        let outcome = loop {
            let cp = reader.checkpoint();
            match reader.next_event_borrowed() {
                Ok(BorrowedEvent::Eof) => {
                    on_event(&BorrowedEvent::Eof);
                    break Pump::Done;
                }
                Ok(event) => {
                    if !on_event(&event) {
                        break Pump::Stopped;
                    }
                }
                Err(e) if matches!(e.kind, ParseErrorKind::NeedMoreData) => {
                    reader.rollback(cp);
                    break Pump::Suspended;
                }
                Err(e) => {
                    self.stats.absorb(reader.stats());
                    drop(reader);
                    self.error = Some(e.clone());
                    return Err(e);
                }
            }
        };
        // each resumed pass reports only its own delta; total them here
        self.stats.absorb(reader.stats());
        match outcome {
            Pump::Stopped | Pump::Done => {
                drop(reader);
                self.stopped = true;
                self.buf = String::new();
                self.utf8_tail = Vec::new();
                Ok(matches!(outcome, Pump::Done))
            }
            Pump::Suspended => {
                self.state = reader.suspend();
                let consumed = self.state.pos.offset - self.base;
                self.buf.drain(..consumed);
                self.base += consumed;
                Ok(true)
            }
        }
    }

    /// Records `kind` as the terminal error at the current position and
    /// returns it; every later `feed`/`finish` re-reports it.
    fn latch(&mut self, kind: ParseErrorKind) -> ParseError {
        let e = ParseError::new(kind, self.state.pos);
        self.error = Some(e.clone());
        e
    }
}

impl Default for FeedReader {
    fn default() -> Self {
        FeedReader::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::Reader;

    /// Every event (including `Eof`) of a whole-input parse, owned.
    fn whole_events(src: &str) -> Result<Vec<Event>, ParseError> {
        let mut r = Reader::new(src);
        let mut out = Vec::new();
        loop {
            let e = r.next_event()?;
            let done = e == Event::Eof;
            out.push(e);
            if done {
                return Ok(out);
            }
        }
    }

    /// Every event of a chunked parse over `chunks`, owned.
    fn feed_events(chunks: &[&[u8]]) -> Result<Vec<Event>, ParseError> {
        let mut out = Vec::new();
        let mut feeder = FeedReader::new();
        for chunk in chunks {
            feeder.feed(chunk, |e| {
                out.push(e.clone().into_owned());
                true
            })?;
        }
        feeder.finish(|e| {
            out.push(e.clone().into_owned());
            true
        })?;
        Ok(out)
    }

    /// Chunked parse at a fixed chunk size must equal the whole-input
    /// parse event-for-event — text, spans, positions.
    fn assert_split_equals_whole(src: &str, size: usize) {
        let whole = whole_events(src).expect("whole parse");
        let chunks: Vec<&[u8]> = src.as_bytes().chunks(size).collect();
        let fed = feed_events(&chunks).expect("chunked parse");
        assert_eq!(fed, whole, "chunk size {size} diverged on:\n{src}");
    }

    const DOC: &str = "<?xml version=\"1.0\"?><!-- head -->\n<order date=\"2024-01-01\">\n  <item qty=\"1 &amp; 2\">caf\u{e9} &lt;3</item>\n  <note><![CDATA[a ]] b ]]]></note>\n  <?track a?><empty/>\n</order>";

    #[test]
    fn every_chunk_size_matches_whole_input() {
        for size in 1..=DOC.len() {
            assert_split_equals_whole(DOC, size);
        }
    }

    #[test]
    fn crlf_documents_survive_any_split() {
        // \r\n pairs and lone \r straddling chunk edges still normalize
        // and count lines exactly like the whole-input parse
        let src = "<a v=\"x\r\ny\">l1\r\nl2\rl3<b>inner</b>\r</a>";
        for size in 1..=src.len() {
            assert_split_equals_whole(src, size);
        }
    }

    #[test]
    fn delimiters_split_across_chunks() {
        // cut exactly inside "-->", "]]>", "?>", "<![CDATA[", "</", "/>"
        let src = "<a><!--c--><![CDATA[x]]><?p d?><e/></a>";
        for size in 1..=src.len() {
            assert_split_equals_whole(src, size);
        }
    }

    #[test]
    fn multibyte_utf8_split_across_chunks() {
        let src = "<a>\u{20AC}\u{1F600}\u{e9}</a>"; // 3-, 4-, 2-byte sequences
        for size in 1..=src.len() {
            assert_split_equals_whole(src, size);
        }
    }

    #[test]
    fn invalid_utf8_is_reported() {
        let mut feeder = FeedReader::new();
        let err = feeder.feed(b"<a>\xFF</a>", |_| true).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidUtf8));
        // latched: the next feed re-reports
        let err = feeder.feed(b"<b/>", |_| true).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidUtf8));
    }

    #[test]
    fn truncated_multibyte_at_finish_is_invalid() {
        let mut feeder = FeedReader::new();
        feeder.feed(b"<a>\xE2\x82", |_| true).unwrap(); // half a €
        let err = feeder.finish(|_| true).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidUtf8));
    }

    #[test]
    fn truncated_document_fails_at_finish() {
        let mut feeder = FeedReader::new();
        feeder.feed(b"<a><b>text", |_| true).unwrap();
        let err = feeder.finish(|_| true).unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::UnclosedElements(ref v) if v == &["a", "b"]),
            "{err}"
        );
    }

    #[test]
    fn truncated_tag_fails_at_finish() {
        let mut feeder = FeedReader::new();
        feeder.feed(b"<a><b attr=\"v", |_| true).unwrap();
        let err = feeder.finish(|_| true).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedEof { .. }));
    }

    #[test]
    fn empty_input_reports_no_root() {
        let err = feed_events(&[]).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::NoRootElement));
    }

    #[test]
    fn malformed_document_fails_mid_feed() {
        let mut feeder = FeedReader::new();
        let err = feeder
            .feed(b"<a></b>", |_| true)
            .expect_err("mismatch must surface");
        assert!(matches!(err.kind, ParseErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn sink_stop_discards_the_rest() {
        let mut feeder = FeedReader::new();
        let cont = feeder.feed(b"<a><b/><c/></a>", |_| false).unwrap();
        assert!(!cont);
        assert_eq!(feeder.buffered_bytes(), 0);
        assert!(!feeder.feed(b"more", |_| true).unwrap());
        feeder.finish(|_| panic!("no events after stop")).unwrap();
    }

    #[test]
    fn cumulative_input_budget_trips_across_chunks() {
        let mut feeder = FeedReader::with_limits(Limits::unbounded().with_max_input_bytes(10));
        feeder.feed(b"<a>12345", |_| true).unwrap();
        let err = feeder.feed(b"678</a>", |_| true).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::InputTooLarge {
                limit: 10,
                actual: 15
            })
        ));
    }

    #[test]
    fn buffer_stays_bounded_by_token_size() {
        // stream many small elements; the buffer must track the largest
        // unconsumed token, not the document
        let mut feeder = FeedReader::new();
        feeder.feed(b"<list>", |_| true).unwrap();
        for i in 0..1000 {
            let item = format!("<i n=\"{i}\">value {i}</i>");
            feeder.feed(item.as_bytes(), |_| true).unwrap();
            assert!(
                feeder.buffered_bytes() < 64,
                "buffer grew to {} at item {i}",
                feeder.buffered_bytes()
            );
        }
        feeder.feed(b"</list>", |_| true).unwrap();
        feeder.finish(|_| true).unwrap();
    }

    #[test]
    fn reset_rearms_the_cumulative_budgets() {
        // regression: a reader reused across keep-alive requests used to
        // keep charging every request against one cumulative budget, so
        // documents individually under the ceiling were rejected once
        // their *total* crossed it
        let doc = b"<a>0123456789</a>"; // 17 bytes, under the 24-byte cap
        let mut feeder = FeedReader::with_limits(Limits::unbounded().with_max_input_bytes(24));
        // first request's body parses fine; no `finish` — the reader sits
        // suspended between requests, as a reused connection buffer would
        feeder.feed(doc, |_| true).unwrap();
        // without reset the second document's bytes are charged against
        // the same cumulative budget and trip it, even though each
        // document alone is well under the ceiling
        let err = feeder.feed(doc, |_| true).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::InputTooLarge { limit: 24, .. })
        ));
        // reset clears the latched error and re-arms the byte budget; the
        // same document now parses clean, repeatedly
        for _ in 0..3 {
            feeder.reset();
            assert_eq!(feeder.buffered_bytes(), 0);
            assert_eq!(feeder.position(), xmlchars::Position::START);
            let events = {
                let mut out = Vec::new();
                feeder
                    .feed(doc, |e| {
                        out.push(e.clone().into_owned());
                        true
                    })
                    .unwrap();
                feeder.finish(|_| true).unwrap();
                out
            };
            assert_eq!(
                events,
                whole_events("<a>0123456789</a>").unwrap()[..events.len()]
            );
        }
    }

    #[test]
    fn reset_rearms_after_a_sink_stop_and_expansion_budget() {
        let mut feeder = FeedReader::with_limits(Limits::unbounded().with_max_entity_expansions(4));
        // stop the sink mid-document: further feeds are ignored…
        assert!(!feeder.feed(b"<a><b/></a>", |_| false).unwrap());
        assert!(!feeder.feed(b"<c/>", |_| true).unwrap());
        // …until a reset re-opens the stream
        feeder.reset();
        feeder.feed(b"<a>&amp;&lt;&gt;", |_| true).unwrap();
        feeder.reset();
        // the expansion count restarts at zero: 3 references fit again
        feeder.feed(b"<a>&amp;&lt;&gt;</a>", |_| true).unwrap();
        feeder.finish(|_| true).unwrap();
    }

    #[test]
    fn positions_are_document_absolute() {
        let mut feeder = FeedReader::new();
        let mut last_line = 0;
        for chunk in [&b"<a>\n\n\n"[..], &b"<b/>"[..], &b"\n</a>"[..]] {
            feeder
                .feed(chunk, |e| {
                    if let BorrowedEvent::StartElement { name, span, .. } = e {
                        if *name == "b" {
                            last_line = span.start.line;
                        }
                    }
                    true
                })
                .unwrap();
        }
        feeder.finish(|_| true).unwrap();
        assert_eq!(last_line, 4);
    }

    #[test]
    fn expansion_budget_spans_chunks() {
        // 5 references per chunk; the cumulative count must trip
        let mut feeder = FeedReader::with_limits(Limits::unbounded().with_max_entity_expansions(8));
        feeder.feed(b"<a>", |_| true).unwrap();
        feeder.feed("&amp;".repeat(5).as_bytes(), |_| true).unwrap();
        feeder.feed(b"<x/>", |_| true).unwrap(); // flushes the text run
        let mut result = feeder.feed("&amp;".repeat(5).as_bytes(), |_| true);
        if result.is_ok() {
            // the run is still buffered; its completion trips the budget
            result = feeder.feed(b"</a>", |_| true);
        }
        let err = result.unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::Resource(ResourceErrorKind::TooManyExpansions { limit: 8 })
        ));
    }
}
