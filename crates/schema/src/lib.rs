//! The XML Schema subsystem: component model, XSD document reader,
//! built-in simple types, constraining facets, and resolution down to the
//! content automata of the `automata` crate.
//!
//! This is the substrate everything schema-aware in the workspace builds
//! on: the runtime `validator` (the baseline the paper argues against),
//! the typed `vdom` layer (the paper's contribution), the `codegen`
//! interface generator and the `pxml` preprocessor.
//!
//! # Profile
//!
//! The implementation covers the language the paper uses (Sect. 2–3 and
//! the purchase-order schema of Figs. 2–3): element declarations, complex
//! types with sequence/choice/`all` groups and occurrence constraints,
//! named model/attribute groups, anonymous types, simple-type restriction
//! with all twelve constraining facets, complex-type extension and
//! restriction, substitution groups, and abstract elements and types.
//! Identity constraints and wildcards are out of scope, exactly as the
//! paper states ("Currently we do not handle identity constraints and
//! wildcards"); `list`/`union` simple types and schema composition
//! (`import`/`include`) are rejected with explicit errors.
//!
//! # Example
//!
//! ```
//! use schema::CompiledSchema;
//!
//! let xsd = r#"
//! <xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
//!   <xsd:element name="note" type="NoteType"/>
//!   <xsd:complexType name="NoteType">
//!     <xsd:sequence>
//!       <xsd:element name="body" type="xsd:string"/>
//!     </xsd:sequence>
//!   </xsd:complexType>
//! </xsd:schema>"#;
//! let compiled = CompiledSchema::parse(xsd).unwrap();
//! assert!(compiled.schema().element("note").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod compiled;
pub mod components;
pub mod corpus;
pub mod error;
pub mod facets;
pub mod reader;
pub mod resolve;
pub mod symtab;
pub mod value;

pub use builtin::BuiltinType;
pub use compiled::{interned_dfa_count, CompiledSchema};
pub use components::{
    AttributeGroupDef, AttributeUse, ComplexType, ContentModel, Derivation, DerivationMethod,
    ElementDecl, GroupDef, Occurs, Particle, Schema, SimpleType, Term, TypeDef, TypeRef,
};
pub use error::{SchemaError, SchemaErrorKind};
pub use facets::{CompiledPattern, Facet, FacetViolation};
pub use reader::{parse_schema, read_schema, XSD_NAMESPACE};
pub use resolve::{SimpleTypeError, SimpleView};
pub use symtab::{ContentPlan, ElemPlan, RootPlan, SymIndex};
