//! Errors for schema reading and resolution.

use std::fmt;

use xmlchars::Span;

/// An error found while reading or resolving a schema document.
#[derive(Debug, Clone)]
pub struct SchemaError {
    /// What went wrong.
    pub kind: SchemaErrorKind,
    /// Source location in the schema document, when known.
    pub span: Span,
}

/// The kinds of schema errors.
#[derive(Debug, Clone)]
pub enum SchemaErrorKind {
    /// The document's root element is not `xsd:schema`.
    NotASchema,
    /// The schema document itself failed to parse as XML.
    Xml(String),
    /// A feature outside this profile (`list`, `union`, wildcards,
    /// identity constraints, `import`/`include`, `redefine`, `notation`).
    Unsupported {
        /// The feature.
        feature: &'static str,
        /// Extra context (e.g. the element name encountered).
        detail: String,
    },
    /// A required attribute is missing.
    MissingAttribute {
        /// Owning element.
        element: String,
        /// The attribute.
        attribute: &'static str,
    },
    /// `minOccurs`/`maxOccurs` did not parse or `min > max`.
    BadOccurs(String),
    /// A `type=`/`base=`/`ref=` QName resolved to the XSD namespace but
    /// is not a supported built-in.
    UnknownBuiltin(String),
    /// Two components of the same kind share a name.
    Duplicate {
        /// Component kind (`"type"`, `"element"`, …).
        kind: &'static str,
        /// The clashing name.
        name: String,
    },
    /// A reference to a component that does not exist.
    UnresolvedReference {
        /// Component kind.
        kind: &'static str,
        /// The dangling name.
        name: String,
    },
    /// A facet value did not parse (bad pattern, non-numeric length…).
    BadFacet {
        /// Facet name.
        facet: String,
        /// Why.
        reason: String,
    },
    /// Structurally misplaced schema element.
    Misplaced {
        /// What was found.
        found: String,
        /// Where.
        context: &'static str,
    },
    /// The content model violates unique particle attribution.
    Ambiguous(String),
    /// Derivation cycles or a simple/complex mismatch in `base=`.
    BadDerivation(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.span)
    }
}

impl fmt::Display for SchemaErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaErrorKind::NotASchema => write!(f, "root element is not xsd:schema"),
            SchemaErrorKind::Xml(e) => write!(f, "schema document is not well-formed: {e}"),
            SchemaErrorKind::Unsupported { feature, detail } => {
                write!(f, "unsupported schema feature {feature} ({detail})")
            }
            SchemaErrorKind::MissingAttribute { element, attribute } => {
                write!(f, "<{element}> requires a {attribute}= attribute")
            }
            SchemaErrorKind::BadOccurs(v) => write!(f, "invalid occurrence bound {v:?}"),
            SchemaErrorKind::UnknownBuiltin(n) => {
                write!(f, "xsd:{n} is not a supported built-in type")
            }
            SchemaErrorKind::Duplicate { kind, name } => {
                write!(f, "duplicate {kind} {name:?}")
            }
            SchemaErrorKind::UnresolvedReference { kind, name } => {
                write!(f, "reference to undeclared {kind} {name:?}")
            }
            SchemaErrorKind::BadFacet { facet, reason } => {
                write!(f, "invalid {facet} facet: {reason}")
            }
            SchemaErrorKind::Misplaced { found, context } => {
                write!(f, "<{found}> is not allowed in {context}")
            }
            SchemaErrorKind::Ambiguous(m) => write!(f, "{m}"),
            SchemaErrorKind::BadDerivation(m) => write!(f, "invalid derivation: {m}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl SchemaError {
    /// Creates an error with a known location.
    pub fn at(kind: SchemaErrorKind, span: Span) -> Self {
        SchemaError { kind, span }
    }

    /// Creates an error with no useful location.
    pub fn nowhere(kind: SchemaErrorKind) -> Self {
        SchemaError {
            kind,
            span: Span::default(),
        }
    }
}
