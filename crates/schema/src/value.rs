//! Typed values for the simple-type system: an exact decimal, a date, and
//! helpers for the integer family. Range facets (`minInclusive` …) compare
//! *values*, not lexical strings, so these types implement total orders.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// An exact decimal: sign, integer digits and fraction digits, normalized
/// (no leading zeros in the integer part, no trailing zeros in the
/// fraction). Covers `xsd:decimal` and the whole integer family with
/// unbounded precision, as the spec requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decimal {
    negative: bool,
    /// Integer digits, most significant first; empty means 0.
    int_digits: Vec<u8>,
    /// Fraction digits, most significant first; no trailing zeros.
    frac_digits: Vec<u8>,
}

/// Error parsing a lexical decimal/integer/date.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexicalError {
    /// The offending lexical value.
    pub lexical: String,
    /// The expected value-space description.
    pub expected: &'static str,
}

impl fmt::Display for LexicalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} is not a valid {}", self.lexical, self.expected)
    }
}

impl std::error::Error for LexicalError {}

impl Decimal {
    /// Parses an `xsd:decimal` lexical value: optional sign, digits,
    /// optional fraction. At least one digit must be present.
    pub fn parse(lexical: &str) -> Result<Decimal, LexicalError> {
        let err = || LexicalError {
            lexical: lexical.to_string(),
            expected: "decimal",
        };
        let mut s = lexical;
        let negative = if let Some(rest) = s.strip_prefix('-') {
            s = rest;
            true
        } else if let Some(rest) = s.strip_prefix('+') {
            s = rest;
            false
        } else {
            false
        };
        let (int_part, frac_part) = match s.split_once('.') {
            Some((i, f)) => (i, f),
            None => (s, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(err());
        }
        if !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(err());
        }
        let int_digits: Vec<u8> = int_part
            .bytes()
            .map(|b| b - b'0')
            .skip_while(|&d| d == 0)
            .collect();
        let mut frac_digits: Vec<u8> = frac_part.bytes().map(|b| b - b'0').collect();
        while frac_digits.last() == Some(&0) {
            frac_digits.pop();
        }
        let is_zero = int_digits.is_empty() && frac_digits.is_empty();
        Ok(Decimal {
            negative: negative && !is_zero,
            int_digits,
            frac_digits,
        })
    }

    /// Whether the value is an integer (empty fraction).
    pub fn is_integer(&self) -> bool {
        self.frac_digits.is_empty()
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.int_digits.is_empty() && self.frac_digits.is_empty()
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.negative && !self.is_zero()
    }

    /// Whether the value is negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Total count of significant digits (`totalDigits` facet).
    pub fn total_digits(&self) -> usize {
        let n = self.int_digits.len() + self.frac_digits.len();
        if n == 0 {
            1 // zero has one digit
        } else {
            n
        }
    }

    /// Count of fraction digits (`fractionDigits` facet).
    pub fn fraction_digits(&self) -> usize {
        self.frac_digits.len()
    }
}

impl FromStr for Decimal {
    type Err = LexicalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Decimal::parse(s)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-")?;
        }
        if self.int_digits.is_empty() {
            write!(f, "0")?;
        } else {
            for d in &self.int_digits {
                write!(f, "{d}")?;
            }
        }
        if !self.frac_digits.is_empty() {
            write!(f, ".")?;
            for d in &self.frac_digits {
                write!(f, "{d}")?;
            }
        }
        Ok(())
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => return Ordering::Greater,
            (true, false) => return Ordering::Less,
            _ => {}
        }
        let mag = self.cmp_magnitude(other);
        if self.negative {
            mag.reverse()
        } else {
            mag
        }
    }
}

impl Decimal {
    fn cmp_magnitude(&self, other: &Self) -> Ordering {
        match self.int_digits.len().cmp(&other.int_digits.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        match self.int_digits.cmp(&other.int_digits) {
            Ordering::Equal => {}
            ord => return ord,
        }
        // lexicographic on fraction digits is numeric given no trailing zeros
        self.frac_digits.cmp(&other.frac_digits)
    }
}

/// An `xsd:date` value: proleptic Gregorian year/month/day (timezones are
/// accepted lexically and ignored for ordering, which suffices for the
/// schema corpus in this reproduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Date {
    /// Year (may be negative; never 0 per the spec).
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31, validated against the month.
    pub day: u8,
}

impl Date {
    /// Parses `[-]CCYY-MM-DD` with optional `Z`/`±hh:mm` timezone.
    pub fn parse(lexical: &str) -> Result<Date, LexicalError> {
        let err = || LexicalError {
            lexical: lexical.to_string(),
            expected: "date (CCYY-MM-DD)",
        };
        let mut s = lexical;
        // strip timezone suffix — only when it is lexically valid, so
        // digit garbage after the day fails the date parse instead of
        // vanishing silently
        if let Some(rest) = s.strip_suffix('Z') {
            s = rest;
        } else if s.len() > 6 {
            // s.get(): the offset may split a multi-byte char in mangled
            // input, which is merely not-a-timezone, not a panic
            if let Some(tail) = s.get(s.len() - 6..) {
                if valid_tz(tail) {
                    s = &s[..s.len() - 6];
                }
            }
        }
        let negative_year = s.starts_with('-');
        let body = if negative_year { &s[1..] } else { s };
        let parts: Vec<&str> = body.split('-').collect();
        if parts.len() != 3 {
            return Err(err());
        }
        let (y, m, d) = (parts[0], parts[1], parts[2]);
        if y.len() < 4 || m.len() != 2 || d.len() != 2 {
            return Err(err());
        }
        // digits only: `str::parse` alone would admit an embedded sign
        // ("+2024-01-01", "2024-+1-01")
        if ![y, m, d]
            .iter()
            .all(|part| part.bytes().all(|b| b.is_ascii_digit()))
        {
            return Err(err());
        }
        let year: i32 = y.parse().map_err(|_| err())?;
        if year == 0 {
            // year 0000 is not a valid XSD 1.0 year, however many digits
            // it is written with
            return Err(err());
        }
        if y.len() > 4 && y.starts_with('0') {
            // 5+-digit years must not carry leading zeros
            return Err(err());
        }
        let year = if negative_year { -year } else { year };
        let month: u8 = m.parse().map_err(|_| err())?;
        let day: u8 = d.parse().map_err(|_| err())?;
        if !(1..=12).contains(&month) {
            return Err(err());
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(err());
        }
        Ok(Date { year, month, day })
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A lexically valid `±hh:mm` timezone suffix: sign, two digits, colon,
/// two digits, with the offset in range (`hh ≤ 13` with any minutes, or
/// exactly `14:00` — the XSD extreme).
fn valid_tz(tail: &str) -> bool {
    let b = tail.as_bytes();
    if b.len() != 6 || !(b[0] == b'+' || b[0] == b'-') || b[3] != b':' {
        return false;
    }
    if ![b[1], b[2], b[4], b[5]].iter().all(|c| c.is_ascii_digit()) {
        return false;
    }
    let hh = (b[1] - b'0') * 10 + (b[2] - b'0');
    let mm = (b[4] - b'0') * 10 + (b[5] - b'0');
    (hh < 14 && mm <= 59) || (hh == 14 && mm == 0)
}

fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap_year(year) => 29,
        2 => 28,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dec(s: &str) -> Decimal {
        Decimal::parse(s).unwrap()
    }

    #[test]
    fn decimal_parsing_and_normalization() {
        assert_eq!(dec("007.500"), dec("7.5"));
        assert_eq!(dec("-0"), dec("0"));
        assert_eq!(dec("+3"), dec("3"));
        assert_eq!(dec(".5"), dec("0.5"));
        assert_eq!(dec("5."), dec("5"));
        assert!(Decimal::parse("").is_err());
        assert!(Decimal::parse(".").is_err());
        assert!(Decimal::parse("1.2.3").is_err());
        assert!(Decimal::parse("1e5").is_err());
        assert!(Decimal::parse("--1").is_err());
    }

    #[test]
    fn decimal_ordering() {
        assert!(dec("2") < dec("10"));
        assert!(dec("-10") < dec("-2"));
        assert!(dec("-1") < dec("1"));
        assert!(dec("1.5") < dec("1.51"));
        assert!(dec("99.99") < dec("100"));
        assert!(dec("148.95") > dec("39.98"));
        assert_eq!(dec("1.50").cmp(&dec("1.5")), Ordering::Equal);
        assert!(dec("0") < dec("0.001"));
        assert!(dec("-0.5") < dec("0"));
    }

    #[test]
    fn decimal_predicates_and_digit_counts() {
        assert!(dec("42").is_integer());
        assert!(!dec("42.1").is_integer());
        assert!(dec("0").is_zero());
        assert!(dec("1").is_positive());
        assert!(!dec("0").is_positive());
        assert!(dec("-3").is_negative());
        assert_eq!(dec("123.45").total_digits(), 5);
        assert_eq!(dec("123.45").fraction_digits(), 2);
        assert_eq!(dec("0").total_digits(), 1);
    }

    #[test]
    fn decimal_display_roundtrip() {
        for s in ["0", "-1.5", "123.456", "99"] {
            assert_eq!(dec(s).to_string(), s);
        }
        assert_eq!(dec("007.50").to_string(), "7.5");
    }

    #[test]
    fn date_parsing() {
        let d = Date::parse("1999-05-21").unwrap();
        assert_eq!((d.year, d.month, d.day), (1999, 5, 21));
        assert!(Date::parse("1999-05-21Z").is_ok());
        assert!(Date::parse("1999-05-21+05:00").is_ok());
        assert!(Date::parse("1999-13-01").is_err());
        assert!(Date::parse("1999-02-29").is_err()); // not a leap year
        assert!(Date::parse("2000-02-29").is_ok()); // leap year
        assert!(Date::parse("1900-02-29").is_err()); // century non-leap
        assert!(Date::parse("99-05-21").is_err());
        assert!(Date::parse("0000-01-01").is_err());
        assert!(Date::parse("not-a-date").is_err());
        // multi-byte char straddling the would-be timezone offset must
        // reject, not panic on a non-boundary slice (found by fuzz_smoke)
        assert!(Date::parse("1999-\u{FFFD}5-21").is_err());
    }

    #[test]
    fn date_year_rejects_signs_and_zero_padding() {
        // a leading '+' is not part of the XSD date lexical space, even
        // though str::parse::<i32> would swallow it
        assert!(Date::parse("+2024-01-01").is_err());
        assert!(Date::parse("2024-+1-01").is_err());
        assert!(Date::parse("2024-01-+1").is_err());
        // year zero doesn't exist, no matter how it's padded
        assert!(Date::parse("00000-01-01").is_err());
        assert!(Date::parse("000000-01-01").is_err());
        // 5+-digit years must not carry leading zeros
        assert!(Date::parse("02024-01-01").is_err());
        assert!(Date::parse("-02024-01-01").is_err());
        // but genuine 5-digit years and negative years are fine
        assert_eq!(Date::parse("12024-01-01").unwrap().year, 12024);
        assert_eq!(Date::parse("-0044-03-15").unwrap().year, -44);
    }

    #[test]
    fn date_timezone_suffix_must_be_digits_in_range() {
        assert!(Date::parse("2024-01-01+ab:cd").is_err());
        assert!(Date::parse("2024-01-01+15:00").is_err());
        assert!(Date::parse("2024-01-01-14:01").is_err());
        assert!(Date::parse("2024-01-01+13:60").is_err());
        assert!(Date::parse("2024-01-01+14:00").is_ok());
        assert!(Date::parse("2024-01-01-14:00").is_ok());
        assert!(Date::parse("2024-01-01-00:00").is_ok());
        assert!(Date::parse("2024-01-01+05:59").is_ok());
    }

    #[test]
    fn date_ordering() {
        let a = Date::parse("1999-05-21").unwrap();
        let b = Date::parse("1999-10-20").unwrap();
        let c = Date::parse("2000-01-01").unwrap();
        assert!(a < b && b < c);
    }
}
