//! The schema component model: what an XML Schema *is* once parsed —
//! element declarations, type definitions, model groups and attribute
//! uses, mirroring the component vocabulary of XML Schema Part 1 at the
//! granularity the paper works with (single target namespace, no
//! wildcards or identity constraints; `all` lowered to sequence, as in
//! the paper's Sect. 3).

use std::collections::BTreeMap;

use crate::builtin::BuiltinType;
use crate::facets::Facet;

/// A reference to a type: either a built-in simple type or a named type
/// declared in the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRef {
    /// A built-in (`xsd:string`, `xsd:decimal`, …).
    Builtin(BuiltinType),
    /// A named type declared in this schema.
    Named(String),
    /// An anonymous type lifted by the reader; the name is generated and
    /// registered in [`Schema::types`], flagged so normalization can tell
    /// (paper Sect. 3, normal-form rule 2).
    Anonymous(String),
}

impl TypeRef {
    /// The name under which the type is (or was registered) in the schema.
    pub fn name(&self) -> &str {
        match self {
            TypeRef::Builtin(b) => b.name(),
            TypeRef::Named(n) | TypeRef::Anonymous(n) => n,
        }
    }
}

/// A top-level element declaration.
#[derive(Debug, Clone)]
pub struct ElementDecl {
    /// Element name.
    pub name: String,
    /// Declared type.
    pub type_ref: TypeRef,
    /// Head element of the substitution group this element belongs to.
    pub substitution_group: Option<String>,
    /// Abstract elements may not appear in instances; only members of
    /// their substitution group may.
    pub is_abstract: bool,
}

/// Occurrence bounds on a particle (`minOccurs`/`maxOccurs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurs {
    /// Minimum occurrences.
    pub min: u32,
    /// Maximum occurrences; `None` = `unbounded`.
    pub max: Option<u32>,
}

impl Occurs {
    /// The default `(1, 1)`.
    pub const ONCE: Occurs = Occurs {
        min: 1,
        max: Some(1),
    };

    /// Whether this is the default occurrence.
    pub fn is_once(self) -> bool {
        self == Occurs::ONCE
    }

    /// Whether `maxOccurs > 1` (a "list expression" in the paper's
    /// terminology, footnote 2).
    pub fn is_list(self) -> bool {
        self.max.map(|m| m > 1).unwrap_or(true)
    }
}

/// A particle: a term plus occurrence bounds.
#[derive(Debug, Clone)]
pub struct Particle {
    /// The term.
    pub term: Term,
    /// Occurrence bounds.
    pub occurs: Occurs,
}

/// The term of a particle.
#[derive(Debug, Clone)]
pub enum Term {
    /// A locally declared element: `<xsd:element name="…" type="…"/>`.
    Element {
        /// Element name.
        name: String,
        /// Declared type.
        type_ref: TypeRef,
    },
    /// A reference to a top-level element: `<xsd:element ref="comment"/>`.
    ElementRef(String),
    /// A sequence group.
    Sequence(Vec<Particle>),
    /// A choice group.
    Choice(Vec<Particle>),
    /// An `all` group (lowered to sequence semantics, paper Sect. 3).
    All(Vec<Particle>),
    /// A reference to a named model group: `<xsd:group ref="…"/>`.
    GroupRef(String),
}

/// How a complex type derives from its base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerivationMethod {
    /// `<xsd:extension>` — appends content, adds attributes.
    Extension,
    /// `<xsd:restriction>` — narrows content/attributes.
    Restriction,
}

/// Derivation info for a complex type.
#[derive(Debug, Clone)]
pub struct Derivation {
    /// The method.
    pub method: DerivationMethod,
    /// Name of the base complex type.
    pub base: String,
}

/// Content of a complex type.
#[derive(Debug, Clone)]
pub enum ContentModel {
    /// No children, no character data.
    Empty,
    /// Character data of the given simple type (`simpleContent`).
    Simple(TypeRef),
    /// Child elements per the particle; `mixed` allows interleaved text.
    ElementOnly(Particle),
    /// Like `ElementOnly` but with interleaved character data.
    Mixed(Particle),
}

/// A complex type definition.
#[derive(Debug, Clone)]
pub struct ComplexType {
    /// Type name (generated for anonymous types).
    pub name: String,
    /// Whether the name was generated for an anonymous definition.
    pub anonymous: bool,
    /// Derivation, if this type extends/restricts another complex type.
    pub derivation: Option<Derivation>,
    /// The content model (own content only; extension content is merged
    /// during resolution).
    pub content: ContentModel,
    /// Attribute uses declared directly on this type.
    pub attributes: Vec<AttributeUse>,
    /// References to named attribute groups.
    pub attribute_groups: Vec<String>,
    /// Abstract types cannot appear directly in instances.
    pub is_abstract: bool,
}

/// A simple type definition (restriction of a base simple type; `list`
/// and `union` are outside this profile and rejected by the reader).
#[derive(Debug, Clone)]
pub struct SimpleType {
    /// Type name (generated for anonymous types).
    pub name: String,
    /// Whether the name was generated for an anonymous definition.
    pub anonymous: bool,
    /// The base: a built-in or another named simple type.
    pub base: TypeRef,
    /// Constraining facets, in declaration order.
    pub facets: Vec<Facet>,
}

/// A named type: complex or simple.
#[derive(Debug, Clone)]
pub enum TypeDef {
    /// Complex type.
    Complex(ComplexType),
    /// Simple type.
    Simple(SimpleType),
}

impl TypeDef {
    /// The type's name.
    pub fn name(&self) -> &str {
        match self {
            TypeDef::Complex(c) => &c.name,
            TypeDef::Simple(s) => &s.name,
        }
    }

    /// Whether the definition was anonymous in the source schema.
    pub fn is_anonymous(&self) -> bool {
        match self {
            TypeDef::Complex(c) => c.anonymous,
            TypeDef::Simple(s) => s.anonymous,
        }
    }
}

/// An attribute use on a complex type.
#[derive(Debug, Clone)]
pub struct AttributeUse {
    /// Attribute name.
    pub name: String,
    /// The attribute's simple type.
    pub type_ref: TypeRef,
    /// `use="required"`.
    pub required: bool,
    /// `fixed="…"` — the attribute, if present, must have this value.
    pub fixed: Option<String>,
    /// `default="…"`.
    pub default: Option<String>,
}

/// A named model group (`<xsd:group name="…">`).
#[derive(Debug, Clone)]
pub struct GroupDef {
    /// Group name.
    pub name: String,
    /// The group's particle (a sequence or choice).
    pub particle: Particle,
}

/// A named attribute group.
#[derive(Debug, Clone)]
pub struct AttributeGroupDef {
    /// Group name.
    pub name: String,
    /// The attribute uses.
    pub attributes: Vec<AttributeUse>,
}

/// A complete schema: the symbol tables for all component kinds.
///
/// `BTreeMap` keeps iteration deterministic, which matters for generated
/// code and golden tests.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// Target namespace URI, if declared.
    pub target_namespace: Option<String>,
    /// Top-level element declarations by name.
    pub elements: BTreeMap<String, ElementDecl>,
    /// Named type definitions (including lifted anonymous ones).
    pub types: BTreeMap<String, TypeDef>,
    /// Named model groups.
    pub groups: BTreeMap<String, GroupDef>,
    /// Named attribute groups.
    pub attribute_groups: BTreeMap<String, AttributeGroupDef>,
}

impl Schema {
    /// The elements whose `substitutionGroup` is `head` (directly or
    /// transitively), excluding `head` itself.
    pub fn substitution_members(&self, head: &str) -> Vec<&ElementDecl> {
        let mut out = Vec::new();
        let mut frontier = vec![head.to_string()];
        while let Some(current) = frontier.pop() {
            for decl in self.elements.values() {
                if decl.substitution_group.as_deref() == Some(current.as_str()) {
                    frontier.push(decl.name.clone());
                    out.push(decl);
                }
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Looks up a type definition by name.
    pub fn type_def(&self, name: &str) -> Option<&TypeDef> {
        self.types.get(name)
    }

    /// Looks up a top-level element declaration.
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.get(name)
    }

    /// Total number of named components (bench metric).
    pub fn component_count(&self) -> usize {
        self.elements.len() + self.types.len() + self.groups.len() + self.attribute_groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurs_helpers() {
        assert!(Occurs::ONCE.is_once());
        assert!(!Occurs::ONCE.is_list());
        assert!(Occurs { min: 0, max: None }.is_list());
        assert!(Occurs {
            min: 0,
            max: Some(5)
        }
        .is_list());
        assert!(!Occurs {
            min: 0,
            max: Some(1)
        }
        .is_list());
    }

    #[test]
    fn substitution_members_are_transitive() {
        let mut schema = Schema::default();
        for (name, head) in [
            ("comment", None),
            ("shipComment", Some("comment")),
            ("customerComment", Some("comment")),
            ("urgentShipComment", Some("shipComment")),
            ("unrelated", None),
        ] {
            schema.elements.insert(
                name.to_string(),
                ElementDecl {
                    name: name.to_string(),
                    type_ref: TypeRef::Builtin(BuiltinType::String),
                    substitution_group: head.map(str::to_string),
                    is_abstract: false,
                },
            );
        }
        let members: Vec<&str> = schema
            .substitution_members("comment")
            .iter()
            .map(|d| d.name.as_str())
            .collect();
        assert_eq!(
            members,
            ["customerComment", "shipComment", "urgentShipComment"]
        );
        assert!(schema.substitution_members("unrelated").is_empty());
    }

    #[test]
    fn type_ref_names() {
        assert_eq!(TypeRef::Builtin(BuiltinType::String).name(), "string");
        assert_eq!(TypeRef::Named("USAddress".into()).name(), "USAddress");
    }
}
