//! A schema with compiled, cached content-model automata — the shared
//! artifact the runtime validator and V-DOM both hold.
//!
//! Two layers of sharing:
//!
//! * a **per-schema cache** (`type name → Arc<ContentDfa>`), so every
//!   element instance of a type reuses one automaton;
//! * a **process-global intern table** (`content expression →
//!   Arc<ContentDfa>`), so *identical content models* — across types,
//!   across schemas, across registry entries — compile exactly once and
//!   share one automaton. A fleet of worker threads validating against
//!   overlapping schemas never compiles the same model twice.
//!
//! All locks are `parking_lot` (non-poisoning): a panic on one
//! validation thread must not wedge the caches for every other worker.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};

use automata::{ContentDfa, ContentExpr};

use crate::components::{AttributeUse, ContentModel, Schema, TypeDef, TypeRef};
use crate::error::SchemaError;
use crate::resolve::SimpleTypeError;
use crate::symtab::SymIndex;

/// Cache of `type name → (child name → child element type)`, `None` when
/// the child is undeclared within the type. Nested rather than keyed by
/// `(String, String)` so a cache *hit* probes with two `&str`s and never
/// allocates.
type ChildTypeCache = Arc<RwLock<HashMap<String, HashMap<String, Option<TypeRef>>>>>;

/// The process-global DFA intern table. Keyed by the (unexpanded)
/// content expression, which derives `Hash`/`Eq` structurally — two
/// types whose models are written identically intern to one automaton.
static DFA_INTERN: OnceLock<Mutex<HashMap<ContentExpr, Arc<ContentDfa>>>> = OnceLock::new();

fn intern_table() -> &'static Mutex<HashMap<ContentExpr, Arc<ContentDfa>>> {
    DFA_INTERN.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of distinct content models interned process-wide.
pub fn interned_dfa_count() -> usize {
    intern_table().lock().len()
}

/// Looks `expr` up in the intern table, compiling it on first sight.
///
/// Compilation happens *under* the table lock, so each distinct model is
/// compiled exactly once no matter how many threads race here — the
/// `schema_dfa_compiled_total` counter is a faithful count of real
/// compilations. Failed compilations are not cached (every caller gets
/// the same error).
fn intern_dfa(expr: &ContentExpr, type_name: &str) -> Result<Arc<ContentDfa>, SimpleTypeError> {
    let mut table = intern_table().lock();
    if let Some(dfa) = table.get(expr) {
        if obs::enabled() {
            obs::metrics()
                .counter(
                    "schema_dfa_intern_hits_total",
                    "Content-model DFA requests served from the process-global intern table.",
                )
                .inc();
        }
        return Ok(dfa.clone());
    }
    let dfa =
        Arc::new(ContentDfa::compile(expr).map_err(|e| {
            SimpleTypeError::Unresolved(format!("content model of {type_name}: {e}"))
        })?);
    if obs::enabled() {
        obs::metrics()
            .counter(
                "schema_dfa_compiled_total",
                "Content-model DFAs compiled (intern-table misses).",
            )
            .inc();
    }
    table.insert(expr.clone(), dfa.clone());
    Ok(dfa)
}

/// A checked schema plus lazily populated caches (content DFAs, effective
/// attribute lists, child-element types), cheap to clone and share across
/// threads. The caches are what make V-DOM's per-mutation checks O(1)
/// amortized rather than a schema walk per operation.
#[derive(Debug, Clone)]
pub struct CompiledSchema {
    schema: Arc<Schema>,
    dfas: Arc<RwLock<HashMap<String, Arc<ContentDfa>>>>,
    attrs: Arc<RwLock<HashMap<String, Arc<[AttributeUse]>>>>,
    child_types: ChildTypeCache,
    /// Symbol-keyed dispatch plans, built once on first use (or eagerly
    /// by [`warm`](Self::warm)) and shared by every clone.
    sym_index: Arc<OnceLock<SymIndex>>,
}

impl CompiledSchema {
    /// Checks the schema (references, derivations, UPA) and wraps it.
    pub fn new(schema: Schema) -> Result<CompiledSchema, SchemaError> {
        schema.check()?;
        Ok(CompiledSchema {
            schema: Arc::new(schema),
            dfas: Arc::new(RwLock::new(HashMap::new())),
            attrs: Arc::new(RwLock::new(HashMap::new())),
            child_types: Arc::new(RwLock::new(HashMap::new())),
            sym_index: Arc::new(OnceLock::new()),
        })
    }

    /// Parses, checks and compiles schema text in one step.
    pub fn parse(source: &str) -> Result<CompiledSchema, SchemaError> {
        let span = obs::span!("schema.compile");
        let result = CompiledSchema::new(crate::reader::parse_schema(source)?);
        // one clock read shared by the trace record and the histogram
        let elapsed = span.finish();
        if obs::enabled() {
            if let Some(elapsed) = elapsed {
                obs::metrics()
                    .histogram(
                        "schema_compile_seconds",
                        "Wall time to parse + check a schema.",
                        obs::DURATION_BUCKETS,
                    )
                    .observe_duration(elapsed);
            }
        }
        result
    }

    /// The underlying schema components.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The content DFA of a complex type, interned on first use.
    ///
    /// The returned handle is shared: two types (in this or any other
    /// schema) with structurally identical content models get
    /// pointer-equal `Arc<ContentDfa>`s.
    pub fn content_dfa(&self, type_name: &str) -> Result<Arc<ContentDfa>, SimpleTypeError> {
        if let Some(dfa) = self.dfas.read().get(type_name) {
            return Ok(dfa.clone());
        }
        let expr = self.schema.content_expr(type_name)?;
        let dfa = intern_dfa(&expr, type_name)?;
        if obs::enabled() {
            let metrics = obs::metrics();
            metrics
                .gauge_with(
                    "schema_dfa_states",
                    "DFA state count per content model.",
                    &[("content_model", type_name)],
                )
                .set(dfa.state_count() as i64);
            metrics
                .gauge_with(
                    "schema_dfa_transitions",
                    "DFA transition count per content model.",
                    &[("content_model", type_name)],
                )
                .set(dfa.transition_count() as i64);
        }
        self.dfas.write().insert(type_name.to_string(), dfa.clone());
        Ok(dfa)
    }

    /// The (uncompiled) content expression of a complex type.
    pub fn content_expr(&self, type_name: &str) -> Result<ContentExpr, SimpleTypeError> {
        self.schema.content_expr(type_name)
    }

    /// Whether the content of `type_name` allows interleaved text.
    ///
    /// `true` for mixed and simple content; `false` for element-only and
    /// empty content.
    pub fn allows_text(&self, type_ref: &TypeRef) -> bool {
        match type_ref {
            TypeRef::Builtin(_) => true,
            TypeRef::Named(n) | TypeRef::Anonymous(n) => match self.schema.types.get(n) {
                Some(TypeDef::Simple(_)) => true,
                Some(TypeDef::Complex(c)) => {
                    matches!(c.content, ContentModel::Mixed(_) | ContentModel::Simple(_))
                }
                None => false,
            },
        }
    }

    /// The effective attribute uses of a complex type, cached.
    pub fn effective_attributes(
        &self,
        type_name: &str,
    ) -> Result<Arc<[AttributeUse]>, SimpleTypeError> {
        if let Some(a) = self.attrs.read().get(type_name) {
            return Ok(a.clone());
        }
        let computed: Arc<[AttributeUse]> = self.schema.effective_attributes(type_name)?.into();
        self.attrs
            .write()
            .insert(type_name.to_string(), computed.clone());
        Ok(computed)
    }

    /// The declared type of `child` inside complex type `type_name`,
    /// cached (including negative results).
    pub fn child_element_type(&self, type_name: &str, child: &str) -> Option<TypeRef> {
        if let Some(t) = self
            .child_types
            .read()
            .get(type_name)
            .and_then(|m| m.get(child))
        {
            return t.clone();
        }
        let computed = self.schema.child_element_type(type_name, child);
        self.child_types
            .write()
            .entry(type_name.to_string())
            .or_default()
            .insert(child.to_string(), computed.clone());
        computed
    }

    /// The symbol-keyed dispatch index: per-element open plans keyed by
    /// interned QNames, built on first use. The streaming validator's
    /// zero-allocation hot path dispatches through this instead of the
    /// string-keyed caches.
    pub fn sym_index(&self) -> &SymIndex {
        self.sym_index.get_or_init(|| SymIndex::build(self))
    }

    /// Precompiles every complex type's content DFA, effective attribute
    /// table, and child-type map, so a server pays all compilation cost
    /// *before* taking traffic instead of on the first unlucky request.
    /// Idempotent and safe to race from several threads.
    ///
    /// Returns the number of complex types whose DFA is ready. Types
    /// whose model cannot be DFA-compiled (occurrence bounds beyond the
    /// expansion limit) are skipped here and keep reporting their error
    /// on the per-document path, exactly as without warming.
    pub fn warm(&self) -> usize {
        let span = obs::span!("schema.warm");
        let mut ready = 0;
        for (name, def) in &self.schema.types {
            if !matches!(def, TypeDef::Complex(_)) {
                continue;
            }
            let _ = self.effective_attributes(name);
            if let Ok(expr) = self.schema.content_expr(name) {
                for symbol in expr.symbols() {
                    let _ = self.child_element_type(name, &symbol);
                }
            }
            if self.content_dfa(name).is_ok() {
                ready += 1;
            }
        }
        // build the symbol-keyed dispatch plans while we're still ahead
        // of traffic (this also interns every declared QName)
        let _ = self.sym_index();
        // one clock read shared by the trace record and the histogram
        let elapsed = span.finish();
        if obs::enabled() {
            if let Some(elapsed) = elapsed {
                obs::metrics()
                    .histogram(
                        "schema_warm_seconds",
                        "Wall time to precompile a schema's DFAs and attribute tables.",
                        obs::DURATION_BUCKETS,
                    )
                    .observe_duration(elapsed);
            }
        }
        ready
    }

    /// Number of DFAs cached in *this* schema so far (bench metric).
    pub fn compiled_count(&self) -> usize {
        self.dfas.read().len()
    }
}
