//! A schema with compiled, cached content-model automata — the shared
//! artifact the runtime validator and V-DOM both hold.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use automata::{ContentDfa, ContentExpr};

use crate::components::{AttributeUse, ContentModel, Schema, TypeDef, TypeRef};
use crate::error::SchemaError;
use crate::resolve::SimpleTypeError;

/// Cache of `(type name, child name) → child element type`, `None` when
/// the child is undeclared within the type.
type ChildTypeCache = Arc<RwLock<HashMap<(String, String), Option<TypeRef>>>>;

/// A checked schema plus lazily populated caches (content DFAs, effective
/// attribute lists, child-element types), cheap to clone and share across
/// threads. The caches are what make V-DOM's per-mutation checks O(1)
/// amortized rather than a schema walk per operation.
#[derive(Debug, Clone)]
pub struct CompiledSchema {
    schema: Arc<Schema>,
    dfas: Arc<RwLock<HashMap<String, ContentDfa>>>,
    attrs: Arc<RwLock<HashMap<String, Arc<[AttributeUse]>>>>,
    child_types: ChildTypeCache,
}

impl CompiledSchema {
    /// Checks the schema (references, derivations, UPA) and wraps it.
    pub fn new(schema: Schema) -> Result<CompiledSchema, SchemaError> {
        schema.check()?;
        Ok(CompiledSchema {
            schema: Arc::new(schema),
            dfas: Arc::new(RwLock::new(HashMap::new())),
            attrs: Arc::new(RwLock::new(HashMap::new())),
            child_types: Arc::new(RwLock::new(HashMap::new())),
        })
    }

    /// Parses, checks and compiles schema text in one step.
    pub fn parse(source: &str) -> Result<CompiledSchema, SchemaError> {
        let _span = obs::span!("schema.compile");
        let timer = obs::Timer::start();
        let result = CompiledSchema::new(crate::reader::parse_schema(source)?);
        if let Some(elapsed) = timer.stop() {
            obs::metrics()
                .histogram(
                    "schema_compile_seconds",
                    "Wall time to parse + check a schema.",
                    obs::DURATION_BUCKETS,
                )
                .observe_duration(elapsed);
        }
        result
    }

    /// The underlying schema components.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The content DFA of a complex type, compiled on first use.
    pub fn content_dfa(&self, type_name: &str) -> Result<ContentDfa, SimpleTypeError> {
        if let Some(dfa) = self.dfas.read().expect("dfa cache lock").get(type_name) {
            return Ok(dfa.clone());
        }
        let expr = self.schema.content_expr(type_name)?;
        let dfa = ContentDfa::compile(&expr).map_err(|e| {
            SimpleTypeError::Unresolved(format!("content model of {type_name}: {e}"))
        })?;
        if obs::enabled() {
            let metrics = obs::metrics();
            metrics
                .counter(
                    "schema_dfa_compiled_total",
                    "Content-model DFAs compiled (cache misses).",
                )
                .inc();
            metrics
                .gauge_with(
                    "schema_dfa_states",
                    "DFA state count per content model.",
                    &[("content_model", type_name)],
                )
                .set(dfa.state_count() as i64);
            metrics
                .gauge_with(
                    "schema_dfa_transitions",
                    "DFA transition count per content model.",
                    &[("content_model", type_name)],
                )
                .set(dfa.transition_count() as i64);
        }
        self.dfas
            .write()
            .expect("dfa cache lock")
            .insert(type_name.to_string(), dfa.clone());
        Ok(dfa)
    }

    /// The (uncompiled) content expression of a complex type.
    pub fn content_expr(&self, type_name: &str) -> Result<ContentExpr, SimpleTypeError> {
        self.schema.content_expr(type_name)
    }

    /// Whether the content of `type_name` allows interleaved text.
    ///
    /// `true` for mixed and simple content; `false` for element-only and
    /// empty content.
    pub fn allows_text(&self, type_ref: &TypeRef) -> bool {
        match type_ref {
            TypeRef::Builtin(_) => true,
            TypeRef::Named(n) | TypeRef::Anonymous(n) => match self.schema.types.get(n) {
                Some(TypeDef::Simple(_)) => true,
                Some(TypeDef::Complex(c)) => {
                    matches!(c.content, ContentModel::Mixed(_) | ContentModel::Simple(_))
                }
                None => false,
            },
        }
    }

    /// The effective attribute uses of a complex type, cached.
    pub fn effective_attributes(
        &self,
        type_name: &str,
    ) -> Result<Arc<[AttributeUse]>, SimpleTypeError> {
        if let Some(a) = self.attrs.read().expect("attr cache lock").get(type_name) {
            return Ok(a.clone());
        }
        let computed: Arc<[AttributeUse]> = self.schema.effective_attributes(type_name)?.into();
        self.attrs
            .write()
            .expect("attr cache lock")
            .insert(type_name.to_string(), computed.clone());
        Ok(computed)
    }

    /// The declared type of `child` inside complex type `type_name`,
    /// cached (including negative results).
    pub fn child_element_type(&self, type_name: &str, child: &str) -> Option<TypeRef> {
        let key = (type_name.to_string(), child.to_string());
        if let Some(t) = self
            .child_types
            .read()
            .expect("child-type cache lock")
            .get(&key)
        {
            return t.clone();
        }
        let computed = self.schema.child_element_type(type_name, child);
        self.child_types
            .write()
            .expect("child-type cache lock")
            .insert(key, computed.clone());
        computed
    }

    /// Number of DFAs compiled so far (bench metric).
    pub fn compiled_count(&self) -> usize {
        self.dfas.read().expect("dfa cache lock").len()
    }
}
