//! Reference resolution and lowering: from the component model to the
//! content automata and effective attribute/simple-type views that the
//! validator, V-DOM and codegen all consume.

use std::collections::BTreeMap;
use std::fmt;

use automata::{ContentExpr, Glushkov};

use crate::builtin::BuiltinType;
use crate::components::*;
use crate::error::{SchemaError, SchemaErrorKind};
use crate::facets::{Facet, FacetViolation};

/// An error validating a simple-typed value.
#[derive(Debug, Clone)]
pub enum SimpleTypeError {
    /// The value does not belong to the built-in base type's space.
    Lexical {
        /// The built-in that rejected it.
        builtin: BuiltinType,
        /// Expected form.
        expected: &'static str,
        /// The normalized value.
        value: String,
    },
    /// A constraining facet rejected the value.
    Facet(FacetViolation),
    /// The type reference does not resolve to a simple type.
    NotSimple(String),
    /// The type reference dangles.
    Unresolved(String),
}

impl fmt::Display for SimpleTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimpleTypeError::Lexical {
                builtin,
                expected,
                value,
            } => write!(
                f,
                "{value:?} is not a valid xsd:{} ({expected})",
                builtin.name()
            ),
            SimpleTypeError::Facet(v) => write!(f, "{v}"),
            SimpleTypeError::NotSimple(n) => write!(f, "type {n:?} is not a simple type"),
            SimpleTypeError::Unresolved(n) => write!(f, "unresolved type {n:?}"),
        }
    }
}

impl std::error::Error for SimpleTypeError {}

/// The flattened simple-type view: the built-in at the bottom of the
/// restriction chain plus every facet layer, most derived first.
#[derive(Debug, Clone)]
pub struct SimpleView<'a> {
    /// The built-in primitive-ish base (bottom of the chain).
    pub builtin: BuiltinType,
    /// Facet layers, most-derived type first.
    pub facet_layers: Vec<&'a [Facet]>,
}

fn simple_to_schema(e: SimpleTypeError) -> SchemaError {
    SchemaError::nowhere(SchemaErrorKind::BadDerivation(e.to_string()))
}

impl Schema {
    // ---- well-formedness of the schema itself ---------------------------

    /// Checks that every reference resolves, derivations are acyclic and
    /// well-kinded, and every complex type's content model satisfies
    /// unique particle attribution.
    pub fn check(&self) -> Result<(), SchemaError> {
        for decl in self.elements.values() {
            self.check_type_ref(&decl.type_ref)?;
            if let Some(head) = &decl.substitution_group {
                if !self.elements.contains_key(head) {
                    return Err(SchemaError::nowhere(SchemaErrorKind::UnresolvedReference {
                        kind: "substitutionGroup head",
                        name: head.clone(),
                    }));
                }
            }
        }
        for def in self.types.values() {
            match def {
                TypeDef::Simple(s) => {
                    self.simple_view(&s.base).map_err(|e| {
                        SchemaError::nowhere(SchemaErrorKind::BadDerivation(e.to_string()))
                    })?;
                }
                TypeDef::Complex(c) => {
                    self.check_complex(c)?;
                }
            }
        }
        for group in self.groups.values() {
            self.check_particle(&group.particle)?;
        }
        Ok(())
    }

    fn check_type_ref(&self, r: &TypeRef) -> Result<(), SchemaError> {
        match r {
            TypeRef::Builtin(_) => Ok(()),
            TypeRef::Named(n) | TypeRef::Anonymous(n) => {
                if self.types.contains_key(n) {
                    Ok(())
                } else {
                    Err(SchemaError::nowhere(SchemaErrorKind::UnresolvedReference {
                        kind: "type",
                        name: n.clone(),
                    }))
                }
            }
        }
    }

    fn check_complex(&self, c: &ComplexType) -> Result<(), SchemaError> {
        // derivation chain must exist and be acyclic
        let mut seen = vec![c.name.clone()];
        let mut cur = c;
        while let Some(d) = &cur.derivation {
            if seen.contains(&d.base) {
                return Err(SchemaError::nowhere(SchemaErrorKind::BadDerivation(
                    format!("derivation cycle through {:?}", d.base),
                )));
            }
            seen.push(d.base.clone());
            cur = match self.types.get(&d.base) {
                Some(TypeDef::Complex(base)) => base,
                Some(TypeDef::Simple(_)) => {
                    return Err(SchemaError::nowhere(SchemaErrorKind::BadDerivation(
                        format!("complex type {} extends simple type {}", c.name, d.base),
                    )))
                }
                None => {
                    return Err(SchemaError::nowhere(SchemaErrorKind::UnresolvedReference {
                        kind: "base type",
                        name: d.base.clone(),
                    }))
                }
            };
        }
        if let ContentModel::ElementOnly(p) | ContentModel::Mixed(p) = &c.content {
            self.check_particle(p)?;
        }
        for a in self
            .effective_attributes(&c.name)
            .map_err(simple_to_schema)?
        {
            self.check_type_ref(&a.type_ref)?;
        }
        // UPA over the fully merged content model
        let expr = self
            .content_expr(&c.name)
            .map_err(|e| SchemaError::nowhere(SchemaErrorKind::BadDerivation(e.to_string())))?;
        let expanded = expr.expand_occurrences().map_err(|bound| {
            SchemaError::nowhere(SchemaErrorKind::BadOccurs(format!(
                "maxOccurs={bound} too large for DFA construction"
            )))
        })?;
        Glushkov::construct(&expanded)
            .check_determinism()
            .map_err(|e| SchemaError::nowhere(SchemaErrorKind::Ambiguous(e.to_string())))?;
        Ok(())
    }

    fn check_particle(&self, p: &Particle) -> Result<(), SchemaError> {
        match &p.term {
            Term::Element { type_ref, .. } => self.check_type_ref(type_ref),
            Term::ElementRef(name) => {
                if self.elements.contains_key(name) {
                    Ok(())
                } else {
                    Err(SchemaError::nowhere(SchemaErrorKind::UnresolvedReference {
                        kind: "element",
                        name: name.clone(),
                    }))
                }
            }
            Term::Sequence(parts) | Term::Choice(parts) | Term::All(parts) => {
                parts.iter().try_for_each(|p| self.check_particle(p))
            }
            Term::GroupRef(name) => {
                if self.groups.contains_key(name) {
                    Ok(())
                } else {
                    Err(SchemaError::nowhere(SchemaErrorKind::UnresolvedReference {
                        kind: "group",
                        name: name.clone(),
                    }))
                }
            }
        }
    }

    // ---- content lowering ------------------------------------------------

    /// The complete content expression of a complex type, with extension
    /// chains merged (base content first, as `xsd:extension` prescribes),
    /// group references inlined, and substitution groups expanded into
    /// choices.
    pub fn content_expr(&self, type_name: &str) -> Result<ContentExpr, SimpleTypeError> {
        let mut chain: Vec<&ComplexType> = Vec::new();
        let mut cur_name = type_name.to_string();
        loop {
            let c = match self.types.get(&cur_name) {
                Some(TypeDef::Complex(c)) => c,
                Some(TypeDef::Simple(_)) => {
                    return Err(SimpleTypeError::NotSimple(format!(
                        "{cur_name} (expected complex)"
                    )))
                }
                None => return Err(SimpleTypeError::Unresolved(cur_name)),
            };
            chain.push(c);
            match &c.derivation {
                Some(d) if d.method == DerivationMethod::Extension => {
                    cur_name = d.base.clone();
                }
                // restriction replaces the content model wholesale
                _ => break,
            }
        }
        // base-most first
        let mut parts = Vec::new();
        for c in chain.iter().rev() {
            match &c.content {
                ContentModel::ElementOnly(p) | ContentModel::Mixed(p) => {
                    parts.push(self.lower_particle(p)?);
                }
                ContentModel::Empty | ContentModel::Simple(_) => {}
            }
        }
        Ok(ContentExpr::sequence(parts))
    }

    fn lower_particle(&self, p: &Particle) -> Result<ContentExpr, SimpleTypeError> {
        let inner = match &p.term {
            Term::Element { name, .. } => ContentExpr::leaf(name.clone()),
            Term::ElementRef(name) => self.element_leaf(name)?,
            Term::Sequence(parts) | Term::All(parts) => ContentExpr::sequence(
                parts
                    .iter()
                    .map(|p| self.lower_particle(p))
                    .collect::<Result<_, _>>()?,
            ),
            Term::Choice(parts) => ContentExpr::choice(
                parts
                    .iter()
                    .map(|p| self.lower_particle(p))
                    .collect::<Result<_, _>>()?,
            ),
            Term::GroupRef(name) => {
                let group = self
                    .groups
                    .get(name)
                    .ok_or_else(|| SimpleTypeError::Unresolved(name.clone()))?;
                self.lower_particle(&group.particle)?
            }
        };
        Ok(if p.occurs.is_once() {
            inner
        } else {
            ContentExpr::occur(inner, p.occurs.min, p.occurs.max)
        })
    }

    /// The expression for one referenced global element: a plain leaf, or
    /// a choice over its substitution group (excluding the head when the
    /// head is abstract).
    fn element_leaf(&self, name: &str) -> Result<ContentExpr, SimpleTypeError> {
        let head = self
            .elements
            .get(name)
            .ok_or_else(|| SimpleTypeError::Unresolved(name.to_string()))?;
        let members = self.substitution_members(name);
        let mut alternatives = Vec::new();
        if !head.is_abstract {
            alternatives.push(ContentExpr::leaf(name.to_string()));
        }
        for m in members {
            if !m.is_abstract {
                alternatives.push(ContentExpr::leaf(m.name.clone()));
            }
        }
        if alternatives.is_empty() {
            // an abstract head with no members: unsatisfiable, surface it
            return Err(SimpleTypeError::Unresolved(format!(
                "abstract element {name} has no substitution-group members"
            )));
        }
        Ok(ContentExpr::choice(alternatives))
    }

    /// Finds the declared type of a child element of `type_name`,
    /// searching the merged particle tree, group refs, element refs and
    /// substitution groups. Returns `None` when no particle mentions it.
    pub fn child_element_type(&self, type_name: &str, child: &str) -> Option<TypeRef> {
        let mut cur_name = type_name;
        loop {
            let c = match self.types.get(cur_name) {
                Some(TypeDef::Complex(c)) => c,
                _ => return None,
            };
            if let ContentModel::ElementOnly(p) | ContentModel::Mixed(p) = &c.content {
                if let Some(t) = self.find_in_particle(p, child) {
                    return Some(t);
                }
            }
            match &c.derivation {
                Some(d) if d.method == DerivationMethod::Extension => cur_name = &d.base,
                _ => return None,
            }
        }
    }

    fn find_in_particle(&self, p: &Particle, child: &str) -> Option<TypeRef> {
        match &p.term {
            Term::Element { name, type_ref } => (name == child).then(|| type_ref.clone()),
            Term::ElementRef(name) => {
                if name == child {
                    return self.elements.get(name).map(|d| d.type_ref.clone());
                }
                // substitution members of the referenced head
                self.substitution_members(name)
                    .into_iter()
                    .find(|m| m.name == child)
                    .map(|m| m.type_ref.clone())
            }
            Term::Sequence(parts) | Term::Choice(parts) | Term::All(parts) => {
                parts.iter().find_map(|p| self.find_in_particle(p, child))
            }
            Term::GroupRef(name) => self
                .groups
                .get(name)
                .and_then(|g| self.find_in_particle(&g.particle, child)),
        }
    }

    // ---- attributes --------------------------------------------------------

    /// The effective attribute uses of a complex type: its own, its
    /// attribute groups', and (for derived types) the base's, with
    /// derived declarations overriding same-named base declarations.
    pub fn effective_attributes(
        &self,
        type_name: &str,
    ) -> Result<Vec<AttributeUse>, SimpleTypeError> {
        let mut layers: Vec<Vec<AttributeUse>> = Vec::new();
        let mut cur_name = type_name.to_string();
        loop {
            let c = match self.types.get(&cur_name) {
                Some(TypeDef::Complex(c)) => c,
                Some(TypeDef::Simple(_)) => return Err(SimpleTypeError::NotSimple(cur_name)),
                None => return Err(SimpleTypeError::Unresolved(cur_name)),
            };
            let mut layer = c.attributes.clone();
            for group_name in &c.attribute_groups {
                let group = self
                    .attribute_groups
                    .get(group_name)
                    .ok_or_else(|| SimpleTypeError::Unresolved(group_name.clone()))?;
                layer.extend(group.attributes.iter().cloned());
            }
            layers.push(layer);
            match &c.derivation {
                Some(d) => cur_name = d.base.clone(),
                None => break,
            }
        }
        // base first, derived override
        let mut merged: BTreeMap<String, AttributeUse> = BTreeMap::new();
        for layer in layers.into_iter().rev() {
            for a in layer {
                merged.insert(a.name.clone(), a);
            }
        }
        Ok(merged.into_values().collect())
    }

    // ---- simple types ------------------------------------------------------

    /// Flattens a simple-type reference into its built-in base and facet
    /// layers.
    pub fn simple_view<'s>(&'s self, r: &TypeRef) -> Result<SimpleView<'s>, SimpleTypeError> {
        let mut facet_layers: Vec<&'s [Facet]> = Vec::new();
        // Walk the chain by reference: every hop lands on a `TypeRef`
        // owned by `self.types`, so nothing is cloned along the way.
        let mut current: &TypeRef = r;
        let mut hops = 0;
        loop {
            hops += 1;
            if hops > 64 {
                return Err(SimpleTypeError::Unresolved(format!(
                    "restriction chain too deep or cyclic at {}",
                    current.name()
                )));
            }
            match current {
                TypeRef::Builtin(b) => {
                    return Ok(SimpleView {
                        builtin: *b,
                        facet_layers,
                    })
                }
                TypeRef::Named(n) | TypeRef::Anonymous(n) => match self.types.get(n) {
                    Some(TypeDef::Simple(s)) => {
                        facet_layers.push(&s.facets);
                        current = &s.base;
                    }
                    Some(TypeDef::Complex(c)) => {
                        // simpleContent complex types delegate to their
                        // simple content for *value* validation
                        if let ContentModel::Simple(inner) = &c.content {
                            current = inner;
                        } else {
                            return Err(SimpleTypeError::NotSimple(n.clone()));
                        }
                    }
                    None => return Err(SimpleTypeError::Unresolved(n.clone())),
                },
            }
        }
    }

    /// Validates a raw lexical value against a simple type: whitespace
    /// normalization, built-in lexical check, then every facet layer from
    /// most derived to base. Returns the normalized value.
    pub fn validate_simple_value(&self, r: &TypeRef, raw: &str) -> Result<String, SimpleTypeError> {
        self.check_simple_value_inner(r, raw)
            .map(std::borrow::Cow::into_owned)
    }

    /// Like [`validate_simple_value`](Self::validate_simple_value), but
    /// discards the normalized value — on success (the hot path for valid
    /// documents) nothing is allocated: normalization borrows whenever
    /// the value is already normal, and the checks read it in place.
    pub fn check_simple_value(&self, r: &TypeRef, raw: &str) -> Result<(), SimpleTypeError> {
        self.check_simple_value_inner(r, raw).map(|_| ())
    }

    fn check_simple_value_inner<'v>(
        &self,
        r: &TypeRef,
        raw: &'v str,
    ) -> Result<std::borrow::Cow<'v, str>, SimpleTypeError> {
        let view = self.simple_view(r)?;
        // effective whitespace: the most derived explicit facet, else the
        // built-in's own mode
        let mode = view
            .facet_layers
            .iter()
            .flat_map(|layer| layer.iter())
            .find_map(|f| match f {
                Facet::WhiteSpace(m) => Some(*m),
                _ => None,
            })
            .unwrap_or_else(|| view.builtin.whitespace());
        let value = mode.apply(raw);
        view.builtin
            .validate(&value)
            .map_err(|expected| SimpleTypeError::Lexical {
                builtin: view.builtin,
                expected,
                value: value.clone().into_owned(),
            })?;
        // One registry lookup per value (not per facet) when observability
        // is on; a single atomic load when it is off.
        let facet_counter = obs::enabled().then(|| {
            obs::metrics().counter(
                "schema_facet_checks_total",
                "Constraining-facet checks evaluated on simple values.",
            )
        });
        for layer in &view.facet_layers {
            for facet in layer.iter() {
                if let Some(counter) = &facet_counter {
                    counter.inc();
                }
                facet
                    .check(&value, view.builtin)
                    .map_err(SimpleTypeError::Facet)?;
            }
        }
        Ok(value)
    }

    /// Whether `r` names a simple type (built-in, named simple, or a
    /// complex type with simple content).
    pub fn is_simple(&self, r: &TypeRef) -> bool {
        self.simple_view(r).is_ok()
    }
}
