//! The built-in simple types of XML Schema Part 2 used by the paper's
//! schemas, with their whitespace behaviour, lexical validation and
//! derivation hierarchy.

use xmlchars::chars::{is_name, is_nmtoken};
use xmlchars::WhiteSpaceMode;

use crate::value::{Date, Decimal};

/// A built-in simple type.
///
/// The set covers everything the paper's schemas and examples touch
/// (string family, decimal/integer family, boolean, date family, name
/// tokens, anyURI) — a deliberate profile of Part 2, not the full list of
/// 44 types. Unknown built-ins are rejected by the schema reader with a
/// clear error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names are the XSD type names
pub enum BuiltinType {
    AnySimpleType,
    String,
    NormalizedString,
    Token,
    Language,
    Name,
    NCName,
    NmToken,
    AnyUri,
    Boolean,
    Decimal,
    Integer,
    NonPositiveInteger,
    NegativeInteger,
    NonNegativeInteger,
    PositiveInteger,
    Long,
    Int,
    Short,
    Byte,
    UnsignedLong,
    UnsignedInt,
    UnsignedShort,
    UnsignedByte,
    Float,
    Double,
    Date,
    DateTime,
    Time,
    GYear,
}

impl BuiltinType {
    /// Looks up a built-in by its XSD local name (e.g. `"positiveInteger"`).
    pub fn by_name(name: &str) -> Option<BuiltinType> {
        use BuiltinType::*;
        Some(match name {
            "anySimpleType" => AnySimpleType,
            "string" => String,
            "normalizedString" => NormalizedString,
            "token" => Token,
            "language" => Language,
            "Name" => Name,
            "NCName" => NCName,
            "NMTOKEN" => NmToken,
            "anyURI" => AnyUri,
            "boolean" => Boolean,
            "decimal" => Decimal,
            "integer" => Integer,
            "nonPositiveInteger" => NonPositiveInteger,
            "negativeInteger" => NegativeInteger,
            "nonNegativeInteger" => NonNegativeInteger,
            "positiveInteger" => PositiveInteger,
            "long" => Long,
            "int" => Int,
            "short" => Short,
            "byte" => Byte,
            "unsignedLong" => UnsignedLong,
            "unsignedInt" => UnsignedInt,
            "unsignedShort" => UnsignedShort,
            "unsignedByte" => UnsignedByte,
            "float" => Float,
            "double" => Double,
            "date" => Date,
            "dateTime" => DateTime,
            "time" => Time,
            "gYear" => GYear,
            _ => return None,
        })
    }

    /// The XSD local name of this type.
    pub fn name(self) -> &'static str {
        use BuiltinType::*;
        match self {
            AnySimpleType => "anySimpleType",
            String => "string",
            NormalizedString => "normalizedString",
            Token => "token",
            Language => "language",
            Name => "Name",
            NCName => "NCName",
            NmToken => "NMTOKEN",
            AnyUri => "anyURI",
            Boolean => "boolean",
            Decimal => "decimal",
            Integer => "integer",
            NonPositiveInteger => "nonPositiveInteger",
            NegativeInteger => "negativeInteger",
            NonNegativeInteger => "nonNegativeInteger",
            PositiveInteger => "positiveInteger",
            Long => "long",
            Int => "int",
            Short => "short",
            Byte => "byte",
            UnsignedLong => "unsignedLong",
            UnsignedInt => "unsignedInt",
            UnsignedShort => "unsignedShort",
            UnsignedByte => "unsignedByte",
            Float => "float",
            Double => "double",
            Date => "date",
            DateTime => "dateTime",
            Time => "time",
            GYear => "gYear",
        }
    }

    /// The immediate base type in the derivation hierarchy
    /// (`None` for `anySimpleType`).
    pub fn base(self) -> Option<BuiltinType> {
        use BuiltinType::*;
        Some(match self {
            AnySimpleType => return None,
            String | Boolean | Decimal | Float | Double | Date | DateTime | Time | GYear
            | AnyUri => AnySimpleType,
            NormalizedString => String,
            Token => NormalizedString,
            Language | Name | NmToken => Token,
            NCName => Name,
            Integer => Decimal,
            NonPositiveInteger | NonNegativeInteger | Long => Integer,
            NegativeInteger => NonPositiveInteger,
            PositiveInteger | UnsignedLong => NonNegativeInteger,
            Int => Long,
            Short => Int,
            Byte => Short,
            UnsignedInt => UnsignedLong,
            UnsignedShort => UnsignedInt,
            UnsignedByte => UnsignedShort,
        })
    }

    /// Whether `self` is `other` or derives (transitively) from it.
    pub fn derives_from(self, other: BuiltinType) -> bool {
        let mut cur = Some(self);
        while let Some(t) = cur {
            if t == other {
                return true;
            }
            cur = t.base();
        }
        false
    }

    /// The whitespace normalization applied before validation.
    pub fn whitespace(self) -> WhiteSpaceMode {
        use BuiltinType::*;
        match self {
            String | AnySimpleType => WhiteSpaceMode::Preserve,
            NormalizedString => WhiteSpaceMode::Replace,
            _ => WhiteSpaceMode::Collapse,
        }
    }

    /// Validates a whitespace-normalized lexical value against this
    /// type's lexical and value space. Returns a description of the
    /// expected form on failure.
    pub fn validate(self, value: &str) -> Result<(), &'static str> {
        use BuiltinType::*;
        match self {
            AnySimpleType | String | NormalizedString | Token => Ok(()),
            Language => {
                // RFC 3066-ish: subtags of 1-8 alphanumerics separated by '-'
                let ok = !value.is_empty()
                    && value.split('-').all(|part| {
                        (1..=8).contains(&part.len())
                            && part.bytes().all(|b| b.is_ascii_alphanumeric())
                    })
                    && value
                        .split('-')
                        .next()
                        .is_some_and(|p| p.bytes().all(|b| b.is_ascii_alphabetic()));
                ok.then_some(()).ok_or("language tag")
            }
            Name => is_name(value).then_some(()).ok_or("XML Name"),
            NCName => (is_name(value) && !value.contains(':'))
                .then_some(())
                .ok_or("NCName"),
            NmToken => is_nmtoken(value).then_some(()).ok_or("NMTOKEN"),
            AnyUri => {
                // per the spec nearly everything is a valid anyURI; reject
                // only whitespace (already collapsed) and unpaired '%'
                let bad_escape = value.as_bytes().windows(3).any(|w| {
                    w[0] == b'%' && !(w[1].is_ascii_hexdigit() && w[2].is_ascii_hexdigit())
                }) || value.ends_with('%')
                    || (value.len() >= 2 && value.as_bytes()[value.len() - 2] == b'%');
                (!value.contains(' ') && !bad_escape)
                    .then_some(())
                    .ok_or("anyURI")
            }
            Boolean => matches!(value, "true" | "false" | "1" | "0")
                .then_some(())
                .ok_or("boolean (true/false/1/0)"),
            Decimal => crate::value::Decimal::parse(value)
                .map(|_| ())
                .map_err(|_| "decimal"),
            Integer | NonPositiveInteger | NegativeInteger | NonNegativeInteger
            | PositiveInteger | Long | Int | Short | Byte | UnsignedLong | UnsignedInt
            | UnsignedShort | UnsignedByte => self.validate_integer(value),
            Float | Double => {
                if matches!(value, "NaN" | "INF" | "-INF") {
                    return Ok(());
                }
                value
                    .parse::<f64>()
                    .ok()
                    .filter(|_| !value.contains(char::is_whitespace))
                    .map(|_| ())
                    .ok_or("floating-point number")
            }
            Date => crate::value::Date::parse(value)
                .map(|_| ())
                .map_err(|_| "date"),
            DateTime => {
                let (date_part, time_part) =
                    value.split_once('T').ok_or("dateTime (date 'T' time)")?;
                crate::value::Date::parse(date_part).map_err(|_| "dateTime (bad date part)")?;
                validate_time(time_part)
                    .then_some(())
                    .ok_or("dateTime (bad time part)")
            }
            Time => validate_time(value).then_some(()).ok_or("time (hh:mm:ss)"),
            GYear => {
                let body = value.strip_prefix('-').unwrap_or(value);
                (body.len() >= 4 && body.bytes().all(|b| b.is_ascii_digit()))
                    .then_some(())
                    .ok_or("gYear")
            }
        }
    }

    fn validate_integer(self, value: &str) -> Result<(), &'static str> {
        use BuiltinType::*;
        let d = crate::value::Decimal::parse(value).map_err(|_| "integer")?;
        if !d.is_integer() || value.contains('.') {
            return Err("integer (no fraction part)");
        }
        let in_i = |lo: i128, hi: i128| -> bool {
            value
                .trim_start_matches('+')
                .parse::<i128>()
                .map(|v| v >= lo && v <= hi)
                .unwrap_or(false)
        };
        let ok = match self {
            Integer => true,
            NonPositiveInteger => !d.is_positive(),
            NegativeInteger => d.is_negative(),
            NonNegativeInteger => !d.is_negative(),
            PositiveInteger => d.is_positive(),
            Long => in_i(i64::MIN as i128, i64::MAX as i128),
            Int => in_i(i32::MIN as i128, i32::MAX as i128),
            Short => in_i(i16::MIN as i128, i16::MAX as i128),
            Byte => in_i(i8::MIN as i128, i8::MAX as i128),
            UnsignedLong => in_i(0, u64::MAX as i128),
            UnsignedInt => in_i(0, u32::MAX as i128),
            UnsignedShort => in_i(0, u16::MAX as i128),
            UnsignedByte => in_i(0, u8::MAX as i128),
            _ => unreachable!("validate_integer called for integer family only"),
        };
        ok.then_some(()).ok_or(match self {
            NonPositiveInteger => "nonPositiveInteger (≤ 0)",
            NegativeInteger => "negativeInteger (< 0)",
            NonNegativeInteger => "nonNegativeInteger (≥ 0)",
            PositiveInteger => "positiveInteger (> 0)",
            Long | Int | Short | Byte | UnsignedLong | UnsignedInt | UnsignedShort
            | UnsignedByte => "integer within the type's range",
            _ => "integer",
        })
    }

    /// Whether values of this type support ordered range facets.
    pub fn is_ordered(self) -> bool {
        use BuiltinType::*;
        self.derives_from(Decimal)
            || matches!(self, Float | Double | Date | DateTime | Time | GYear)
    }

    /// Parses the value for ordered comparison; `None` when unordered or
    /// the lexical value is invalid.
    pub fn ordered_value(self, value: &str) -> Option<OrderedValue> {
        use BuiltinType::*;
        if self.derives_from(Decimal) {
            return crate::value::Decimal::parse(value)
                .ok()
                .map(OrderedValue::Decimal);
        }
        match self {
            Float | Double => value.parse::<f64>().ok().map(OrderedValue::Double),
            Date => crate::value::Date::parse(value)
                .ok()
                .map(OrderedValue::Date),
            _ => None,
        }
    }
}

/// A parsed value usable in range-facet comparisons.
#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub enum OrderedValue {
    /// Exact decimal (decimal + integer family).
    Decimal(Decimal),
    /// IEEE double (float/double).
    Double(f64),
    /// Calendar date.
    Date(Date),
}

fn validate_time(value: &str) -> bool {
    // hh:mm:ss(.fff)? with optional timezone
    let mut s = value;
    if let Some(rest) = s.strip_suffix('Z') {
        s = rest;
    } else if s.len() > 6 {
        let tail = &s[s.len() - 6..];
        if (tail.starts_with('+') || tail.starts_with('-')) && tail.as_bytes()[3] == b':' {
            s = &s[..s.len() - 6];
        }
    }
    let (hms, frac) = match s.split_once('.') {
        Some((a, b)) => (a, Some(b)),
        None => (s, None),
    };
    if let Some(f) = frac {
        if f.is_empty() || !f.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
    }
    let parts: Vec<&str> = hms.split(':').collect();
    if parts.len() != 3 || parts.iter().any(|p| p.len() != 2) {
        return false;
    }
    let nums: Option<Vec<u8>> = parts.iter().map(|p| p.parse().ok()).collect();
    match nums {
        Some(v) => v[0] <= 24 && v[1] <= 59 && v[2] <= 59,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_roundtrips() {
        for name in ["string", "decimal", "positiveInteger", "NMTOKEN", "date"] {
            let t = BuiltinType::by_name(name).unwrap();
            assert_eq!(t.name(), name);
        }
        assert!(BuiltinType::by_name("noSuchType").is_none());
    }

    #[test]
    fn derivation_hierarchy() {
        use BuiltinType::*;
        assert!(PositiveInteger.derives_from(Integer));
        assert!(PositiveInteger.derives_from(Decimal));
        assert!(PositiveInteger.derives_from(AnySimpleType));
        assert!(!PositiveInteger.derives_from(String));
        assert!(NCName.derives_from(Token));
        assert!(Byte.derives_from(Long));
        assert!(!Decimal.derives_from(Integer));
    }

    #[test]
    fn whitespace_modes() {
        assert_eq!(BuiltinType::String.whitespace(), WhiteSpaceMode::Preserve);
        assert_eq!(
            BuiltinType::NormalizedString.whitespace(),
            WhiteSpaceMode::Replace
        );
        assert_eq!(BuiltinType::Decimal.whitespace(), WhiteSpaceMode::Collapse);
    }

    #[test]
    fn integer_family_validation() {
        use BuiltinType::*;
        assert!(PositiveInteger.validate("1").is_ok());
        assert!(PositiveInteger.validate("0").is_err());
        assert!(PositiveInteger.validate("-1").is_err());
        assert!(NonNegativeInteger.validate("0").is_ok());
        assert!(NegativeInteger.validate("-5").is_ok());
        assert!(NegativeInteger.validate("5").is_err());
        assert!(Integer.validate("12345678901234567890123").is_ok()); // unbounded
        assert!(Integer.validate("1.5").is_err());
        assert!(Byte.validate("127").is_ok());
        assert!(Byte.validate("128").is_err());
        assert!(UnsignedByte.validate("255").is_ok());
        assert!(UnsignedByte.validate("256").is_err());
        assert!(UnsignedByte.validate("-1").is_err());
    }

    #[test]
    fn boolean_and_float() {
        use BuiltinType::*;
        for v in ["true", "false", "1", "0"] {
            assert!(Boolean.validate(v).is_ok());
        }
        assert!(Boolean.validate("TRUE").is_err());
        assert!(Double.validate("1.5e10").is_ok());
        assert!(Double.validate("NaN").is_ok());
        assert!(Double.validate("-INF").is_ok());
        assert!(Double.validate("abc").is_err());
    }

    #[test]
    fn dates_and_times() {
        use BuiltinType::*;
        assert!(Date.validate("1999-05-21").is_ok());
        assert!(Date.validate("1999-05-32").is_err());
        assert!(DateTime.validate("1999-05-21T13:20:00").is_ok());
        assert!(DateTime.validate("1999-05-21T25:00:00").is_err());
        assert!(DateTime.validate("1999-05-21").is_err());
        assert!(Time.validate("13:20:00").is_ok());
        assert!(Time.validate("13:20:00.5Z").is_ok());
        assert!(Time.validate("13:20").is_err());
        assert!(GYear.validate("1999").is_ok());
        assert!(GYear.validate("99").is_err());
    }

    #[test]
    fn names_and_tokens() {
        use BuiltinType::*;
        assert!(NmToken.validate("US").is_ok());
        assert!(NmToken.validate("a b").is_err());
        assert!(Name.validate("xsd:element").is_ok());
        assert!(NCName.validate("xsd:element").is_err());
        assert!(NCName.validate("element").is_ok());
        assert!(Language.validate("en").is_ok());
        assert!(Language.validate("en-US").is_ok());
        assert!(Language.validate("123").is_err());
        assert!(Language.validate("toolongsubtag1").is_err());
    }

    #[test]
    fn any_uri() {
        use BuiltinType::*;
        assert!(AnyUri.validate("http://example.com/a%20b").is_ok());
        assert!(AnyUri.validate("relative/path#frag").is_ok());
        assert!(AnyUri.validate("bad%zz").is_err());
        assert!(AnyUri.validate("trailing%1").is_err());
    }

    #[test]
    fn ordered_values_compare() {
        use BuiltinType::*;
        let a = Decimal.ordered_value("39.98").unwrap();
        let b = Decimal.ordered_value("148.95").unwrap();
        assert!(a < b);
        let x = Date.ordered_value("1999-05-21").unwrap();
        let y = Date.ordered_value("1999-10-20").unwrap();
        assert!(x < y);
        assert!(String.ordered_value("a").is_none());
    }
}
