//! Symbol-keyed validation plans: everything the streaming validator
//! needs at an element-open, precomputed and keyed by interned [`Sym`]s.
//!
//! The paper compiles content models ahead of time (Sect. 6); this module
//! extends the idea to the *dispatch* around them. For every element a
//! schema can ever admit — root declarations and every `(complex type,
//! child name)` pair — [`SymIndex`] holds an [`ElemPlan`]: the effective
//! attribute table, the abstract-type verdict, and the content regime
//! (simple type to check at close, compiled DFA to step, or a
//! precomputed error). At validation time the hot path is two integer
//! hash lookups per element; no strings are compared, hashed, or
//! allocated.
//!
//! The plans deliberately reproduce the *exact* decision tree of the
//! string-path validator (`validator::stream`), including its quirks:
//! an element whose type is unknown gets `UnknownType` and **no**
//! attribute checks, while a broken content model reports *after* the
//! attribute checks. The differential proptests in
//! `tests/tests/zero_copy_prop.rs` hold the two paths byte-identical.

use std::collections::HashMap;
use std::sync::Arc;

use automata::ContentDfa;
use symbols::Sym;

use crate::compiled::CompiledSchema;
use crate::components::{AttributeUse, ContentModel, TypeDef, TypeRef};

/// How an element's content is validated, decided once at build time.
#[derive(Debug, Clone)]
pub enum ContentPlan {
    /// Text-only content: buffer character data, check it against this
    /// simple type at the close tag.
    Simple(TypeRef),
    /// Element (or mixed) content: child names step the compiled DFA.
    Complex {
        /// The complex type's interned name — the key for child lookups
        /// when this element becomes a parent.
        type_sym: Sym,
        /// The shared, interned automaton.
        dfa: Arc<ContentDfa>,
        /// Whether interleaved text is allowed.
        mixed: bool,
    },
    /// The content model failed to compile (occurrence bounds beyond the
    /// expansion limit). Reported as a `SimpleType` error with this
    /// message — after attribute checks, exactly like the string path —
    /// and the subtree is skipped.
    Broken(String),
    /// The declared type does not resolve. Reported as `UnknownType`
    /// with this name; no attribute checks run, and the subtree is
    /// skipped.
    Unknown(String),
}

/// The precomputed element-open plan: everything `open_typed` used to
/// derive from a `TypeRef` per element, derived once.
#[derive(Debug, Clone)]
pub struct ElemPlan {
    /// Effective attribute uses (empty for simple-typed elements —
    /// matching the string path, which checks attributes against an
    /// empty declared list there).
    pub attrs: Arc<[AttributeUse]>,
    /// `Some(type name)` when the complex type is abstract: report
    /// `AbstractType` before the attribute checks.
    pub abstract_type: Option<String>,
    /// The content regime.
    pub content: ContentPlan,
}

/// A root element's plan, or the fact that the declaration is abstract.
#[derive(Debug, Clone)]
pub enum RootPlan {
    /// Abstract declarations may not appear in instances: report
    /// `AbstractElement` and skip the subtree.
    Abstract,
    /// A concrete root with its open plan.
    Elem(Arc<ElemPlan>),
}

/// The symbol-keyed dispatch tables for one compiled schema.
#[derive(Debug)]
pub struct SymIndex {
    roots: HashMap<Sym, RootPlan>,
    children: HashMap<(Sym, Sym), Arc<ElemPlan>>,
}

impl SymIndex {
    /// Builds the index: interns every declared name and precomputes a
    /// plan for every root and every `(complex type, child)` pair the
    /// schema can admit.
    ///
    /// Child candidates are the union of the content expression's
    /// symbols and *all* top-level element names — the latter because
    /// `Schema::child_element_type` resolves an abstract substitution
    /// head referenced by `ref=` even though the content expression
    /// excludes it (the DFA step fails, but the subtree still validates
    /// against the head's type, and the plans must agree with that).
    pub fn build(compiled: &CompiledSchema) -> SymIndex {
        let schema = compiled.schema();
        // one plan per distinct type, shared by every element of that type
        let mut plans: HashMap<String, Arc<ElemPlan>> = HashMap::new();
        let mut plan_for = |type_ref: &TypeRef| -> Arc<ElemPlan> {
            // variant-tagged key: a schema may declare a type named like
            // a built-in, and the two must not share a plan
            let key = match type_ref {
                TypeRef::Builtin(b) => format!("builtin:{}", b.name()),
                TypeRef::Named(n) | TypeRef::Anonymous(n) => format!("named:{n}"),
            };
            plans
                .entry(key)
                .or_insert_with(|| Arc::new(build_plan(compiled, type_ref)))
                .clone()
        };

        let mut roots = HashMap::new();
        for (name, decl) in &schema.elements {
            let sym = symbols::intern(name);
            let plan = if decl.is_abstract {
                RootPlan::Abstract
            } else {
                RootPlan::Elem(plan_for(&decl.type_ref))
            };
            roots.insert(sym, plan);
        }

        let mut children = HashMap::new();
        for (type_name, def) in &schema.types {
            if !matches!(def, TypeDef::Complex(_)) {
                continue;
            }
            let type_sym = symbols::intern(type_name);
            let mut candidates: Vec<&str> = schema.elements.keys().map(String::as_str).collect();
            let expr_symbols = schema.content_expr(type_name).map(|e| e.symbols());
            if let Ok(syms) = &expr_symbols {
                candidates.extend(syms.iter().map(String::as_str));
            }
            candidates.sort_unstable();
            candidates.dedup();
            for child in candidates {
                if let Some(child_type) = compiled.child_element_type(type_name, child) {
                    children.insert((type_sym, symbols::intern(child)), plan_for(&child_type));
                }
            }
        }

        SymIndex { roots, children }
    }

    /// The plan for a root element, `None` when undeclared.
    #[inline]
    pub fn root(&self, name: Sym) -> Option<&RootPlan> {
        self.roots.get(&name)
    }

    /// The plan for `child` within complex type `parent_type`, `None`
    /// when the type admits no such child (the subtree is skipped).
    #[inline]
    pub fn child(&self, parent_type: Sym, child: Sym) -> Option<&Arc<ElemPlan>> {
        self.children.get(&(parent_type, child))
    }

    /// Number of root plans (bench/obs metric).
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Number of `(type, child)` plans (bench/obs metric).
    pub fn child_count(&self) -> usize {
        self.children.len()
    }
}

/// Derives the open plan for one type reference — the build-time twin of
/// the string path's `open_typed` dispatch.
fn build_plan(compiled: &CompiledSchema, type_ref: &TypeRef) -> ElemPlan {
    let no_attrs: Arc<[AttributeUse]> = Arc::from(Vec::new());
    match type_ref {
        TypeRef::Builtin(_) => ElemPlan {
            attrs: no_attrs,
            abstract_type: None,
            content: ContentPlan::Simple(type_ref.clone()),
        },
        TypeRef::Named(name) | TypeRef::Anonymous(name) => match compiled.schema().type_def(name) {
            Some(TypeDef::Simple(_)) => ElemPlan {
                attrs: no_attrs,
                abstract_type: None,
                content: ContentPlan::Simple(type_ref.clone()),
            },
            Some(TypeDef::Complex(ct)) => {
                let attrs = compiled.effective_attributes(name).unwrap_or(no_attrs);
                let abstract_type = ct.is_abstract.then(|| name.clone());
                let content = match &ct.content {
                    ContentModel::Simple(simple_ref) => ContentPlan::Simple(simple_ref.clone()),
                    ContentModel::Empty | ContentModel::ElementOnly(_) => {
                        complex_content(compiled, name, false)
                    }
                    ContentModel::Mixed(_) => complex_content(compiled, name, true),
                };
                ElemPlan {
                    attrs,
                    abstract_type,
                    content,
                }
            }
            None => ElemPlan {
                attrs: no_attrs,
                abstract_type: None,
                content: ContentPlan::Unknown(name.clone()),
            },
        },
    }
}

fn complex_content(compiled: &CompiledSchema, type_name: &str, mixed: bool) -> ContentPlan {
    match compiled.content_dfa(type_name) {
        Ok(dfa) => ContentPlan::Complex {
            type_sym: symbols::intern(type_name),
            dfa,
            mixed,
        },
        Err(e) => ContentPlan::Broken(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{PURCHASE_ORDER_XSD, WML_XSD};

    #[test]
    fn po_index_covers_declared_children() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let index = compiled.sym_index();
        let root = symbols::lookup("purchaseOrder").expect("root interned");
        assert!(matches!(index.root(root), Some(RootPlan::Elem(_))));
        let po_type = match index.root(root) {
            Some(RootPlan::Elem(plan)) => match &plan.content {
                ContentPlan::Complex { type_sym, .. } => *type_sym,
                other => panic!("unexpected root content {other:?}"),
            },
            _ => unreachable!(),
        };
        let ship = symbols::lookup("shipTo").expect("child interned");
        assert!(index.child(po_type, ship).is_some());
        let bogus = symbols::intern("symtest-not-a-po-child");
        assert!(index.child(po_type, bogus).is_none());
    }

    #[test]
    fn wml_index_builds_and_counts() {
        let compiled = CompiledSchema::parse(WML_XSD).unwrap();
        let index = compiled.sym_index();
        assert!(index.root_count() >= 1);
        assert!(index.child_count() > 0);
    }

    #[test]
    fn plans_are_shared_per_type() {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let index = compiled.sym_index();
        // shipTo and billTo are both USAddress: one plan, two entries
        let root = symbols::lookup("purchaseOrder").unwrap();
        let po_type = match index.root(root) {
            Some(RootPlan::Elem(plan)) => match &plan.content {
                ContentPlan::Complex { type_sym, .. } => *type_sym,
                _ => unreachable!(),
            },
            _ => unreachable!(),
        };
        let ship = index
            .child(po_type, symbols::lookup("shipTo").unwrap())
            .unwrap();
        let bill = index
            .child(po_type, symbols::lookup("billTo").unwrap())
            .unwrap();
        assert!(Arc::ptr_eq(ship, bill));
    }
}
