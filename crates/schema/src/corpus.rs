//! The paper's schemas and documents, shared by tests, examples and
//! benches across the workspace.
//!
//! Everything here is transcribed from the paper: the purchase-order
//! schema (Figs. 2–3) and document (Fig. 1), the Sect. 3 variants used in
//! the naming-scheme discussion, the Sect. 3 extension/substitution
//! examples, and a WML subset schema for the Sect. 5 example.

/// The purchase-order schema of Figs. 2–3 (complete, including the
/// anonymous item type, the `quantity` restriction and the `SKU` pattern).
pub const PURCHASE_ORDER_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:annotation>
    <xsd:documentation xml:lang="en">
      Purchase order schema for Example.com.
      Copyright 2000 Example.com. All rights reserved.
    </xsd:documentation>
  </xsd:annotation>

  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>
  <xsd:element name="comment" type="xsd:string"/>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
    <xsd:attribute name="orderDate" type="xsd:date"/>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
    </xsd:sequence>
    <xsd:attribute name="country" type="xsd:NMTOKEN" fixed="US"/>
  </xsd:complexType>

  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" minOccurs="0" maxOccurs="unbounded">
        <xsd:complexType>
          <xsd:sequence>
            <xsd:element name="productName" type="xsd:string"/>
            <xsd:element name="quantity">
              <xsd:simpleType>
                <xsd:restriction base="xsd:positiveInteger">
                  <xsd:maxExclusive value="100"/>
                </xsd:restriction>
              </xsd:simpleType>
            </xsd:element>
            <xsd:element name="USPrice" type="xsd:decimal"/>
            <xsd:element ref="comment" minOccurs="0"/>
            <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
          </xsd:sequence>
          <xsd:attribute name="partNum" type="SKU" use="required"/>
        </xsd:complexType>
      </xsd:element>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:simpleType name="SKU">
    <xsd:restriction base="xsd:string">
      <xsd:pattern value="\d{3}-[A-Z]{2}"/>
    </xsd:restriction>
  </xsd:simpleType>
</xsd:schema>
"#;

/// The purchase-order instance document of Fig. 1.
pub const PURCHASE_ORDER_XML: &str = r#"<purchaseOrder orderDate="1999-10-20">
  <shipTo country="US">
    <name>Alice Smith</name>
    <street>123 Maple Street</street>
    <city>Mill Valley</city>
    <state>CA</state>
    <zip>90952</zip>
  </shipTo>
  <billTo country="US">
    <name>Robert Smith</name>
    <street>8 Oak Avenue</street>
    <city>Old Town</city>
    <state>PA</state>
    <zip>95819</zip>
  </billTo>
  <comment>Hurry, my lawn is going wild</comment>
  <items>
    <item partNum="872-AA">
      <productName>Lawnmower</productName>
      <quantity>1</quantity>
      <USPrice>148.95</USPrice>
      <comment>Confirm this is electric</comment>
    </item>
    <item partNum="926-AA">
      <productName>Baby Monitor</productName>
      <quantity>1</quantity>
      <USPrice>39.98</USPrice>
      <shipDate>1999-05-21</shipDate>
    </item>
  </items>
</purchaseOrder>
"#;

/// The Sect. 3 variant of `PurchaseOrderType` whose first component is a
/// choice between a single address and a two-address pair — the example
/// driving the paper's naming-scheme discussion (Figs. 5–6).
pub const CHOICE_PO_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>
  <xsd:element name="comment" type="xsd:string"/>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:choice>
        <xsd:element name="singAddr" type="USAddress"/>
        <xsd:element name="twoAddr" type="TwoAddress"/>
      </xsd:choice>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
    </xsd:sequence>
    <xsd:attribute name="country" type="xsd:NMTOKEN" fixed="US"/>
  </xsd:complexType>

  <xsd:complexType name="TwoAddress">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"#;

/// The same schema after the Sect. 3 evolution step: the choice gains a
/// `multAddr` alternative. Inherited naming keeps generated names stable
/// under this change.
pub const CHOICE_PO_EVOLVED_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>
  <xsd:element name="comment" type="xsd:string"/>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:choice>
        <xsd:element name="singAddr" type="USAddress"/>
        <xsd:element name="twoAddr" type="TwoAddress"/>
        <xsd:element name="multAddr" type="MultAddress"/>
      </xsd:choice>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
    </xsd:sequence>
    <xsd:attribute name="country" type="xsd:NMTOKEN" fixed="US"/>
  </xsd:complexType>

  <xsd:complexType name="TwoAddress">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="MultAddress">
    <xsd:sequence>
      <xsd:element name="addr" type="USAddress" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"#;

/// The Sect. 3 type-extension example: `USAddress extends Address`.
pub const ADDRESS_EXTENSION_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="address" type="Address"/>

  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:complexContent>
      <xsd:extension base="Address">
        <xsd:sequence>
          <xsd:element name="state" type="xsd:string"/>
          <xsd:element name="zip" type="xsd:string"/>
        </xsd:sequence>
      </xsd:extension>
    </xsd:complexContent>
  </xsd:complexType>
</xsd:schema>
"#;

/// The Sect. 3 substitution-group example: `shipComment` and
/// `customerComment` substitute for the (abstract-capable) `comment`.
pub const SUBSTITUTION_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="comment" type="xsd:string"/>
  <xsd:element name="shipComment" type="xsd:string" substitutionGroup="comment"/>
  <xsd:element name="customerComment" type="xsd:string" substitutionGroup="comment"/>

  <xsd:element name="order" type="OrderType"/>
  <xsd:complexType name="OrderType">
    <xsd:sequence>
      <xsd:element name="id" type="xsd:string"/>
      <xsd:element ref="comment" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"#;

/// A WML subset schema covering the Sect. 5 example: cards containing
/// paragraphs with bold text, line breaks and select/option lists.
pub const WML_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="wml" type="WmlType"/>

  <xsd:complexType name="WmlType">
    <xsd:sequence>
      <xsd:element name="card" type="CardType" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="CardType">
    <xsd:sequence>
      <xsd:element name="p" type="PType" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
    <xsd:attribute name="id" type="xsd:NCName"/>
    <xsd:attribute name="title" type="xsd:string"/>
  </xsd:complexType>

  <xsd:complexType name="PType" mixed="true">
    <xsd:choice minOccurs="0" maxOccurs="unbounded">
      <xsd:element name="b" type="InlineType"/>
      <xsd:element name="em" type="InlineType"/>
      <xsd:element name="br" type="EmptyType"/>
      <xsd:element name="select" type="SelectType"/>
      <xsd:element name="a" type="AnchorType"/>
    </xsd:choice>
    <xsd:attribute name="align" type="AlignType"/>
  </xsd:complexType>

  <xsd:complexType name="InlineType" mixed="true">
    <xsd:sequence/>
  </xsd:complexType>

  <xsd:complexType name="EmptyType">
    <xsd:sequence/>
  </xsd:complexType>

  <xsd:complexType name="SelectType">
    <xsd:sequence>
      <xsd:element name="option" type="OptionType" maxOccurs="unbounded"/>
    </xsd:sequence>
    <xsd:attribute name="name" type="xsd:NCName" use="required"/>
    <xsd:attribute name="multiple" type="xsd:boolean"/>
  </xsd:complexType>

  <xsd:complexType name="OptionType" mixed="true">
    <xsd:sequence/>
    <xsd:attribute name="value" type="xsd:string" use="required"/>
  </xsd:complexType>

  <xsd:complexType name="AnchorType" mixed="true">
    <xsd:sequence/>
    <xsd:attribute name="href" type="xsd:anyURI" use="required"/>
  </xsd:complexType>

  <xsd:simpleType name="AlignType">
    <xsd:restriction base="xsd:token">
      <xsd:enumeration value="left"/>
      <xsd:enumeration value="center"/>
      <xsd:enumeration value="right"/>
    </xsd:restriction>
  </xsd:simpleType>
</xsd:schema>
"#;

/// The explicit named-group example from Sect. 3 (`AddressGroup`).
pub const NAMED_GROUP_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>
  <xsd:element name="comment" type="xsd:string"/>

  <xsd:group name="AddressGroup">
    <xsd:choice>
      <xsd:element name="singAddr" type="xsd:string"/>
      <xsd:element name="twoAddr" type="xsd:string"/>
    </xsd:choice>
  </xsd:group>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:group ref="AddressGroup"/>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"#;

/// An XHTML subset schema for the paper's Sect. 1 server-page example
/// (`html`, `head`/`title`, `body` with headings, paragraphs, anchors
/// and lists).
pub const XHTML_XSD: &str = r#"<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="html" type="HtmlType"/>

  <xsd:complexType name="HtmlType">
    <xsd:sequence>
      <xsd:element name="head" type="HeadType"/>
      <xsd:element name="body" type="BodyType"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="HeadType">
    <xsd:sequence>
      <xsd:element name="title" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="BodyType">
    <xsd:choice minOccurs="0" maxOccurs="unbounded">
      <xsd:element name="h1" type="InlineMarkup"/>
      <xsd:element name="h2" type="InlineMarkup"/>
      <xsd:element name="p" type="InlineMarkup"/>
      <xsd:element name="ul" type="ListType"/>
    </xsd:choice>
  </xsd:complexType>

  <xsd:complexType name="InlineMarkup" mixed="true">
    <xsd:choice minOccurs="0" maxOccurs="unbounded">
      <xsd:element name="a" type="HtmlAnchorType"/>
      <xsd:element name="em" type="xsd:string"/>
      <xsd:element name="code" type="xsd:string"/>
    </xsd:choice>
  </xsd:complexType>

  <xsd:complexType name="ListType">
    <xsd:sequence>
      <xsd:element name="li" type="InlineMarkup" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="HtmlAnchorType" mixed="true">
    <xsd:sequence/>
    <xsd:attribute name="href" type="xsd:anyURI" use="required"/>
  </xsd:complexType>
</xsd:schema>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompiledSchema;

    #[test]
    fn every_corpus_schema_compiles() {
        for (name, xsd) in [
            ("purchase order", PURCHASE_ORDER_XSD),
            ("choice po", CHOICE_PO_XSD),
            ("choice po evolved", CHOICE_PO_EVOLVED_XSD),
            ("address extension", ADDRESS_EXTENSION_XSD),
            ("substitution", SUBSTITUTION_XSD),
            ("wml", WML_XSD),
            ("named group", NAMED_GROUP_XSD),
            ("xhtml", XHTML_XSD),
        ] {
            CompiledSchema::parse(xsd).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
