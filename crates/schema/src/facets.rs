//! Constraining facets for simple-type restrictions (XML Schema Part 2,
//! §4.3), and the checking machinery applied after whitespace
//! normalization.

use std::fmt;

use xmlchars::WhiteSpaceMode;
use xsdregex::{Dfa, Regex};

use crate::builtin::{BuiltinType, OrderedValue};

/// One constraining facet.
#[derive(Debug, Clone)]
pub enum Facet {
    /// Exact length in characters.
    Length(u64),
    /// Minimum length in characters.
    MinLength(u64),
    /// Maximum length in characters.
    MaxLength(u64),
    /// The value must match the pattern (compiled once; DFA cached).
    Pattern(CompiledPattern),
    /// The value must equal one of the enumerated lexical values.
    Enumeration(Vec<String>),
    /// Overrides the whitespace normalization mode.
    WhiteSpace(WhiteSpaceMode),
    /// `value ≤ bound`.
    MaxInclusive(String),
    /// `value < bound`.
    MaxExclusive(String),
    /// `value ≥ bound`.
    MinInclusive(String),
    /// `value > bound`.
    MinExclusive(String),
    /// Maximum number of significant digits.
    TotalDigits(u64),
    /// Maximum number of fraction digits.
    FractionDigits(u64),
}

/// A pattern facet holding both the source regex and a DFA for fast
/// repeated matching.
#[derive(Debug, Clone)]
pub struct CompiledPattern {
    regex: Regex,
    dfa: Dfa,
}

impl CompiledPattern {
    /// Compiles a pattern facet value.
    pub fn new(pattern: &str) -> Result<Self, xsdregex::ParsePatternError> {
        let regex = Regex::parse(pattern)?;
        let dfa = regex.dfa();
        Ok(CompiledPattern { regex, dfa })
    }

    /// The original pattern.
    pub fn pattern(&self) -> &str {
        self.regex.pattern()
    }

    /// Anchored match.
    pub fn is_match(&self, value: &str) -> bool {
        self.dfa.is_match(value)
    }
}

/// A facet violation: which facet failed and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FacetViolation {
    /// Name of the facet (`"pattern"`, `"maxExclusive"`, …).
    pub facet: &'static str,
    /// The constraint that was violated, rendered for messages.
    pub constraint: String,
    /// The offending (normalized) value.
    pub value: String,
}

impl fmt::Display for FacetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {:?} violates facet {}({})",
            self.value, self.facet, self.constraint
        )
    }
}

impl std::error::Error for FacetViolation {}

impl Facet {
    /// The facet's XSD element name.
    pub fn name(&self) -> &'static str {
        match self {
            Facet::Length(_) => "length",
            Facet::MinLength(_) => "minLength",
            Facet::MaxLength(_) => "maxLength",
            Facet::Pattern(_) => "pattern",
            Facet::Enumeration(_) => "enumeration",
            Facet::WhiteSpace(_) => "whiteSpace",
            Facet::MaxInclusive(_) => "maxInclusive",
            Facet::MaxExclusive(_) => "maxExclusive",
            Facet::MinInclusive(_) => "minInclusive",
            Facet::MinExclusive(_) => "minExclusive",
            Facet::TotalDigits(_) => "totalDigits",
            Facet::FractionDigits(_) => "fractionDigits",
        }
    }

    /// Checks a normalized value against this facet, in the context of
    /// the primitive `base` type (needed to interpret range bounds).
    pub fn check(&self, value: &str, base: BuiltinType) -> Result<(), FacetViolation> {
        let fail = |constraint: String| FacetViolation {
            facet: self.name(),
            constraint,
            value: value.to_string(),
        };
        let char_len = || value.chars().count() as u64;
        match self {
            Facet::Length(n) => (char_len() == *n)
                .then_some(())
                .ok_or_else(|| fail(n.to_string())),
            Facet::MinLength(n) => (char_len() >= *n)
                .then_some(())
                .ok_or_else(|| fail(n.to_string())),
            Facet::MaxLength(n) => (char_len() <= *n)
                .then_some(())
                .ok_or_else(|| fail(n.to_string())),
            Facet::Pattern(p) => p
                .is_match(value)
                .then_some(())
                .ok_or_else(|| fail(p.pattern().to_string())),
            Facet::Enumeration(allowed) => allowed
                .iter()
                .any(|a| a == value)
                .then_some(())
                .ok_or_else(|| fail(allowed.join(" | "))),
            Facet::WhiteSpace(_) => Ok(()), // handled during normalization
            Facet::MaxInclusive(bound) => {
                check_range(value, bound, base, |v, b| v <= b).map_err(|()| fail(bound.clone()))
            }
            Facet::MaxExclusive(bound) => {
                check_range(value, bound, base, |v, b| v < b).map_err(|()| fail(bound.clone()))
            }
            Facet::MinInclusive(bound) => {
                check_range(value, bound, base, |v, b| v >= b).map_err(|()| fail(bound.clone()))
            }
            Facet::MinExclusive(bound) => {
                check_range(value, bound, base, |v, b| v > b).map_err(|()| fail(bound.clone()))
            }
            Facet::TotalDigits(n) => {
                let d = crate::value::Decimal::parse(value).map_err(|_| fail(n.to_string()))?;
                (d.total_digits() as u64 <= *n)
                    .then_some(())
                    .ok_or_else(|| fail(n.to_string()))
            }
            Facet::FractionDigits(n) => {
                let d = crate::value::Decimal::parse(value).map_err(|_| fail(n.to_string()))?;
                (d.fraction_digits() as u64 <= *n)
                    .then_some(())
                    .ok_or_else(|| fail(n.to_string()))
            }
        }
    }
}

fn check_range(
    value: &str,
    bound: &str,
    base: BuiltinType,
    cmp: impl Fn(&OrderedValue, &OrderedValue) -> bool,
) -> Result<(), ()> {
    let v = base.ordered_value(value).ok_or(())?;
    let b = base.ordered_value(bound).ok_or(())?;
    if cmp(&v, &b) {
        Ok(())
    } else {
        Err(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_facets_count_chars_not_bytes() {
        let f = Facet::Length(3);
        assert!(f.check("abc", BuiltinType::String).is_ok());
        assert!(f.check("äöü", BuiltinType::String).is_ok());
        assert!(f.check("ab", BuiltinType::String).is_err());
        assert!(Facet::MinLength(2).check("ab", BuiltinType::String).is_ok());
        assert!(Facet::MinLength(2).check("a", BuiltinType::String).is_err());
        assert!(Facet::MaxLength(2).check("ab", BuiltinType::String).is_ok());
        assert!(Facet::MaxLength(2)
            .check("abc", BuiltinType::String)
            .is_err());
    }

    #[test]
    fn pattern_facet_sku() {
        let f = Facet::Pattern(CompiledPattern::new(r"\d{3}-[A-Z]{2}").unwrap());
        assert!(f.check("926-AA", BuiltinType::String).is_ok());
        let err = f.check("926-aa", BuiltinType::String).unwrap_err();
        assert_eq!(err.facet, "pattern");
        assert_eq!(err.constraint, r"\d{3}-[A-Z]{2}");
    }

    #[test]
    fn enumeration_facet() {
        let f = Facet::Enumeration(vec!["US".into(), "DE".into()]);
        assert!(f.check("US", BuiltinType::NmToken).is_ok());
        assert!(f.check("FR", BuiltinType::NmToken).is_err());
    }

    #[test]
    fn quantity_from_the_paper() {
        // positiveInteger with maxExclusive 100 (Fig. 3, quantity)
        let f = Facet::MaxExclusive("100".into());
        assert!(f.check("1", BuiltinType::PositiveInteger).is_ok());
        assert!(f.check("99", BuiltinType::PositiveInteger).is_ok());
        assert!(f.check("100", BuiltinType::PositiveInteger).is_err());
        assert!(f.check("150", BuiltinType::PositiveInteger).is_err());
    }

    #[test]
    fn range_facets_on_decimals_and_dates() {
        assert!(Facet::MinInclusive("0".into())
            .check("0", BuiltinType::Decimal)
            .is_ok());
        assert!(Facet::MinExclusive("0".into())
            .check("0", BuiltinType::Decimal)
            .is_err());
        assert!(Facet::MaxInclusive("1999-12-31".into())
            .check("1999-05-21", BuiltinType::Date)
            .is_ok());
        assert!(Facet::MaxInclusive("1999-12-31".into())
            .check("2000-01-01", BuiltinType::Date)
            .is_err());
    }

    #[test]
    fn digit_facets() {
        assert!(Facet::TotalDigits(5)
            .check("123.45", BuiltinType::Decimal)
            .is_ok());
        assert!(Facet::TotalDigits(4)
            .check("123.45", BuiltinType::Decimal)
            .is_err());
        assert!(Facet::FractionDigits(2)
            .check("1.23", BuiltinType::Decimal)
            .is_ok());
        assert!(Facet::FractionDigits(1)
            .check("1.23", BuiltinType::Decimal)
            .is_err());
    }

    #[test]
    fn range_on_unordered_type_fails_cleanly() {
        let err = Facet::MaxInclusive("z".into())
            .check("a", BuiltinType::String)
            .unwrap_err();
        assert_eq!(err.facet, "maxInclusive");
    }
}
