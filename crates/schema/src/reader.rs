//! The XSD document reader: parses a schema document (itself XML) into
//! the [`Schema`] component model.
//!
//! The reader accepts the XML Schema structures used by the paper and its
//! examples: top-level and nested element declarations, named and
//! anonymous complex/simple types, sequence/choice/all groups, named
//! model groups and attribute groups, simple-type restriction with all
//! twelve facets, complex-type extension and restriction, substitution
//! groups, and abstract elements/types. Features outside the paper's
//! profile (wildcards, identity constraints, `list`/`union`,
//! `import`/`include`) are rejected with [`SchemaErrorKind::Unsupported`].

use dom::{Document, NodeId};
use xmlchars::Span;

use crate::builtin::BuiltinType;
use crate::components::*;
use crate::error::{SchemaError, SchemaErrorKind};
use crate::facets::{CompiledPattern, Facet};

/// The XML Schema namespace URI.
pub const XSD_NAMESPACE: &str = "http://www.w3.org/2001/XMLSchema";

/// Parses the text of an XSD document into a [`Schema`].
pub fn parse_schema(source: &str) -> Result<Schema, SchemaError> {
    let doc = xmlparse::parse_document(source)
        .map_err(|e| SchemaError::nowhere(SchemaErrorKind::Xml(e.to_string())))?;
    read_schema(&doc)
}

/// Reads an already-parsed XSD document into a [`Schema`].
pub fn read_schema(doc: &Document) -> Result<Schema, SchemaError> {
    let root = doc
        .root_element()
        .ok_or_else(|| SchemaError::nowhere(SchemaErrorKind::NotASchema))?;
    let mut reader = SchemaReader {
        doc,
        schema: Schema::default(),
        anon_counter: 0,
    };
    reader.read_root(root)?;
    Ok(reader.schema)
}

struct SchemaReader<'a> {
    doc: &'a Document,
    schema: Schema,
    anon_counter: u32,
}

impl<'a> SchemaReader<'a> {
    fn span(&self, node: NodeId) -> Span {
        self.doc.span(node).unwrap_or_default()
    }

    /// Splits a lexical tag name and checks it resolves to the XSD
    /// namespace; returns the local name, or `None` for foreign elements.
    fn xsd_local(&self, node: NodeId) -> Option<String> {
        let tag = self.doc.tag_name(node).ok()?;
        let (prefix, local) = match tag.split_once(':') {
            Some((p, l)) => (Some(p), l),
            None => (None, tag),
        };
        let ns = self.doc.namespace_of_prefix(node, prefix)?;
        (ns == XSD_NAMESPACE).then(|| local.to_string())
    }

    /// Resolves a QName-valued attribute (`type=`, `base=`, `ref=`) to a
    /// [`TypeRef`]-style decision: `Ok(Ok(builtin))` when it lives in the
    /// XSD namespace, `Ok(Err(local_name))` otherwise.
    fn resolve_qname(
        &self,
        node: NodeId,
        value: &str,
    ) -> Result<Result<BuiltinType, String>, SchemaError> {
        let (prefix, local) = match value.split_once(':') {
            Some((p, l)) => (Some(p), l),
            None => (None, value),
        };
        let ns = self.doc.namespace_of_prefix(node, prefix);
        if ns.as_deref() == Some(XSD_NAMESPACE) {
            match BuiltinType::by_name(local) {
                Some(b) => Ok(Ok(b)),
                None => Err(SchemaError::at(
                    SchemaErrorKind::UnknownBuiltin(local.to_string()),
                    self.span(node),
                )),
            }
        } else {
            Ok(Err(local.to_string()))
        }
    }

    fn type_ref_of(&self, node: NodeId, value: &str) -> Result<TypeRef, SchemaError> {
        Ok(match self.resolve_qname(node, value)? {
            Ok(builtin) => TypeRef::Builtin(builtin),
            Err(name) => TypeRef::Named(name),
        })
    }

    fn attr(&self, node: NodeId, name: &str) -> Option<String> {
        self.doc
            .attribute(node, name)
            .ok()
            .flatten()
            .map(str::to_string)
    }

    fn require_attr(&self, node: NodeId, name: &'static str) -> Result<String, SchemaError> {
        self.attr(node, name).ok_or_else(|| {
            SchemaError::at(
                SchemaErrorKind::MissingAttribute {
                    element: self.doc.tag_name(node).unwrap_or("?").to_string(),
                    attribute: name,
                },
                self.span(node),
            )
        })
    }

    /// Generates a name for an anonymous type attached to element `owner`.
    fn anon_name(&mut self, owner: &str) -> String {
        let mut base: String = {
            let mut chars = owner.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().chain(chars).collect(),
                None => "Anon".to_string(),
            }
        };
        base.push_str("Type");
        if !self.schema.types.contains_key(&base) {
            return base;
        }
        loop {
            self.anon_counter += 1;
            let candidate = format!("{base}{}", self.anon_counter);
            if !self.schema.types.contains_key(&candidate) {
                return candidate;
            }
        }
    }

    fn xsd_children(&self, node: NodeId) -> Vec<(String, NodeId)> {
        self.doc
            .child_elements(node)
            .filter_map(|c| self.xsd_local(c).map(|l| (l, c)))
            .collect()
    }

    // ---- top level -------------------------------------------------------

    fn read_root(&mut self, root: NodeId) -> Result<(), SchemaError> {
        if self.xsd_local(root).as_deref() != Some("schema") {
            return Err(SchemaError::at(
                SchemaErrorKind::NotASchema,
                self.span(root),
            ));
        }
        self.schema.target_namespace = self.attr(root, "targetNamespace");
        for (local, child) in self.xsd_children(root) {
            match local.as_str() {
                "annotation" => {}
                "element" => {
                    let decl = self.read_top_element(child)?;
                    if self.schema.elements.contains_key(&decl.name) {
                        return Err(SchemaError::at(
                            SchemaErrorKind::Duplicate {
                                kind: "element",
                                name: decl.name,
                            },
                            self.span(child),
                        ));
                    }
                    self.schema.elements.insert(decl.name.clone(), decl);
                }
                "complexType" => {
                    let name = self.require_attr(child, "name")?;
                    let ct = self.read_complex_type(child, name.clone(), false)?;
                    self.insert_type(child, TypeDef::Complex(ct))?;
                }
                "simpleType" => {
                    let name = self.require_attr(child, "name")?;
                    let st = self.read_simple_type(child, name.clone(), false)?;
                    self.insert_type(child, TypeDef::Simple(st))?;
                }
                "group" => {
                    let name = self.require_attr(child, "name")?;
                    let particle = self.read_group_body(child)?;
                    if self.schema.groups.contains_key(&name) {
                        return Err(SchemaError::at(
                            SchemaErrorKind::Duplicate {
                                kind: "group",
                                name,
                            },
                            self.span(child),
                        ));
                    }
                    self.schema
                        .groups
                        .insert(name.clone(), GroupDef { name, particle });
                }
                "attributeGroup" => {
                    let name = self.require_attr(child, "name")?;
                    let attributes = self.read_attribute_uses(child)?;
                    self.schema
                        .attribute_groups
                        .insert(name.clone(), AttributeGroupDef { name, attributes });
                }
                "import" | "include" | "redefine" | "notation" => {
                    return Err(SchemaError::at(
                        SchemaErrorKind::Unsupported {
                            feature: "schema composition",
                            detail: local,
                        },
                        self.span(child),
                    ))
                }
                other => {
                    return Err(SchemaError::at(
                        SchemaErrorKind::Misplaced {
                            found: other.to_string(),
                            context: "xsd:schema",
                        },
                        self.span(child),
                    ))
                }
            }
        }
        Ok(())
    }

    fn insert_type(&mut self, node: NodeId, def: TypeDef) -> Result<(), SchemaError> {
        let name = def.name().to_string();
        if self.schema.types.contains_key(&name) {
            return Err(SchemaError::at(
                SchemaErrorKind::Duplicate { kind: "type", name },
                self.span(node),
            ));
        }
        self.schema.types.insert(name, def);
        Ok(())
    }

    // ---- elements --------------------------------------------------------

    fn read_top_element(&mut self, node: NodeId) -> Result<ElementDecl, SchemaError> {
        let name = self.require_attr(node, "name")?;
        let type_ref = self.element_type(node, &name)?;
        let substitution_group = match self.attr(node, "substitutionGroup") {
            Some(v) => match self.resolve_qname(node, &v)? {
                Ok(_) => {
                    return Err(SchemaError::at(
                        SchemaErrorKind::BadDerivation(
                            "substitutionGroup head cannot be a built-in".to_string(),
                        ),
                        self.span(node),
                    ))
                }
                Err(local) => Some(local),
            },
            None => None,
        };
        let is_abstract = self.attr(node, "abstract").as_deref() == Some("true");
        Ok(ElementDecl {
            name,
            type_ref,
            substitution_group,
            is_abstract,
        })
    }

    /// Determines the type of an element declaration: a `type=`
    /// attribute, a nested anonymous type, or defaulted `anyType`
    /// (profiled here as `xsd:string` content is NOT assumed — we reject,
    /// since the paper's schemas always declare types).
    fn element_type(&mut self, node: NodeId, owner: &str) -> Result<TypeRef, SchemaError> {
        if let Some(t) = self.attr(node, "type") {
            return self.type_ref_of(node, &t);
        }
        for (local, child) in self.xsd_children(node) {
            match local.as_str() {
                "complexType" => {
                    let name = self.anon_name(owner);
                    let ct = self.read_complex_type(child, name.clone(), true)?;
                    self.insert_type(child, TypeDef::Complex(ct))?;
                    return Ok(TypeRef::Anonymous(name));
                }
                "simpleType" => {
                    let name = self.anon_name(owner);
                    let st = self.read_simple_type(child, name.clone(), true)?;
                    self.insert_type(child, TypeDef::Simple(st))?;
                    return Ok(TypeRef::Anonymous(name));
                }
                "annotation" => {}
                other => {
                    return Err(SchemaError::at(
                        SchemaErrorKind::Misplaced {
                            found: other.to_string(),
                            context: "xsd:element",
                        },
                        self.span(child),
                    ))
                }
            }
        }
        Err(SchemaError::at(
            SchemaErrorKind::MissingAttribute {
                element: format!("element name=\"{owner}\""),
                attribute: "type (or a nested type definition)",
            },
            self.span(node),
        ))
    }

    // ---- particles -------------------------------------------------------

    fn read_occurs(&self, node: NodeId) -> Result<Occurs, SchemaError> {
        let parse_bound = |v: &str| -> Result<u32, SchemaError> {
            v.parse().map_err(|_| {
                SchemaError::at(SchemaErrorKind::BadOccurs(v.to_string()), self.span(node))
            })
        };
        let min = match self.attr(node, "minOccurs") {
            Some(v) => parse_bound(&v)?,
            None => 1,
        };
        let max = match self.attr(node, "maxOccurs") {
            Some(v) if v == "unbounded" => None,
            Some(v) => Some(parse_bound(&v)?),
            None => Some(1),
        };
        if let Some(m) = max {
            if min > m {
                return Err(SchemaError::at(
                    SchemaErrorKind::BadOccurs(format!("minOccurs={min} > maxOccurs={m}")),
                    self.span(node),
                ));
            }
        }
        Ok(Occurs { min, max })
    }

    /// Reads one particle-forming child (`element`, `sequence`, `choice`,
    /// `all`, `group ref`, `any`).
    fn read_particle(&mut self, local: &str, node: NodeId) -> Result<Particle, SchemaError> {
        let occurs = self.read_occurs(node)?;
        let term = match local {
            "element" => {
                if let Some(r) = self.attr(node, "ref") {
                    match self.resolve_qname(node, &r)? {
                        Ok(_) => {
                            return Err(SchemaError::at(
                                SchemaErrorKind::BadDerivation(
                                    "element ref cannot target a built-in type".to_string(),
                                ),
                                self.span(node),
                            ))
                        }
                        Err(name) => Term::ElementRef(name),
                    }
                } else {
                    let name = self.require_attr(node, "name")?;
                    let type_ref = self.element_type(node, &name)?;
                    Term::Element { name, type_ref }
                }
            }
            "sequence" => Term::Sequence(self.read_child_particles(node)?),
            "choice" => Term::Choice(self.read_child_particles(node)?),
            "all" => Term::All(self.read_child_particles(node)?),
            "group" => {
                let r = self.require_attr(node, "ref")?;
                match self.resolve_qname(node, &r)? {
                    Ok(_) => {
                        return Err(SchemaError::at(
                            SchemaErrorKind::BadDerivation(
                                "group ref cannot target the XSD namespace".to_string(),
                            ),
                            self.span(node),
                        ))
                    }
                    Err(name) => Term::GroupRef(name),
                }
            }
            "any" => {
                return Err(SchemaError::at(
                    SchemaErrorKind::Unsupported {
                        feature: "wildcards",
                        detail: "xsd:any".to_string(),
                    },
                    self.span(node),
                ))
            }
            other => {
                return Err(SchemaError::at(
                    SchemaErrorKind::Misplaced {
                        found: other.to_string(),
                        context: "content model",
                    },
                    self.span(node),
                ))
            }
        };
        Ok(Particle { term, occurs })
    }

    fn read_child_particles(&mut self, node: NodeId) -> Result<Vec<Particle>, SchemaError> {
        let mut out = Vec::new();
        for (local, child) in self.xsd_children(node) {
            if local == "annotation" {
                continue;
            }
            out.push(self.read_particle(&local, child)?);
        }
        Ok(out)
    }

    fn read_group_body(&mut self, node: NodeId) -> Result<Particle, SchemaError> {
        for (local, child) in self.xsd_children(node) {
            match local.as_str() {
                "annotation" => {}
                "sequence" | "choice" | "all" => return self.read_particle(&local, child),
                other => {
                    return Err(SchemaError::at(
                        SchemaErrorKind::Misplaced {
                            found: other.to_string(),
                            context: "xsd:group",
                        },
                        self.span(child),
                    ))
                }
            }
        }
        Err(SchemaError::at(
            SchemaErrorKind::MissingAttribute {
                element: "group".to_string(),
                attribute: "a sequence/choice/all child",
            },
            self.span(node),
        ))
    }

    // ---- complex types ---------------------------------------------------

    fn read_complex_type(
        &mut self,
        node: NodeId,
        name: String,
        anonymous: bool,
    ) -> Result<ComplexType, SchemaError> {
        let is_abstract = self.attr(node, "abstract").as_deref() == Some("true");
        let mixed = self.attr(node, "mixed").as_deref() == Some("true");
        let mut derivation = None;
        let mut particle: Option<Particle> = None;
        let mut simple_content: Option<TypeRef> = None;
        let mut attributes = Vec::new();
        let mut attribute_groups = Vec::new();

        for (local, child) in self.xsd_children(node) {
            match local.as_str() {
                "annotation" => {}
                "sequence" | "choice" | "all" | "group" => {
                    particle = Some(self.read_particle(&local, child)?);
                }
                "attribute" => attributes.push(self.read_attribute_use(child)?),
                "attributeGroup" => {
                    let r = self.require_attr(child, "ref")?;
                    match self.resolve_qname(child, &r)? {
                        Err(g) => attribute_groups.push(g),
                        Ok(_) => {
                            return Err(SchemaError::at(
                                SchemaErrorKind::BadDerivation(
                                    "attributeGroup ref cannot target the XSD namespace"
                                        .to_string(),
                                ),
                                self.span(child),
                            ))
                        }
                    }
                }
                "complexContent" | "simpleContent" => {
                    let is_simple = local == "simpleContent";
                    for (inner_local, inner) in self.xsd_children(child) {
                        match inner_local.as_str() {
                            "annotation" => {}
                            "extension" | "restriction" => {
                                let base_attr = self.require_attr(inner, "base")?;
                                let method = if inner_local == "extension" {
                                    DerivationMethod::Extension
                                } else {
                                    DerivationMethod::Restriction
                                };
                                if is_simple {
                                    // simpleContent: base is a simple type;
                                    // facets on restriction wrap the base.
                                    let base_ref = self.type_ref_of(inner, &base_attr)?;
                                    let facets = self.read_facets(inner)?;
                                    let content_ref = if facets.is_empty() {
                                        base_ref
                                    } else {
                                        let anon = self.anon_name(&name);
                                        let st = SimpleType {
                                            name: anon.clone(),
                                            anonymous: true,
                                            base: base_ref,
                                            facets,
                                        };
                                        self.insert_type(inner, TypeDef::Simple(st))?;
                                        TypeRef::Anonymous(anon)
                                    };
                                    simple_content = Some(content_ref);
                                } else {
                                    derivation = Some(Derivation {
                                        method,
                                        base: match self.resolve_qname(inner, &base_attr)? {
                                            Err(n) => n,
                                            Ok(b) => {
                                                return Err(SchemaError::at(
                                                    SchemaErrorKind::BadDerivation(format!(
                                                    "complexContent base cannot be built-in xsd:{}",
                                                    b.name()
                                                )),
                                                    self.span(inner),
                                                ))
                                            }
                                        },
                                    });
                                }
                                // nested particle and attributes
                                for (gl, gc) in self.xsd_children(inner) {
                                    match gl.as_str() {
                                        "annotation" => {}
                                        "sequence" | "choice" | "all" | "group" => {
                                            particle = Some(self.read_particle(&gl, gc)?);
                                        }
                                        "attribute" => {
                                            attributes.push(self.read_attribute_use(gc)?)
                                        }
                                        "attributeGroup" => {
                                            let r = self.require_attr(gc, "ref")?;
                                            if let Err(g) = self.resolve_qname(gc, &r)? {
                                                attribute_groups.push(g);
                                            }
                                        }
                                        // facets were read by read_facets above
                                        _ if is_facet_name(&gl) => {}
                                        other => {
                                            return Err(SchemaError::at(
                                                SchemaErrorKind::Misplaced {
                                                    found: other.to_string(),
                                                    context: "extension/restriction",
                                                },
                                                self.span(gc),
                                            ))
                                        }
                                    }
                                }
                            }
                            other => {
                                return Err(SchemaError::at(
                                    SchemaErrorKind::Misplaced {
                                        found: other.to_string(),
                                        context: "complexContent/simpleContent",
                                    },
                                    self.span(inner),
                                ))
                            }
                        }
                    }
                }
                other => {
                    return Err(SchemaError::at(
                        SchemaErrorKind::Misplaced {
                            found: other.to_string(),
                            context: "xsd:complexType",
                        },
                        self.span(child),
                    ))
                }
            }
        }

        let content = if let Some(simple) = simple_content {
            ContentModel::Simple(simple)
        } else {
            match particle {
                Some(p) if mixed => ContentModel::Mixed(p),
                Some(p) => ContentModel::ElementOnly(p),
                None if mixed => ContentModel::Mixed(Particle {
                    term: Term::Sequence(Vec::new()),
                    occurs: Occurs::ONCE,
                }),
                None => ContentModel::Empty,
            }
        };

        Ok(ComplexType {
            name,
            anonymous,
            derivation,
            content,
            attributes,
            attribute_groups,
            is_abstract,
        })
    }

    // ---- simple types ----------------------------------------------------

    fn read_simple_type(
        &mut self,
        node: NodeId,
        name: String,
        anonymous: bool,
    ) -> Result<SimpleType, SchemaError> {
        for (local, child) in self.xsd_children(node) {
            match local.as_str() {
                "annotation" => {}
                "restriction" => {
                    let base_attr = self.require_attr(child, "base")?;
                    let base = self.type_ref_of(child, &base_attr)?;
                    let facets = self.read_facets(child)?;
                    return Ok(SimpleType {
                        name,
                        anonymous,
                        base,
                        facets,
                    });
                }
                "list" | "union" => {
                    return Err(SchemaError::at(
                        SchemaErrorKind::Unsupported {
                            feature: "simple-type variety",
                            detail: local,
                        },
                        self.span(child),
                    ))
                }
                other => {
                    return Err(SchemaError::at(
                        SchemaErrorKind::Misplaced {
                            found: other.to_string(),
                            context: "xsd:simpleType",
                        },
                        self.span(child),
                    ))
                }
            }
        }
        Err(SchemaError::at(
            SchemaErrorKind::MissingAttribute {
                element: "simpleType".to_string(),
                attribute: "a restriction child",
            },
            self.span(node),
        ))
    }

    fn read_facets(&mut self, restriction: NodeId) -> Result<Vec<Facet>, SchemaError> {
        let mut facets = Vec::new();
        let mut enumeration: Vec<String> = Vec::new();
        for (local, child) in self.xsd_children(restriction) {
            if !is_facet_name(&local) {
                continue; // attributes etc. are handled by the caller
            }
            let value = self.require_attr(child, "value")?;
            let bad = |reason: String| {
                SchemaError::at(
                    SchemaErrorKind::BadFacet {
                        facet: local.clone(),
                        reason,
                    },
                    self.span(child),
                )
            };
            let parse_u64 = |v: &str| v.parse::<u64>().map_err(|e| bad(format!("{v:?}: {e}")));
            match local.as_str() {
                "length" => facets.push(Facet::Length(parse_u64(&value)?)),
                "minLength" => facets.push(Facet::MinLength(parse_u64(&value)?)),
                "maxLength" => facets.push(Facet::MaxLength(parse_u64(&value)?)),
                "totalDigits" => facets.push(Facet::TotalDigits(parse_u64(&value)?)),
                "fractionDigits" => facets.push(Facet::FractionDigits(parse_u64(&value)?)),
                "pattern" => facets.push(Facet::Pattern(
                    CompiledPattern::new(&value).map_err(|e| bad(e.to_string()))?,
                )),
                "enumeration" => enumeration.push(value),
                "whiteSpace" => facets.push(Facet::WhiteSpace(match value.as_str() {
                    "preserve" => xmlchars::WhiteSpaceMode::Preserve,
                    "replace" => xmlchars::WhiteSpaceMode::Replace,
                    "collapse" => xmlchars::WhiteSpaceMode::Collapse,
                    other => return Err(bad(format!("unknown mode {other:?}"))),
                })),
                "maxInclusive" => facets.push(Facet::MaxInclusive(value)),
                "maxExclusive" => facets.push(Facet::MaxExclusive(value)),
                "minInclusive" => facets.push(Facet::MinInclusive(value)),
                "minExclusive" => facets.push(Facet::MinExclusive(value)),
                _ => unreachable!("is_facet_name covers all cases"),
            }
        }
        if !enumeration.is_empty() {
            facets.push(Facet::Enumeration(enumeration));
        }
        Ok(facets)
    }

    // ---- attributes -------------------------------------------------------

    fn read_attribute_use(&mut self, node: NodeId) -> Result<AttributeUse, SchemaError> {
        let name = self.require_attr(node, "name")?;
        let type_ref = if let Some(t) = self.attr(node, "type") {
            self.type_ref_of(node, &t)?
        } else {
            // nested simpleType, or default to string
            let mut found = None;
            for (local, child) in self.xsd_children(node) {
                if local == "simpleType" {
                    let anon = self.anon_name(&name);
                    let st = self.read_simple_type(child, anon.clone(), true)?;
                    self.insert_type(child, TypeDef::Simple(st))?;
                    found = Some(TypeRef::Anonymous(anon));
                }
            }
            found.unwrap_or(TypeRef::Builtin(BuiltinType::String))
        };
        Ok(AttributeUse {
            name,
            type_ref,
            required: self.attr(node, "use").as_deref() == Some("required"),
            fixed: self.attr(node, "fixed"),
            default: self.attr(node, "default"),
        })
    }

    fn read_attribute_uses(&mut self, node: NodeId) -> Result<Vec<AttributeUse>, SchemaError> {
        let mut out = Vec::new();
        for (local, child) in self.xsd_children(node) {
            match local.as_str() {
                "annotation" => {}
                "attribute" => out.push(self.read_attribute_use(child)?),
                other => {
                    return Err(SchemaError::at(
                        SchemaErrorKind::Misplaced {
                            found: other.to_string(),
                            context: "xsd:attributeGroup",
                        },
                        self.span(child),
                    ))
                }
            }
        }
        Ok(out)
    }
}

fn is_facet_name(local: &str) -> bool {
    matches!(
        local,
        "length"
            | "minLength"
            | "maxLength"
            | "pattern"
            | "enumeration"
            | "whiteSpace"
            | "maxInclusive"
            | "maxExclusive"
            | "minInclusive"
            | "minExclusive"
            | "totalDigits"
            | "fractionDigits"
    )
}
