//! End-to-end tests of the schema reader and resolution on the paper's
//! purchase-order schema (Figs. 2–3) and the Sect. 3 feature examples.

use automata::Matcher;
use schema::corpus::*;
use schema::{
    BuiltinType, CompiledSchema, DerivationMethod, Facet, SimpleTypeError, TypeDef, TypeRef,
};

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

#[test]
fn top_level_components_present() {
    let c = po();
    let s = c.schema();
    assert!(s.element("purchaseOrder").is_some());
    assert!(s.element("comment").is_some());
    for t in ["PurchaseOrderType", "USAddress", "Items", "SKU"] {
        assert!(s.type_def(t).is_some(), "{t}");
    }
    assert_eq!(
        s.element("purchaseOrder").unwrap().type_ref,
        TypeRef::Named("PurchaseOrderType".into())
    );
    assert_eq!(
        s.element("comment").unwrap().type_ref,
        TypeRef::Builtin(BuiltinType::String)
    );
}

#[test]
fn anonymous_item_type_lifted_with_generated_name() {
    let c = po();
    let s = c.schema();
    // the anonymous complexType inside element item gets a generated name
    let item_type = s.child_element_type("Items", "item").unwrap();
    assert!(matches!(item_type, TypeRef::Anonymous(_)));
    let def = s.type_def(item_type.name()).unwrap();
    assert!(def.is_anonymous());
    match def {
        TypeDef::Complex(ct) => {
            assert_eq!(ct.attributes.len(), 1);
            assert_eq!(ct.attributes[0].name, "partNum");
            assert!(ct.attributes[0].required);
        }
        other => panic!("{other:?}"),
    }
    // and the anonymous simple type of quantity too
    let q = s.child_element_type(item_type.name(), "quantity").unwrap();
    match s.type_def(q.name()).unwrap() {
        TypeDef::Simple(st) => {
            assert!(matches!(
                st.base,
                TypeRef::Builtin(BuiltinType::PositiveInteger)
            ));
            assert!(matches!(st.facets[0], Facet::MaxExclusive(_)));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn content_dfa_of_purchase_order_type() {
    let c = po();
    let dfa = c.content_dfa("PurchaseOrderType").unwrap();
    assert!(dfa.accepts(["shipTo", "billTo", "comment", "items"]));
    assert!(dfa.accepts(["shipTo", "billTo", "items"]));
    assert!(!dfa.accepts(["billTo", "shipTo", "items"]));
    assert!(!dfa.accepts(["shipTo", "billTo"]));
    // cache works
    assert_eq!(c.compiled_count(), 1);
    let _ = c.content_dfa("PurchaseOrderType").unwrap();
    assert_eq!(c.compiled_count(), 1);
}

#[test]
fn identical_content_models_intern_to_one_dfa() {
    // Two independently compiled copies of the same schema: the intern
    // table hands both the same compiled automaton.
    let a = po();
    let b = po();
    let da = a.content_dfa("PurchaseOrderType").unwrap();
    let db = b.content_dfa("PurchaseOrderType").unwrap();
    assert!(da.ptr_eq(&db), "equal models must share one automaton");
    assert!(
        std::sync::Arc::ptr_eq(&da, &db),
        "intern table returns clones of one Arc"
    );
    // distinct models stay distinct
    let items = a.content_dfa("Items").unwrap();
    assert!(!da.ptr_eq(&items));
    assert!(schema::interned_dfa_count() >= 2);
}

#[test]
fn warm_precompiles_every_complex_type() {
    let c = po();
    assert_eq!(c.compiled_count(), 0);
    let ready = c.warm();
    assert!(
        ready >= 4,
        "PO schema has several complex types, got {ready}"
    );
    assert_eq!(c.compiled_count(), ready);
    // idempotent: a second warm compiles nothing new
    assert_eq!(c.warm(), ready);
    assert_eq!(c.compiled_count(), ready);
    // warmed lookups are cache hits, not recompilations
    let before = schema::interned_dfa_count();
    let _ = c.content_dfa("PurchaseOrderType").unwrap();
    assert_eq!(schema::interned_dfa_count(), before);
}

#[test]
fn items_allows_zero_or_more_items() {
    let c = po();
    let dfa = c.content_dfa("Items").unwrap();
    assert!(dfa.accepts([]));
    assert!(dfa.accepts(["item", "item", "item"]));
    assert!(!dfa.accepts(["item", "shipTo"]));
}

#[test]
fn item_content_model_with_optionals() {
    let c = po();
    let item_type = c.schema().child_element_type("Items", "item").unwrap();
    let dfa = c.content_dfa(item_type.name()).unwrap();
    assert!(dfa.accepts(["productName", "quantity", "USPrice", "comment"]));
    assert!(dfa.accepts(["productName", "quantity", "USPrice", "shipDate"]));
    assert!(dfa.accepts(["productName", "quantity", "USPrice"]));
    assert!(!dfa.accepts(["productName", "USPrice", "quantity"]));
}

#[test]
fn sku_pattern_enforced() {
    let c = po();
    let sku = TypeRef::Named("SKU".into());
    assert_eq!(
        c.schema().validate_simple_value(&sku, "926-AA").unwrap(),
        "926-AA"
    );
    assert!(matches!(
        c.schema().validate_simple_value(&sku, "926-aa"),
        Err(SimpleTypeError::Facet(_))
    ));
}

#[test]
fn quantity_range_enforced_through_anonymous_type() {
    let c = po();
    let item_type = c.schema().child_element_type("Items", "item").unwrap();
    let q = c
        .schema()
        .child_element_type(item_type.name(), "quantity")
        .unwrap();
    assert!(c.schema().validate_simple_value(&q, "1").is_ok());
    assert!(c.schema().validate_simple_value(&q, " 99 ").is_ok()); // collapse
    assert!(c.schema().validate_simple_value(&q, "100").is_err());
    assert!(c.schema().validate_simple_value(&q, "0").is_err());
    assert!(c.schema().validate_simple_value(&q, "five").is_err());
}

#[test]
fn effective_attributes_of_us_address() {
    let c = po();
    let attrs = c.schema().effective_attributes("USAddress").unwrap();
    assert_eq!(attrs.len(), 1);
    assert_eq!(attrs[0].name, "country");
    assert_eq!(attrs[0].fixed.as_deref(), Some("US"));
    assert!(matches!(
        attrs[0].type_ref,
        TypeRef::Builtin(BuiltinType::NmToken)
    ));
}

#[test]
fn extension_merges_content_and_attributes() {
    let c = CompiledSchema::parse(ADDRESS_EXTENSION_XSD).unwrap();
    let s = c.schema();
    match s.type_def("USAddress").unwrap() {
        TypeDef::Complex(ct) => {
            let d = ct.derivation.as_ref().unwrap();
            assert_eq!(d.method, DerivationMethod::Extension);
            assert_eq!(d.base, "Address");
        }
        other => panic!("{other:?}"),
    }
    let dfa = c.content_dfa("USAddress").unwrap();
    // base content first, then extension content
    assert!(dfa.accepts(["name", "street", "city", "state", "zip"]));
    assert!(!dfa.accepts(["state", "zip", "name", "street", "city"]));
    assert!(!dfa.accepts(["name", "street", "city"]));
    // the base type still validates alone
    let base = c.content_dfa("Address").unwrap();
    assert!(base.accepts(["name", "street", "city"]));
}

#[test]
fn substitution_group_expands_in_content() {
    let c = CompiledSchema::parse(SUBSTITUTION_XSD).unwrap();
    let dfa = c.content_dfa("OrderType").unwrap();
    assert!(dfa.accepts(["id"]));
    assert!(dfa.accepts(["id", "comment"]));
    assert!(dfa.accepts(["id", "shipComment", "customerComment", "comment"]));
    assert!(!dfa.accepts(["id", "unrelated"]));
    // member types resolve through the head's reference
    let t = c
        .schema()
        .child_element_type("OrderType", "shipComment")
        .unwrap();
    assert!(matches!(t, TypeRef::Builtin(BuiltinType::String)));
}

#[test]
fn named_group_inlined() {
    let c = CompiledSchema::parse(NAMED_GROUP_XSD).unwrap();
    let dfa = c.content_dfa("PurchaseOrderType").unwrap();
    assert!(dfa.accepts(["singAddr", "comment", "items"]));
    assert!(dfa.accepts(["twoAddr", "items"]));
    assert!(!dfa.accepts(["singAddr", "twoAddr", "items"]));
}

#[test]
fn wml_mixed_content_and_enumeration() {
    let c = CompiledSchema::parse(WML_XSD).unwrap();
    let s = c.schema();
    assert!(c.allows_text(&TypeRef::Named("PType".into())));
    assert!(!c.allows_text(&TypeRef::Named("CardType".into())));
    let align = TypeRef::Named("AlignType".into());
    assert!(s.validate_simple_value(&align, "center").is_ok());
    assert!(s.validate_simple_value(&align, "justify").is_err());
    let dfa = c.content_dfa("PType").unwrap();
    assert!(dfa.accepts(["b", "br", "select", "a", "em"]));
    assert!(dfa.accepts([]));
}

#[test]
fn incremental_matcher_reports_expected() {
    let c = po();
    let dfa = c.content_dfa("PurchaseOrderType").unwrap();
    let mut m = dfa.start();
    m.step("shipTo").unwrap();
    m.step("billTo").unwrap();
    assert_eq!(m.expected(), ["comment", "items"]);
    let err = m.step("shipTo").unwrap_err();
    assert_eq!(err.expected, ["comment", "items"]);
}

#[test]
fn bad_schemas_rejected() {
    // dangling type reference
    let bad = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:element name="a" type="Nope"/>
    </xsd:schema>"#;
    assert!(CompiledSchema::parse(bad).is_err());

    // ambiguous content model (UPA violation)
    let upa = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:complexType name="T">
        <xsd:sequence>
          <xsd:element name="a" type="xsd:string" minOccurs="0"/>
          <xsd:element name="a" type="xsd:string"/>
        </xsd:sequence>
      </xsd:complexType>
    </xsd:schema>"#;
    assert!(CompiledSchema::parse(upa).is_err());

    // unsupported feature
    let wild = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:complexType name="T"><xsd:sequence><xsd:any/></xsd:sequence></xsd:complexType>
    </xsd:schema>"#;
    assert!(CompiledSchema::parse(wild).is_err());

    // list simple type
    let list = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:simpleType name="S"><xsd:list itemType="xsd:string"/></xsd:simpleType>
    </xsd:schema>"#;
    assert!(CompiledSchema::parse(list).is_err());

    // not a schema at all
    assert!(CompiledSchema::parse("<html/>").is_err());

    // derivation cycle
    let cycle = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:complexType name="A">
        <xsd:complexContent><xsd:extension base="B"/></xsd:complexContent>
      </xsd:complexType>
      <xsd:complexType name="B">
        <xsd:complexContent><xsd:extension base="A"/></xsd:complexContent>
      </xsd:complexType>
    </xsd:schema>"#;
    assert!(CompiledSchema::parse(cycle).is_err());
}

#[test]
fn choice_po_schemas_compile_and_differ() {
    let a = CompiledSchema::parse(CHOICE_PO_XSD).unwrap();
    let b = CompiledSchema::parse(CHOICE_PO_EVOLVED_XSD).unwrap();
    let da = a.content_dfa("PurchaseOrderType").unwrap();
    let db = b.content_dfa("PurchaseOrderType").unwrap();
    assert!(da.accepts(["singAddr", "items"]));
    assert!(!da.accepts(["multAddr", "items"]));
    assert!(db.accepts(["multAddr", "items"]));
}

#[test]
fn abstract_head_excluded_from_content() {
    let xsd = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:element name="msg" type="xsd:string" abstract="true"/>
      <xsd:element name="textMsg" type="xsd:string" substitutionGroup="msg"/>
      <xsd:complexType name="T">
        <xsd:sequence><xsd:element ref="msg"/></xsd:sequence>
      </xsd:complexType>
    </xsd:schema>"#;
    let c = CompiledSchema::parse(xsd).unwrap();
    let dfa = c.content_dfa("T").unwrap();
    assert!(dfa.accepts(["textMsg"]));
    assert!(!dfa.accepts(["msg"]));
}
