//! Whitespace normalization per the XML Schema `whiteSpace` facet.
//!
//! Simple-type validation (crate `schema`) normalizes lexical values with
//! one of the three modes before applying the remaining facets, exactly as
//! XML Schema Part 2 prescribes.

use std::borrow::Cow;

/// The three values of the `whiteSpace` facet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WhiteSpaceMode {
    /// Keep the value as is (`xsd:string`).
    #[default]
    Preserve,
    /// Replace each tab/CR/LF by a space (`xsd:normalizedString`).
    Replace,
    /// Replace, then collapse runs of spaces and trim (`xsd:token` and all
    /// types derived from it, including numbers and dates).
    Collapse,
}

impl WhiteSpaceMode {
    /// Applies this mode to `value`.
    pub fn apply<'a>(self, value: &'a str) -> Cow<'a, str> {
        match self {
            WhiteSpaceMode::Preserve => Cow::Borrowed(value),
            WhiteSpaceMode::Replace => replace(value),
            WhiteSpaceMode::Collapse => collapse(value),
        }
    }
}

/// `replace` normalization: each `#x9 | #xA | #xD` becomes a space.
pub fn replace(value: &str) -> Cow<'_, str> {
    if !value.contains(['\t', '\n', '\r']) {
        return Cow::Borrowed(value);
    }
    Cow::Owned(
        value
            .chars()
            .map(|c| {
                if matches!(c, '\t' | '\n' | '\r') {
                    ' '
                } else {
                    c
                }
            })
            .collect(),
    )
}

/// `collapse` normalization: `replace`, then collapse space runs and trim.
pub fn collapse(value: &str) -> Cow<'_, str> {
    let needs_work = value.starts_with([' ', '\t', '\n', '\r'])
        || value.ends_with([' ', '\t', '\n', '\r'])
        || value.contains(['\t', '\n', '\r'])
        || value.contains("  ");
    if !needs_work {
        return Cow::Borrowed(value);
    }
    let mut out = String::with_capacity(value.len());
    let mut in_space = true; // leading whitespace is dropped
    for c in value.chars() {
        if matches!(c, ' ' | '\t' | '\n' | '\r') {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            out.push(c);
            in_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserve_is_identity() {
        let v = "  a\tb\n";
        assert_eq!(WhiteSpaceMode::Preserve.apply(v), v);
    }

    #[test]
    fn replace_maps_each_ws_char_to_space() {
        assert_eq!(replace("a\tb\nc\rd"), "a b c d");
        assert_eq!(replace(" a  b "), " a  b ");
        assert!(matches!(replace("plain"), Cow::Borrowed(_)));
    }

    #[test]
    fn collapse_trims_and_collapses() {
        assert_eq!(collapse("  a \t b\n\nc  "), "a b c");
        assert_eq!(collapse(""), "");
        assert_eq!(collapse("   "), "");
        assert_eq!(collapse("already clean"), "already clean");
        assert!(matches!(collapse("already clean"), Cow::Borrowed(_)));
    }

    #[test]
    fn collapse_handles_single_char() {
        assert_eq!(collapse(" x"), "x");
        assert_eq!(collapse("x "), "x");
    }
}
