//! Source positions for diagnostics.
//!
//! Every parser in the workspace (XML, XSD regex, P-XML templates) reports
//! errors in terms of these types so that tooling can render uniform
//! messages.

use std::fmt;

/// A 1-based line/column position plus a byte offset into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number, counted in characters.
    pub column: u32,
    /// 0-based byte offset.
    pub offset: usize,
}

impl Position {
    /// The start of a document.
    pub const START: Position = Position {
        line: 1,
        column: 1,
        offset: 0,
    };

    /// Advances the position over `c`.
    #[inline]
    pub fn advance(&mut self, c: char) {
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }
}

impl Default for Position {
    fn default() -> Self {
        Position::START
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A half-open span `[start, end)` in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Position of the first character.
    pub start: Position,
    /// Position one past the last character.
    pub end: Position,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: Position, end: Position) -> Self {
        Span { start, end }
    }

    /// A zero-width span at `pos`.
    pub fn point(pos: Position) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_tracks_lines_columns_and_bytes() {
        let mut p = Position::START;
        for c in "ab\ncd".chars() {
            p.advance(c);
        }
        assert_eq!(p.line, 2);
        assert_eq!(p.column, 3);
        assert_eq!(p.offset, 5);
    }

    #[test]
    fn advance_counts_multibyte_offsets() {
        let mut p = Position::START;
        p.advance('\u{20AC}');
        assert_eq!(p.offset, 3);
        assert_eq!(p.column, 2);
    }

    #[test]
    fn display_is_line_colon_column() {
        assert_eq!(Position::START.to_string(), "1:1");
    }
}
