//! Foundational XML 1.0 lexical utilities shared by every crate in the
//! workspace: character classes, name validation, escaping, qualified
//! names, whitespace normalization, and source positions.
//!
//! Everything here follows the XML 1.0 (Fifth Edition) and Namespaces in
//! XML 1.0 recommendations closely enough for the document class used by
//! the paper (no DTD-internal-subset processing; the five predefined
//! entities plus character references).
//!
//! This crate deliberately has no dependencies: it is the bottom of the
//! substrate stack described in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chars;
pub mod escape;
pub mod position;
pub mod qname;
pub mod whitespace;

pub use chars::{is_name_char, is_name_start_char, is_xml_char, is_xml_whitespace};
pub use escape::{escape_attribute, escape_text, unescape, UnescapeError};
pub use position::{Position, Span};
pub use qname::{validate_ncname, validate_qname, NameError, QName};
pub use whitespace::{collapse, replace, WhiteSpaceMode};
