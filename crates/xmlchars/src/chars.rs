//! XML 1.0 character classes.
//!
//! The predicates below implement the `Char`, `S`, `NameStartChar` and
//! `NameChar` productions of XML 1.0 (Fifth Edition). They are used by the
//! parser for well-formedness checking and by the schema layer for
//! validating `NCName`/`NMTOKEN` lexical values.

/// Returns `true` if `c` is a legal XML 1.0 `Char`.
///
/// Production \[2\]: `#x9 | #xA | #xD | [#x20-#xD7FF] | [#xE000-#xFFFD] |
/// [#x10000-#x10FFFF]`.
#[inline]
pub fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

/// Returns `true` if `c` is XML whitespace (production \[3\] `S`).
#[inline]
pub fn is_xml_whitespace(c: char) -> bool {
    matches!(c, ' ' | '\t' | '\r' | '\n')
}

/// Returns `true` if `c` may start an XML `Name` (production \[4\]).
#[inline]
pub fn is_name_start_char(c: char) -> bool {
    matches!(c,
        ':' | '_'
        | 'A'..='Z' | 'a'..='z'
        | '\u{C0}'..='\u{D6}' | '\u{D8}'..='\u{F6}' | '\u{F8}'..='\u{2FF}'
        | '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}'
        | '\u{200C}'..='\u{200D}' | '\u{2070}'..='\u{218F}'
        | '\u{2C00}'..='\u{2FEF}' | '\u{3001}'..='\u{D7FF}'
        | '\u{F900}'..='\u{FDCF}' | '\u{FDF0}'..='\u{FFFD}'
        | '\u{10000}'..='\u{EFFFF}')
}

/// Returns `true` if `c` may continue an XML `Name` (production \[4a\]).
#[inline]
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c)
        || matches!(c,
            '-' | '.' | '0'..='9'
            | '\u{B7}' | '\u{300}'..='\u{36F}' | '\u{203F}'..='\u{2040}')
}

/// Returns `true` if `s` is a non-empty XML `Name`.
pub fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) if is_name_start_char(first) => chars.all(is_name_char),
        _ => false,
    }
}

/// Returns `true` if `s` is a non-empty `NMTOKEN` (every char a `NameChar`).
pub fn is_nmtoken(s: &str) -> bool {
    !s.is_empty() && s.chars().all(is_name_char)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_is_exactly_the_four_s_chars() {
        for c in [' ', '\t', '\r', '\n'] {
            assert!(is_xml_whitespace(c));
        }
        assert!(!is_xml_whitespace('\u{A0}'));
        assert!(!is_xml_whitespace('\u{B}'));
    }

    #[test]
    fn control_chars_are_not_xml_chars() {
        assert!(!is_xml_char('\u{0}'));
        assert!(!is_xml_char('\u{8}'));
        assert!(!is_xml_char('\u{B}'));
        assert!(!is_xml_char('\u{1F}'));
        assert!(is_xml_char('\u{9}'));
        assert!(is_xml_char(' '));
    }

    #[test]
    fn surrogate_gap_is_excluded() {
        // chars can't encode surrogates directly; check the boundaries.
        assert!(is_xml_char('\u{D7FF}'));
        assert!(is_xml_char('\u{E000}'));
        assert!(is_xml_char('\u{FFFD}'));
        assert!(!is_xml_char('\u{FFFE}'));
        assert!(!is_xml_char('\u{FFFF}'));
    }

    #[test]
    fn names_accept_colon_and_underscore_starts() {
        assert!(is_name("purchaseOrder"));
        assert!(is_name("_private"));
        assert!(is_name("xsd:element"));
        assert!(is_name("a-b.c1"));
        assert!(!is_name(""));
        assert!(!is_name("1abc"));
        assert!(!is_name("-abc"));
        assert!(!is_name("a b"));
    }

    #[test]
    fn nmtoken_allows_leading_digit_and_dash() {
        assert!(is_nmtoken("007"));
        assert!(is_nmtoken("-x-"));
        assert!(is_nmtoken("US"));
        assert!(!is_nmtoken(""));
        assert!(!is_nmtoken("a b"));
    }

    #[test]
    fn unicode_letters_are_name_chars() {
        assert!(is_name("übermaß"));
        assert!(is_name("数量"));
        assert!(is_name_char('\u{B7}'));
        assert!(!is_name_start_char('\u{B7}'));
    }
}
