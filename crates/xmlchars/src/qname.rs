//! Qualified names and NCName validation per Namespaces in XML 1.0.

use std::fmt;

use crate::chars::{is_name_char, is_name_start_char};

/// An error produced while validating an `NCName` or `QName`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// The name was empty.
    Empty,
    /// The name contained an illegal character at the given byte offset.
    IllegalChar {
        /// The offending character.
        c: char,
        /// Byte offset within the name.
        at: usize,
    },
    /// A `QName` contained more than one colon, or a colon in an `NCName`.
    MisplacedColon,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::Empty => write!(f, "name is empty"),
            NameError::IllegalChar { c, at } => {
                write!(f, "illegal character {c:?} at byte {at} in name")
            }
            NameError::MisplacedColon => write!(f, "misplaced colon in name"),
        }
    }
}

impl std::error::Error for NameError {}

/// Validates that `s` is a legal `NCName` (a `Name` without colons).
pub fn validate_ncname(s: &str) -> Result<(), NameError> {
    if s.is_empty() {
        return Err(NameError::Empty);
    }
    for (i, c) in s.char_indices() {
        if c == ':' {
            return Err(NameError::MisplacedColon);
        }
        let ok = if i == 0 {
            is_name_start_char(c)
        } else {
            is_name_char(c)
        };
        if !ok {
            return Err(NameError::IllegalChar { c, at: i });
        }
    }
    Ok(())
}

/// Validates that `s` is a legal `QName` (`prefix:local` or `local`) and
/// returns the `(prefix, local)` split.
pub fn validate_qname(s: &str) -> Result<(Option<&str>, &str), NameError> {
    match s.find(':') {
        None => {
            validate_ncname(s)?;
            Ok((None, s))
        }
        Some(i) => {
            let (prefix, local) = (&s[..i], &s[i + 1..]);
            validate_ncname(prefix)?;
            validate_ncname(local)?;
            Ok((Some(prefix), local))
        }
    }
}

/// An owned qualified name: optional prefix plus local part.
///
/// The workspace resolves prefixes at parse time, so most components carry
/// only local names; `QName` is used where the prefix must be preserved
/// (serialization, schema references like `xsd:string`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QName {
    /// Namespace prefix, if any.
    pub prefix: Option<String>,
    /// Local part.
    pub local: String,
}

impl QName {
    /// Creates an unprefixed name.
    pub fn local(local: impl Into<String>) -> Self {
        QName {
            prefix: None,
            local: local.into(),
        }
    }

    /// Creates a prefixed name.
    pub fn prefixed(prefix: impl Into<String>, local: impl Into<String>) -> Self {
        QName {
            prefix: Some(prefix.into()),
            local: local.into(),
        }
    }

    /// Parses and validates a lexical `QName`.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let (prefix, local) = validate_qname(s)?;
        Ok(QName {
            prefix: prefix.map(str::to_string),
            local: local.to_string(),
        })
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => write!(f, "{}", self.local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncname_rejects_colon_and_empty() {
        assert_eq!(validate_ncname(""), Err(NameError::Empty));
        assert_eq!(validate_ncname("a:b"), Err(NameError::MisplacedColon));
        assert!(validate_ncname("purchaseOrder").is_ok());
    }

    #[test]
    fn qname_splits_prefix() {
        assert_eq!(
            validate_qname("xsd:string").unwrap(),
            (Some("xsd"), "string")
        );
        assert_eq!(validate_qname("comment").unwrap(), (None, "comment"));
        assert!(validate_qname("a:b:c").is_err());
        assert!(validate_qname(":b").is_err());
        assert!(validate_qname("a:").is_err());
    }

    #[test]
    fn qname_display_roundtrips() {
        let q = QName::parse("xsd:element").unwrap();
        assert_eq!(q.to_string(), "xsd:element");
        let q = QName::parse("items").unwrap();
        assert_eq!(q.to_string(), "items");
    }

    #[test]
    fn illegal_char_reports_offset() {
        match validate_ncname("ab cd") {
            Err(NameError::IllegalChar { c: ' ', at: 2 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
