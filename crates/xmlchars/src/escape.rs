//! Escaping and unescaping of character data and attribute values.
//!
//! Serialization escapes the five predefined entities where required;
//! parsing resolves them together with decimal and hexadecimal character
//! references (`&#10;`, `&#x2019;`).

use std::borrow::Cow;
use std::fmt;

use crate::chars::is_xml_char;

/// Escapes `text` for use as element character data.
///
/// Replaces `&`, `<` and `>` (the latter for `]]>` safety and symmetry
/// with common serializers), and `\r` as `&#13;` — a literal carriage
/// return cannot survive a conforming parser's XML 1.0 §2.11 end-of-line
/// normalization, so round-tripping serializers must write the character
/// reference. Returns a borrowed value when no escaping is needed,
/// avoiding allocation on the fast path.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, false)
}

/// Escapes `value` for use inside a double-quoted attribute value.
///
/// Replaces `&`, `<`, `>`, `"` and the whitespace characters that would
/// otherwise be normalized away by attribute-value normalization.
pub fn escape_attribute(value: &str) -> Cow<'_, str> {
    escape_with(value, true)
}

fn needs_escape(c: char, attr: bool) -> bool {
    match c {
        '&' | '<' | '>' | '\r' => true,
        '"' | '\t' | '\n' if attr => true,
        _ => false,
    }
}

fn escape_with(text: &str, attr: bool) -> Cow<'_, str> {
    let first = match text.char_indices().find(|&(_, c)| needs_escape(c, attr)) {
        Some((i, _)) => i,
        None => return Cow::Borrowed(text),
    };
    let mut out = String::with_capacity(text.len() + 8);
    out.push_str(&text[..first]);
    for c in text[first..].chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\t' if attr => out.push_str("&#9;"),
            '\n' if attr => out.push_str("&#10;"),
            '\r' => out.push_str("&#13;"),
            c => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// An error produced while resolving entity or character references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnescapeError {
    /// `&` was not followed by a terminated reference (`;` missing).
    UnterminatedReference {
        /// Byte offset of the `&` in the input.
        at: usize,
    },
    /// An entity name other than the five predefined ones was used.
    UnknownEntity {
        /// The entity name between `&` and `;`.
        name: String,
        /// Byte offset of the `&` in the input.
        at: usize,
    },
    /// A character reference did not parse as a number or denotes a
    /// code point that is not a legal XML `Char`.
    InvalidCharRef {
        /// The reference text between `&#` and `;`.
        text: String,
        /// Byte offset of the `&` in the input.
        at: usize,
    },
}

impl fmt::Display for UnescapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnescapeError::UnterminatedReference { at } => {
                write!(f, "unterminated entity reference at byte {at}")
            }
            UnescapeError::UnknownEntity { name, at } => {
                write!(f, "unknown entity \"&{name};\" at byte {at}")
            }
            UnescapeError::InvalidCharRef { text, at } => {
                write!(f, "invalid character reference \"&#{text};\" at byte {at}")
            }
        }
    }
}

impl std::error::Error for UnescapeError {}

/// Resolves the predefined entities and character references in `text`.
///
/// Returns a borrowed value when the input contains no `&`.
pub fn unescape(text: &str) -> Result<Cow<'_, str>, UnescapeError> {
    let first = match text.find('&') {
        Some(i) => i,
        None => return Ok(Cow::Borrowed(text)),
    };
    let mut out = String::with_capacity(text.len());
    out.push_str(&text[..first]);
    let mut rest = &text[first..];
    let mut offset = first;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let at = offset + amp;
        let after = &rest[amp + 1..];
        let semi = after
            .find(';')
            .ok_or(UnescapeError::UnterminatedReference { at })?;
        let name = &after[..semi];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with('#') => {
                let digits = &name[1..];
                let value = if let Some(hex) = digits.strip_prefix('x') {
                    u32::from_str_radix(hex, 16)
                } else {
                    digits.parse::<u32>()
                };
                let c = value
                    .ok()
                    .and_then(char::from_u32)
                    .filter(|&c| is_xml_char(c))
                    .ok_or_else(|| UnescapeError::InvalidCharRef {
                        text: digits.to_string(),
                        at,
                    })?;
                out.push(c);
            }
            _ => {
                return Err(UnescapeError::UnknownEntity {
                    name: name.to_string(),
                    at,
                })
            }
        }
        rest = &after[semi + 1..];
        offset = at + 1 + semi + 1;
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_borrows() {
        assert!(matches!(escape_text("hello world"), Cow::Borrowed(_)));
        assert!(matches!(unescape("hello world").unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn escapes_markup_characters() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(escape_attribute("say \"hi\""), "say &quot;hi&quot;");
        assert_eq!(escape_attribute("tab\there"), "tab&#9;here");
    }

    #[test]
    fn text_escaping_keeps_quotes() {
        assert_eq!(escape_text("\"quoted\""), "\"quoted\"");
    }

    #[test]
    fn unescapes_predefined_entities() {
        assert_eq!(
            unescape("a &lt; b &amp; c &gt; d &quot;q&quot; &apos;a&apos;").unwrap(),
            "a < b & c > d \"q\" 'a'"
        );
    }

    #[test]
    fn unescapes_char_refs() {
        assert_eq!(unescape("&#65;&#x42;&#x43;").unwrap(), "ABC");
        assert_eq!(unescape("&#x20AC;").unwrap(), "\u{20AC}");
    }

    #[test]
    fn rejects_bad_references() {
        assert!(matches!(
            unescape("a &bogus; b"),
            Err(UnescapeError::UnknownEntity { .. })
        ));
        assert!(matches!(
            unescape("a &amp"),
            Err(UnescapeError::UnterminatedReference { .. })
        ));
        assert!(matches!(
            unescape("&#xZZ;"),
            Err(UnescapeError::InvalidCharRef { .. })
        ));
        // #x0 is not an XML Char.
        assert!(matches!(
            unescape("&#0;"),
            Err(UnescapeError::InvalidCharRef { .. })
        ));
    }

    #[test]
    fn roundtrip_escape_unescape() {
        let original = "mixed <tags> & \"quotes\" with 'apostrophes' and \u{2019}";
        assert_eq!(unescape(&escape_text(original)).unwrap(), original);
        assert_eq!(unescape(&escape_attribute(original)).unwrap(), original);
    }

    #[test]
    fn error_positions_point_at_ampersand() {
        match unescape("abc&bogus;") {
            Err(UnescapeError::UnknownEntity { at, .. }) => assert_eq!(at, 3),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
