//! `vdomgen` — generate V-DOM interfaces from an XML Schema.
//!
//! Usage:
//! ```text
//! vdomgen <schema.xsd> [--mode idl|union-idl|rust] [--out FILE]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut mode = "rust".to_string();
    let mut out_path = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                i += 1;
                mode = args.get(i).cloned().unwrap_or_default();
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).cloned();
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("usage: vdomgen <schema.xsd> [--mode idl|union-idl|rust] [--out FILE]");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let schema = match schema::parse_schema(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("schema error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = schema.check() {
        eprintln!("schema error: {e}");
        return ExitCode::FAILURE;
    }
    let model = match normalize::build_model(&schema) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("model error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let output = match mode.as_str() {
        "idl" => codegen::render_idl(&model),
        "union-idl" => codegen::render_union_idl(&model),
        "rust" => codegen::render_rust(
            &model,
            &codegen::RustGenOptions {
                schema_label: path.clone(),
            },
        ),
        other => {
            eprintln!("unknown mode {other:?} (expected idl, union-idl or rust)");
            return ExitCode::FAILURE;
        }
    };
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, output) {
                eprintln!("cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{output}"),
    }
    ExitCode::SUCCESS
}
