//! IDL rendering of the interface model — the notation the paper uses in
//! Figs. 5–6 and Appendix A ("Analogous to Dom we note the interface in
//! IDL stressing the independence of a programming language").
//!
//! Two modes:
//!
//! * [`render_idl`] — the paper's final design: choice groups as empty
//!   super-interfaces with alternatives inheriting from them (Fig. 6,
//!   Appendix A);
//! * [`render_union_idl`] — the rejected first design: choice groups as
//!   IDL `union` types with a switch enum (Fig. 5), kept for the
//!   schema-evolution ablation (experiment B7).

use std::fmt::Write as _;

use normalize::{FieldType, Interface, InterfaceKind, InterfaceModel};

/// Renders the whole model in the paper's inheritance style.
pub fn render_idl(model: &InterfaceModel) -> String {
    let mut out = String::new();
    for iface in model.top_level() {
        render_interface(model, iface, 0, false, &mut out);
        out.push('\n');
    }
    out
}

/// Renders the whole model in the rejected union style (Fig. 5): choice
/// groups become `typedef union … switch(enum …)` declarations inside the
/// owning interface and the choice field uses the union type.
pub fn render_union_idl(model: &InterfaceModel) -> String {
    let mut out = String::new();
    for iface in model.top_level() {
        render_interface(model, iface, 0, true, &mut out);
        out.push('\n');
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_interface(
    model: &InterfaceModel,
    iface: &Interface,
    depth: usize,
    union_mode: bool,
    out: &mut String,
) {
    match iface.kind {
        InterfaceKind::SimpleRestriction => {
            indent(out, depth);
            let _ = writeln!(
                out,
                "interface {}: {} {{ ... }}",
                iface.name,
                iface.extends.join(", ")
            );
            return;
        }
        InterfaceKind::Group if union_mode && !iface.choice_alternatives.is_empty() => {
            // rendered inline at the owner as a union typedef
            return;
        }
        _ => {}
    }
    indent(out, depth);
    if iface.is_abstract {
        out.push_str("abstract ");
    }
    let _ = write!(out, "interface {}", iface.name);
    // in union mode choice groups are typedefs, so membership edges vanish
    let extends: Vec<&String> = iface
        .extends
        .iter()
        .filter(|e| {
            !union_mode
                || !model
                    .interface(e)
                    .map(|i| !i.choice_alternatives.is_empty())
                    .unwrap_or(false)
        })
        .collect();
    if !extends.is_empty() {
        let joined = extends
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(out, ": {joined}");
    }
    if iface.fields.is_empty() && model.nested_in(&iface.name).next().is_none() {
        out.push_str(" {}\n");
        return;
    }
    out.push_str(" {\n");
    // nested interfaces first (Appendix A layout)
    for nested in model.nested_in(&iface.name) {
        if union_mode && !nested.choice_alternatives.is_empty() {
            render_union_typedef(model, nested, depth + 1, out);
        } else {
            render_interface(model, nested, depth + 1, union_mode, out);
        }
    }
    if model.nested_in(&iface.name).next().is_some() && !iface.fields.is_empty() {
        out.push('\n');
    }
    for field in &iface.fields {
        // in union mode the choice field's type is the union typedef
        let ty = match (&field.ty, union_mode) {
            (FieldType::Interface(n), true) => match model.interface(n) {
                Some(g) if !g.choice_alternatives.is_empty() => {
                    format!("{}Union", g.name.trim_end_matches("Group"))
                }
                _ => field.ty.idl(),
            },
            _ => field.ty.idl(),
        };
        indent(out, depth + 1);
        let _ = writeln!(out, "attribute {} {};", ty, field.name);
    }
    indent(out, depth);
    out.push_str("}\n");
}

/// The Fig. 5 union rendering of a choice group.
fn render_union_typedef(model: &InterfaceModel, group: &Interface, depth: usize, out: &mut String) {
    let base = group.name.trim_end_matches("Group");
    let alts: Vec<(String, String)> = group
        .choice_alternatives
        .iter()
        .map(|alt| {
            let tag = model
                .interface(alt)
                .map(|i| i.xml_name.clone())
                .unwrap_or_else(|| alt.clone());
            (tag, alt.clone())
        })
        .collect();
    let tags: Vec<&str> = alts.iter().map(|(t, _)| t.as_str()).collect();
    indent(out, depth);
    let _ = writeln!(out, "typedef union {base}Union");
    indent(out, depth + 1);
    let _ = writeln!(out, "switch (enum {base}ST({})) {{", tags.join(","));
    for (tag, iface) in &alts {
        indent(out, depth + 2);
        let _ = writeln!(out, "case {tag}: {iface} {tag};");
    }
    indent(out, depth + 1);
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use normalize::build_model;
    use schema::corpus::{CHOICE_PO_XSD, PURCHASE_ORDER_XSD};
    use schema::parse_schema;

    fn choice_model() -> InterfaceModel {
        build_model(&parse_schema(CHOICE_PO_XSD).unwrap()).unwrap()
    }

    #[test]
    fn inheritance_idl_matches_fig6_shape() {
        let idl = render_idl(&choice_model());
        // Fig. 6 essentials
        assert!(idl.contains("interface PurchaseOrderTypeCC1Group"));
        assert!(idl.contains("interface singAddrElement: PurchaseOrderTypeCC1Group"));
        assert!(idl.contains("interface twoAddrElement: PurchaseOrderTypeCC1Group"));
        assert!(idl.contains("attribute PurchaseOrderTypeCC1Group PurchaseOrderTypeCC1;"));
        assert!(idl.contains("attribute commentElement comment;"));
        assert!(idl.contains("attribute itemsElement items;"));
    }

    #[test]
    fn union_idl_matches_fig5_shape() {
        let idl = render_union_idl(&choice_model());
        assert!(idl.contains("typedef union PurchaseOrderTypeCC1Union"));
        assert!(idl.contains("switch (enum PurchaseOrderTypeCC1ST(singAddr,twoAddr))"));
        assert!(idl.contains("case singAddr: singAddrElement singAddr;"));
        assert!(idl.contains("case twoAddr: twoAddrElement twoAddr;"));
        assert!(idl.contains("attribute PurchaseOrderTypeCC1Union PurchaseOrderTypeCC1;"));
        // the inheritance interfaces are not emitted in union mode
        assert!(!idl.contains("interface singAddrElement: PurchaseOrderTypeCC1Group"));
    }

    #[test]
    fn appendix_a_interfaces_render() {
        let model = build_model(&parse_schema(PURCHASE_ORDER_XSD).unwrap()).unwrap();
        let idl = render_idl(&model);
        assert!(idl.contains("interface purchaseOrderElement {"));
        assert!(idl.contains("attribute PurchaseOrderTypeType content;"));
        assert!(idl.contains("interface commentElement {"));
        assert!(idl.contains("attribute string content;"));
        assert!(idl.contains("interface SKU: string { ... }"));
        assert!(idl.contains("attribute list<itemElement> item;"));
        assert!(idl.contains("attribute NMToken country;"));
        assert!(idl.contains("attribute Date orderDate;"));
    }
}
