//! Rust rendering of the interface model — the compile-time guarantee in
//! this reproduction.
//!
//! Where the paper generates Java/IDL interfaces and relies on the Java
//! compiler, we generate a self-contained Rust module (std only): one
//! struct per complex type, one enum per choice group, `Vec` for lists,
//! `Option` for optional particles. The Rust compiler then rejects, at
//! compile time, exactly the misconstructions the paper targets — wrong
//! child types, missing required children/attributes, choice violations,
//! wrong ordering (field order drives serialization).
//!
//! Residual runtime checks, as in the paper (Sect. 3): occurrence counts
//! beyond 0/1/unbounded, and restriction facets — both enforced when the
//! serialized output is validated or when the tree is replayed through
//! `vdom`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use normalize::{FieldType, Interface, InterfaceKind, InterfaceModel};
use schema::BuiltinType;

/// How a field's value is written during serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// A primitive rendered as text inside `<tag>…</tag>`.
    PrimText(BuiltinType),
    /// A simple-restriction newtype rendered as text.
    SimpleNewtype(String),
    /// A complex-type struct: `value.write_xml("tag", out)`.
    Complex(String),
    /// A choice enum: `value.write_xml(out)` (the variant picks the tag).
    ChoiceEnum(String),
    /// A sequence-group struct: writes its own fields, no surrounding tag.
    GroupStruct(String),
}

impl Repr {
    fn rust_type(&self) -> String {
        match self {
            Repr::PrimText(b) => normalize::model::rust_primitive(*b).to_string(),
            Repr::SimpleNewtype(n)
            | Repr::Complex(n)
            | Repr::ChoiceEnum(n)
            | Repr::GroupStruct(n) => rust_type_name(n),
        }
    }
}

/// Converts an interface name to a Rust type name (already CamelCase by
/// construction; this just guards against leading lowercase from element
/// interfaces, which are not emitted as types).
fn rust_type_name(interface: &str) -> String {
    let mut chars = interface.chars();
    match chars.next() {
        Some(f) => f.to_uppercase().chain(chars).collect(),
        None => String::new(),
    }
}

/// Converts an XML name to a Rust field identifier (`shipTo` → `ship_to`,
/// `USPrice` → `us_price`).
pub fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    let mut prev_lower = false;
    for c in name.chars() {
        if c.is_uppercase() {
            if prev_lower {
                out.push('_');
            }
            for l in c.to_lowercase() {
                out.push(l);
            }
            prev_lower = false;
        } else if c == '-' || c == '.' {
            out.push('_');
            prev_lower = false;
        } else {
            out.push(c);
            prev_lower = c.is_lowercase() || c.is_ascii_digit();
        }
    }
    match out.as_str() {
        "type" | "ref" | "use" | "in" | "for" | "match" | "self" | "mod" | "fn" | "let"
        | "loop" | "move" | "mut" | "pub" | "return" | "static" | "struct" | "trait" | "where" => {
            format!("{out}_")
        }
        _ => out,
    }
}

/// Converts an XML name to a Rust enum variant (`singAddr` → `SingAddr`).
fn variant_case(name: &str) -> String {
    rust_type_name(name)
}

/// Generator options.
#[derive(Debug, Clone, Default)]
pub struct RustGenOptions {
    /// Module doc header line (e.g. the schema's file name).
    pub schema_label: String,
}

/// Renders the model as a self-contained Rust module.
pub fn render_rust(model: &InterfaceModel, options: &RustGenOptions) -> String {
    let g = Generator { model };
    g.render(options)
}

struct Generator<'a> {
    model: &'a InterfaceModel,
}

impl<'a> Generator<'a> {
    fn render(&self, options: &RustGenOptions) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "// Generated V-DOM types for schema {} — DO NOT EDIT.\n\
             // One struct per complex type, one enum per choice group; field\n\
             // order drives serialization, so any tree you can express here\n\
             // serializes to a schema-valid document (occurrence counts and\n\
             // restriction facets remain runtime checks, as in the paper).\n",
            if options.schema_label.is_empty() {
                "(unnamed)"
            } else {
                &options.schema_label
            }
        );
        out.push_str("// Include inside a module, e.g. `#[allow(dead_code)] mod generated {{ include!(…); }}`.\n\n");
        out.push_str(ESCAPE_HELPERS);
        out.push('\n');

        // simple restrictions first (they appear in field types)
        for iface in &self.model.interfaces {
            if iface.kind == InterfaceKind::SimpleRestriction {
                self.render_simple(iface, &mut out);
            }
        }
        // choice enums
        for iface in &self.model.interfaces {
            if iface.kind == InterfaceKind::Group && !iface.choice_alternatives.is_empty() {
                self.render_choice_enum(iface, &mut out);
            }
        }
        // sequence-group structs
        for iface in &self.model.interfaces {
            if iface.kind == InterfaceKind::Group && iface.choice_alternatives.is_empty() {
                self.render_struct(iface, true, &mut out);
            }
        }
        // complex types
        for iface in &self.model.interfaces {
            if iface.kind == InterfaceKind::Type {
                self.render_struct(iface, false, &mut out);
            }
        }
        // one root serializer per global element with complex content
        for iface in self.model.top_level() {
            if iface.kind == InterfaceKind::Element {
                self.render_root_fn(iface, &mut out);
            }
        }
        out
    }

    fn render_simple(&self, iface: &Interface, out: &mut String) {
        let name = rust_type_name(&iface.name);
        let _ = writeln!(
            out,
            "/// Restriction of `{}` (facets checked at validation time).\n\
             #[derive(Debug, Clone, PartialEq)]\n\
             pub struct {name}(pub String);\n\n\
             impl {name} {{\n\
             \x20   /// Wraps a lexical value (facets are runtime checks).\n\
             \x20   pub fn new(value: impl Into<String>) -> Self {{ {name}(value.into()) }}\n\
             }}\n",
            iface.extends.join(", ")
        );
    }

    /// The representation of a field-type reference.
    fn repr_of(&self, ty: &FieldType) -> Repr {
        match ty {
            FieldType::Primitive(b) => Repr::PrimText(*b),
            FieldType::List(inner) => self.repr_of(inner),
            FieldType::Interface(n) => {
                let iface = match self.model.interface(n) {
                    Some(i) => i,
                    None => return Repr::Complex(n.clone()),
                };
                match iface.kind {
                    InterfaceKind::SimpleRestriction => Repr::SimpleNewtype(n.clone()),
                    InterfaceKind::Element => {
                        // flatten the element wrapper to its content type
                        match iface.fields.first().map(|f| &f.ty) {
                            Some(FieldType::Primitive(b)) => Repr::PrimText(*b),
                            Some(FieldType::Interface(c)) => {
                                match self.model.interface(c).map(|i| i.kind) {
                                    Some(InterfaceKind::SimpleRestriction) => {
                                        Repr::SimpleNewtype(c.clone())
                                    }
                                    _ => Repr::Complex(c.clone()),
                                }
                            }
                            _ => Repr::PrimText(BuiltinType::String),
                        }
                    }
                    InterfaceKind::Group if !iface.choice_alternatives.is_empty() => {
                        Repr::ChoiceEnum(n.clone())
                    }
                    InterfaceKind::Group => Repr::GroupStruct(n.clone()),
                    InterfaceKind::Type => Repr::Complex(n.clone()),
                }
            }
        }
    }

    /// The tag an element field serializes under.
    fn tag_of(&self, ty: &FieldType, field_name: &str) -> String {
        match ty {
            FieldType::Interface(n) => self
                .model
                .interface(n)
                .filter(|i| i.kind == InterfaceKind::Element)
                .map(|i| i.xml_name.clone())
                .unwrap_or_else(|| field_name.to_string()),
            FieldType::List(inner) => self.tag_of(inner, field_name),
            FieldType::Primitive(_) => field_name.to_string(),
        }
    }

    /// All fields of a type, with extension bases flattened (base fields
    /// first, matching `xsd:extension` content order).
    fn merged_fields<'b>(&'b self, iface: &'b Interface) -> Vec<&'b normalize::Field> {
        let mut chain = vec![iface];
        let mut cur = iface;
        while let Some(base_name) = cur.extends.first() {
            match self.model.interface(base_name) {
                Some(base) if base.kind == InterfaceKind::Type => {
                    chain.push(base);
                    cur = base;
                }
                _ => break,
            }
        }
        let mut fields: Vec<&normalize::Field> = Vec::new();
        let mut attrs: BTreeMap<&str, &normalize::Field> = BTreeMap::new();
        for level in chain.iter().rev() {
            for f in &level.fields {
                if f.from_attribute {
                    attrs.insert(f.name.as_str(), f); // derived overrides base
                } else {
                    fields.push(f);
                }
            }
        }
        fields.extend(attrs.into_values());
        fields
    }

    fn render_struct(&self, iface: &Interface, is_group: bool, out: &mut String) {
        let name = rust_type_name(&iface.name);
        let fields = self.merged_fields(iface);
        let _ = writeln!(
            out,
            "/// Generated from {} `{}`.",
            if is_group {
                "model group"
            } else {
                "complex type"
            },
            iface.xml_name
        );
        let _ = writeln!(out, "#[derive(Debug, Clone, PartialEq)]");
        let _ = writeln!(out, "pub struct {name} {{");
        for f in &fields {
            let repr = self.repr_of(&f.ty);
            let base = repr.rust_type();
            let ty = if matches!(f.ty, FieldType::List(_)) {
                format!("Vec<{base}>")
            } else if f.optional {
                format!("Option<{base}>")
            } else {
                base
            };
            let _ = writeln!(out, "    pub {}: {ty},", snake_case(&f.name));
        }
        let _ = writeln!(out, "}}\n");

        // serializer
        let _ = writeln!(out, "impl {name} {{");
        if is_group {
            let _ = writeln!(
                out,
                "    /// Writes this group's content (no surrounding tag)."
            );
            let _ = writeln!(out, "    pub fn write_xml(&self, out: &mut String) {{");
        } else {
            let _ = writeln!(
                out,
                "    /// Writes `<tag …>content</tag>` for an element of this type."
            );
            let _ = writeln!(
                out,
                "    pub fn write_xml(&self, tag: &str, out: &mut String) {{"
            );
            out.push_str("        out.push('<');\n        out.push_str(tag);\n");
            for f in &fields {
                if !f.from_attribute {
                    continue;
                }
                let id = snake_case(&f.name);
                let xml = &f.name;
                let value_expr = match self.repr_of(&f.ty) {
                    Repr::PrimText(b) => prim_to_str(b, "v"),
                    Repr::SimpleNewtype(_) => "v.0.clone()".to_string(),
                    _ => "String::new()".to_string(),
                };
                if f.optional {
                    let _ = writeln!(
                        out,
                        "        if let Some(v) = &self.{id} {{\n            \
                         out.push_str(\" {xml}=\\\"\");\n            \
                         out.push_str(&escape_attr(&{value_expr}));\n            \
                         out.push('\"');\n        }}"
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "        {{\n            let v = &self.{id};\n            \
                         out.push_str(\" {xml}=\\\"\");\n            \
                         out.push_str(&escape_attr(&{value_expr}));\n            \
                         out.push('\"');\n        }}"
                    );
                }
            }
            // content is built separately so empty elements self-close
            let has_content_fields = fields.iter().any(|f| !f.from_attribute);
            if has_content_fields {
                out.push_str("        let mut content = String::new();\n");
            } else {
                out.push_str("        let content = String::new();\n");
            }
        }
        // groups write into `out` directly; element types into `content`
        let sink = if is_group { "out" } else { "&mut content" };
        let sink_name = if is_group { "out" } else { "content" };
        for f in &fields {
            if f.from_attribute {
                continue;
            }
            let id = snake_case(&f.name);
            let repr = self.repr_of(&f.ty);
            let tag = self.tag_of(&f.ty, &f.name);
            let write_one = |var: &str| -> String {
                if f.char_content {
                    // character content: raw escaped text, no tags
                    return match &repr {
                        Repr::SimpleNewtype(_) => {
                            format!("{sink_name}.push_str(&escape_text(&{var}.0));")
                        }
                        Repr::PrimText(b) => format!(
                            "{sink_name}.push_str(&escape_text(&{}));",
                            prim_to_str(*b, var)
                        ),
                        _ => format!(
                            "{sink_name}.push_str(&escape_text(&String::new())); let _ = {var};"
                        ),
                    };
                }
                match &repr {
                    Repr::PrimText(b) => format!(
                        "{sink_name}.push_str(\"<{tag}>\"); {sink_name}.push_str(&escape_text(&{})); {sink_name}.push_str(\"</{tag}>\");",
                        prim_to_str(*b, var)
                    ),
                    Repr::SimpleNewtype(_) => format!(
                        "{sink_name}.push_str(\"<{tag}>\"); {sink_name}.push_str(&escape_text(&{var}.0)); {sink_name}.push_str(\"</{tag}>\");"
                    ),
                    Repr::Complex(_) => format!("{var}.write_xml(\"{tag}\", {sink});"),
                    Repr::ChoiceEnum(_) | Repr::GroupStruct(_) => {
                        format!("{var}.write_xml({sink});")
                    }
                }
            };
            if matches!(f.ty, FieldType::List(_)) {
                let _ = writeln!(out, "        for v in &self.{id} {{ {} }}", write_one("v"));
            } else if f.optional {
                let _ = writeln!(
                    out,
                    "        if let Some(v) = &self.{id} {{ {} }}",
                    write_one("v")
                );
            } else {
                let _ = writeln!(out, "        {{ let v = &self.{id}; {} }}", write_one("v"));
            }
        }
        if !is_group {
            out.push_str(
                "        if content.is_empty() {\n            \
                 out.push_str(\"/>\");\n        } else {\n            \
                 out.push('>');\n            out.push_str(&content);\n            \
                 out.push_str(\"</\");\n            out.push_str(tag);\n            \
                 out.push('>');\n        }\n",
            );
        }
        out.push_str("    }\n}\n\n");
    }

    fn render_choice_enum(&self, iface: &Interface, out: &mut String) {
        let name = rust_type_name(&iface.name);
        let alts: Vec<(String, String, Repr)> = iface
            .choice_alternatives
            .iter()
            .filter_map(|alt| {
                let el = self.model.interface(alt)?;
                let tag = el.xml_name.clone();
                let repr = self.repr_of(&FieldType::Interface(alt.clone()));
                Some((variant_case(&tag), tag, repr))
            })
            .collect();
        let _ = writeln!(
            out,
            "/// Choice group `{}` — exactly one alternative (Fig. 6's\n\
             /// inheritance hierarchy, rendered as a Rust enum).",
            iface.xml_name
        );
        let _ = writeln!(out, "#[derive(Debug, Clone, PartialEq)]");
        let _ = writeln!(out, "pub enum {name} {{");
        for (variant, _tag, repr) in &alts {
            let _ = writeln!(out, "    {variant}({}),", repr.rust_type());
        }
        let _ = writeln!(out, "}}\n");
        let _ = writeln!(out, "impl {name} {{");
        let _ = writeln!(
            out,
            "    /// Writes the chosen alternative under its own tag."
        );
        let _ = writeln!(out, "    pub fn write_xml(&self, out: &mut String) {{");
        let _ = writeln!(out, "        match self {{");
        for (variant, tag, repr) in &alts {
            let body = match repr {
                Repr::PrimText(b) => format!(
                    "{{ out.push_str(\"<{tag}>\"); out.push_str(&escape_text(&{})); out.push_str(\"</{tag}>\"); }}",
                    prim_to_str(*b, "v")
                ),
                Repr::SimpleNewtype(_) => format!(
                    "{{ out.push_str(\"<{tag}>\"); out.push_str(&escape_text(&v.0)); out.push_str(\"</{tag}>\"); }}"
                ),
                Repr::Complex(_) => format!("v.write_xml(\"{tag}\", out),"),
                Repr::ChoiceEnum(_) | Repr::GroupStruct(_) => "v.write_xml(out),".to_string(),
            };
            let _ = writeln!(out, "            {name}::{variant}(v) => {body}");
        }
        out.push_str("        }\n    }\n}\n\n");
    }

    fn render_root_fn(&self, iface: &Interface, out: &mut String) {
        let tag = &iface.xml_name;
        let fn_name = format!("{}_to_xml", snake_case(tag));
        let content = iface.fields.first().map(|f| self.repr_of(&f.ty));
        match content {
            Some(Repr::Complex(_)) => {
                let ty = content.unwrap().rust_type();
                let _ = writeln!(
                    out,
                    "/// Serializes a complete `<{tag}>` document.\n\
                     pub fn {fn_name}(value: &{ty}) -> String {{\n    \
                     let mut out = String::new();\n    \
                     value.write_xml(\"{tag}\", &mut out);\n    out\n}}\n"
                );
            }
            Some(Repr::PrimText(b)) => {
                // take &str rather than &String for string-typed roots
                let (param_ty, value_expr) = if normalize::model::rust_primitive(b) == "String" {
                    ("str".to_string(), "value".to_string())
                } else {
                    (
                        normalize::model::rust_primitive(b).to_string(),
                        format!("&{}", prim_to_str(b, "value")),
                    )
                };
                let _ = writeln!(
                    out,
                    "/// Serializes a complete `<{tag}>` document.\n\
                     pub fn {fn_name}(value: &{param_ty}) -> String {{\n    \
                     format!(\"<{tag}>{{}}</{tag}>\", escape_text({value_expr}))\n}}\n"
                );
            }
            Some(Repr::SimpleNewtype(n)) => {
                let _ = writeln!(
                    out,
                    "/// Serializes a complete `<{tag}>` document.\n\
                     pub fn {fn_name}(value: &{}) -> String {{\n    \
                     format!(\"<{tag}>{{}}</{tag}>\", escape_text(&value.0))\n}}\n",
                    rust_type_name(&n)
                );
            }
            _ => {}
        }
    }
}

fn prim_to_str(b: BuiltinType, var: &str) -> String {
    match normalize::model::rust_primitive(b) {
        "String" => format!("{var}.clone()"),
        _ => format!("{var}.to_string()"),
    }
}

const ESCAPE_HELPERS: &str = r#"/// Escapes character data.
fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (double-quoted).
fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use normalize::build_model;
    use schema::corpus::{CHOICE_PO_XSD, PURCHASE_ORDER_XSD};
    use schema::parse_schema;

    #[test]
    fn snake_case_conversion() {
        assert_eq!(snake_case("shipTo"), "ship_to");
        assert_eq!(snake_case("USPrice"), "usprice");
        assert_eq!(snake_case("orderDate"), "order_date");
        assert_eq!(snake_case("type"), "type_");
        assert_eq!(snake_case("productName"), "product_name");
    }

    #[test]
    fn purchase_order_module_contains_expected_items() {
        let model = build_model(&parse_schema(PURCHASE_ORDER_XSD).unwrap()).unwrap();
        let code = render_rust(&model, &RustGenOptions::default());
        assert!(code.contains("pub struct PurchaseOrderTypeType {"));
        assert!(code.contains("pub ship_to: USAddressType,"));
        assert!(code.contains("pub comment: Option<String>,"));
        assert!(code.contains("pub item: Vec<ItemTypeType>,"));
        assert!(code.contains("pub struct SKU(pub String);"));
        assert!(code.contains("pub part_num: SKU,"));
        assert!(code.contains("pub fn purchase_order_to_xml"));
    }

    #[test]
    fn choice_schema_yields_enum() {
        let model = build_model(&parse_schema(CHOICE_PO_XSD).unwrap()).unwrap();
        let code = render_rust(&model, &RustGenOptions::default());
        assert!(code.contains("pub enum PurchaseOrderTypeCC1Group {"));
        assert!(code.contains("SingAddr(USAddressType),"));
        assert!(code.contains("TwoAddr(TwoAddressType),"));
    }

    #[test]
    fn generation_is_deterministic() {
        let model = build_model(&parse_schema(PURCHASE_ORDER_XSD).unwrap()).unwrap();
        let a = render_rust(&model, &RustGenOptions::default());
        let b = render_rust(&model, &RustGenOptions::default());
        assert_eq!(a, b);
    }
}
