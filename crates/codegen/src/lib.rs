//! The V-DOM interface generator (paper Sect. 3 + Fig. 9's generator
//! half): renders the `normalize` interface model as
//!
//! * **IDL** — the paper's own notation, reproducing Fig. 6/Appendix A
//!   ([`render_idl`]) and the rejected union design of Fig. 5
//!   ([`render_union_idl`]);
//! * **Rust** — a self-contained module of structs/enums whose shape
//!   makes schema-invalid trees unrepresentable, with field-order-driven
//!   serializers ([`render_rust`]).
//!
//! A small CLI (`src/bin/vdomgen.rs`) drives both from a schema file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod idl;
pub mod rust_gen;

pub use idl::{render_idl, render_union_idl};
pub use rust_gen::{render_rust, snake_case, RustGenOptions};

use normalize::InterfaceModel;
use schema::Schema;

/// Builds the interface model and renders IDL in one step.
pub fn schema_to_idl(schema: &Schema) -> Result<String, normalize::BuildError> {
    Ok(render_idl(&normalize::build_model(schema)?))
}

/// Builds the interface model and renders Rust in one step.
pub fn schema_to_rust(schema: &Schema, label: &str) -> Result<String, normalize::BuildError> {
    let model = normalize::build_model(schema)?;
    Ok(render_rust(
        &model,
        &RustGenOptions {
            schema_label: label.to_string(),
        },
    ))
}

/// Re-export for callers that want to post-process the model.
pub fn model_of(schema: &Schema) -> Result<InterfaceModel, normalize::BuildError> {
    normalize::build_model(schema)
}
