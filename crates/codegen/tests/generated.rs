//! Compiles the checked-in generated module for the purchase-order
//! schema and proves the paper's claim end-to-end: every document
//! expressible through the generated types serializes to a
//! schema-valid document, and drift between generator and golden file is
//! caught.

use schema::corpus::PURCHASE_ORDER_XSD;
use schema::CompiledSchema;

#[allow(dead_code, clippy::all)]
mod generated {
    include!("golden/generated_po.rs");
}

use generated::*;

fn us_address(name: &str, street: &str, city: &str, state: &str, zip: &str) -> USAddressType {
    USAddressType {
        name: name.to_string(),
        street: street.to_string(),
        city: city.to_string(),
        state: state.to_string(),
        zip: zip.to_string(),
        country: Some("US".to_string()),
    }
}

fn sample_po() -> PurchaseOrderTypeType {
    PurchaseOrderTypeType {
        ship_to: us_address(
            "Alice Smith",
            "123 Maple Street",
            "Mill Valley",
            "CA",
            "90952",
        ),
        bill_to: us_address("Robert Smith", "8 Oak Avenue", "Old Town", "PA", "95819"),
        comment: Some("Hurry, my lawn is going wild".to_string()),
        items: ItemsType {
            item: vec![
                ItemTypeType {
                    product_name: "Lawnmower".to_string(),
                    quantity: QuantityType::new("1"),
                    usprice: "148.95".to_string(),
                    comment: Some("Confirm this is electric".to_string()),
                    ship_date: None,
                    part_num: SKU::new("872-AA"),
                },
                ItemTypeType {
                    product_name: "Baby Monitor".to_string(),
                    quantity: QuantityType::new("1"),
                    usprice: "39.98".to_string(),
                    comment: None,
                    ship_date: Some("1999-05-21".to_string()),
                    part_num: SKU::new("926-AA"),
                },
            ],
        },
        order_date: Some("1999-10-20".to_string()),
    }
}

#[test]
fn generated_types_serialize_to_valid_document() {
    let xml = purchase_order_to_xml(&sample_po());
    let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
    let doc = xmlparse::parse_document(&xml).unwrap();
    let errors = validator::validate_document(&compiled, &doc);
    assert!(
        errors.is_empty(),
        "generated output invalid: {errors:#?}\n{xml}"
    );
}

#[test]
fn generated_output_matches_paper_document_shape() {
    let xml = purchase_order_to_xml(&sample_po());
    assert!(xml.starts_with("<purchaseOrder orderDate=\"1999-10-20\">"));
    assert!(xml.contains("<shipTo country=\"US\"><name>Alice Smith</name>"));
    assert!(xml.contains("<item partNum=\"872-AA\">"));
    assert!(xml.contains("<USPrice>148.95</USPrice>"));
    assert!(xml.ends_with("</purchaseOrder>"));
}

#[test]
fn optional_fields_omitted() {
    let mut po = sample_po();
    po.comment = None;
    po.order_date = None;
    let xml = purchase_order_to_xml(&po);
    assert!(!xml.contains("orderDate"));
    assert!(!xml.contains("<comment>Hurry"));
    // still valid without the optional parts
    let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
    let doc = xmlparse::parse_document(&xml).unwrap();
    assert!(validator::validate_document(&compiled, &doc).is_empty());
}

#[test]
fn escaping_in_generated_serializer() {
    let mut po = sample_po();
    po.comment = Some("bolts & <nuts>".to_string());
    let xml = purchase_order_to_xml(&po);
    assert!(xml.contains("<comment>bolts &amp; &lt;nuts&gt;</comment>"));
    let doc = xmlparse::parse_document(&xml).unwrap();
    let root = doc.root_element().unwrap();
    let comment = doc.child_element_named(root, "comment").unwrap();
    assert_eq!(doc.text_content(comment).unwrap(), "bolts & <nuts>");
}

#[test]
fn runtime_facets_still_enforced_downstream() {
    // the paper concedes facet values are runtime checks: a bad SKU
    // compiles but fails validation
    let mut po = sample_po();
    po.items.item[0].part_num = SKU::new("bogus");
    let xml = purchase_order_to_xml(&po);
    let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
    let doc = xmlparse::parse_document(&xml).unwrap();
    let errors = validator::validate_document(&compiled, &doc);
    assert_eq!(errors.len(), 1);
}

#[test]
fn golden_file_matches_generator_output() {
    let schema = schema::parse_schema(PURCHASE_ORDER_XSD).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let fresh = codegen::render_rust(
        &model,
        &codegen::RustGenOptions {
            schema_label: "crates/codegen/testdata/purchase_order.xsd".to_string(),
        },
    );
    let golden = include_str!("golden/generated_po.rs");
    assert_eq!(
        fresh, golden,
        "generator output drifted from the checked-in golden file; \
         regenerate with: cargo run -p codegen --bin vdomgen \
         crates/codegen/testdata/purchase_order.xsd --mode rust \
         --out crates/codegen/tests/golden/generated_po.rs"
    );
}
