//! Compiles the generated WML module (choice enums, mixed text-only
//! types) and checks that the directory page built through generated
//! types matches the hand-written back ends and validates.

use schema::corpus::WML_XSD;
use schema::CompiledSchema;

#[allow(dead_code, clippy::all)]
mod generated {
    include!("golden/generated_wml.rs");
}

use generated::*;

#[test]
fn generated_wml_directory_page_matches_webgen() {
    let data = webgen::DirectoryPageData {
        sub_dirs: vec!["audio".into(), "video".into()],
        current_dir: "/workspace/media".into(),
        parent_dir: "/workspace".into(),
    };

    // build the same page through the generated types
    let mut options = vec![OptionTypeType {
        content: "..".into(),
        value: data.parent_dir.clone(),
    }];
    options.extend(data.sub_dirs.iter().map(|dir| OptionTypeType {
        content: dir.clone(),
        value: format!("{}/{dir}", data.current_dir),
    }));
    let page = WmlTypeType {
        card: vec![CardTypeType {
            p: vec![PTypeType {
                ptype_c: vec![
                    PTypeCGroup::B(InlineTypeType {
                        content: data.current_dir.clone(),
                    }),
                    PTypeCGroup::Br(EmptyTypeType {}),
                    PTypeCGroup::Select(SelectTypeType {
                        option: options,
                        name: "directories".into(),
                        multiple: None,
                    }),
                    PTypeCGroup::Br(EmptyTypeType {}),
                ],
                align: None,
            }],
            id: Some("dirs".into()),
            title: None,
        }],
    };
    let xml = wml_to_xml(&page);
    assert_eq!(xml, webgen::render_string(&data));

    let compiled = CompiledSchema::parse(WML_XSD).unwrap();
    let doc = xmlparse::parse_document(&xml).unwrap();
    assert!(validator::validate_document(&compiled, &doc).is_empty());
}

#[test]
fn choice_enum_variants_serialize_under_their_own_tags() {
    let b = PTypeCGroup::B(InlineTypeType {
        content: "bold".into(),
    });
    let mut out = String::new();
    b.write_xml(&mut out);
    assert_eq!(out, "<b>bold</b>");

    let em = PTypeCGroup::Em(InlineTypeType {
        content: "emph".into(),
    });
    let mut out = String::new();
    em.write_xml(&mut out);
    assert_eq!(out, "<em>emph</em>");
}

#[test]
fn wml_golden_matches_generator() {
    let schema = schema::parse_schema(WML_XSD).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let fresh = codegen::render_rust(
        &model,
        &codegen::RustGenOptions {
            schema_label: "crates/codegen/testdata/wml.xsd".to_string(),
        },
    );
    assert_eq!(
        fresh,
        include_str!("golden/generated_wml.rs"),
        "regenerate with vdomgen"
    );
}
