// Generated V-DOM types for schema crates/codegen/testdata/purchase_order.xsd — DO NOT EDIT.
// One struct per complex type, one enum per choice group; field
// order drives serialization, so any tree you can express here
// serializes to a schema-valid document (occurrence counts and
// restriction facets remain runtime checks, as in the paper).

// Include inside a module, e.g. `#[allow(dead_code)] mod generated {{ include!(…); }}`.

/// Escapes character data.
fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (double-quoted).
fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Restriction of `positiveInteger` (facets checked at validation time).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantityType(pub String);

impl QuantityType {
    /// Wraps a lexical value (facets are runtime checks).
    pub fn new(value: impl Into<String>) -> Self { QuantityType(value.into()) }
}

/// Restriction of `string` (facets checked at validation time).
#[derive(Debug, Clone, PartialEq)]
pub struct SKU(pub String);

impl SKU {
    /// Wraps a lexical value (facets are runtime checks).
    pub fn new(value: impl Into<String>) -> Self { SKU(value.into()) }
}

/// Generated from complex type `ItemType`.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemTypeType {
    pub product_name: String,
    pub quantity: QuantityType,
    pub usprice: String,
    pub comment: Option<String>,
    pub ship_date: Option<String>,
    pub part_num: SKU,
}

impl ItemTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        {
            let v = &self.part_num;
            out.push_str(" partNum=\"");
            out.push_str(&escape_attr(&v.0.clone()));
            out.push('"');
        }
        let mut content = String::new();
        { let v = &self.product_name; content.push_str("<productName>"); content.push_str(&escape_text(&v.clone())); content.push_str("</productName>"); }
        { let v = &self.quantity; content.push_str("<quantity>"); content.push_str(&escape_text(&v.0)); content.push_str("</quantity>"); }
        { let v = &self.usprice; content.push_str("<USPrice>"); content.push_str(&escape_text(&v.clone())); content.push_str("</USPrice>"); }
        if let Some(v) = &self.comment { content.push_str("<comment>"); content.push_str(&escape_text(&v.clone())); content.push_str("</comment>"); }
        if let Some(v) = &self.ship_date { content.push_str("<shipDate>"); content.push_str(&escape_text(&v.clone())); content.push_str("</shipDate>"); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `Items`.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemsType {
    pub item: Vec<ItemTypeType>,
}

impl ItemsType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        let mut content = String::new();
        for v in &self.item { v.write_xml("item", &mut content); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `PurchaseOrderType`.
#[derive(Debug, Clone, PartialEq)]
pub struct PurchaseOrderTypeType {
    pub ship_to: USAddressType,
    pub bill_to: USAddressType,
    pub comment: Option<String>,
    pub items: ItemsType,
    pub order_date: Option<String>,
}

impl PurchaseOrderTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        if let Some(v) = &self.order_date {
            out.push_str(" orderDate=\"");
            out.push_str(&escape_attr(&v.clone()));
            out.push('"');
        }
        let mut content = String::new();
        { let v = &self.ship_to; v.write_xml("shipTo", &mut content); }
        { let v = &self.bill_to; v.write_xml("billTo", &mut content); }
        if let Some(v) = &self.comment { content.push_str("<comment>"); content.push_str(&escape_text(&v.clone())); content.push_str("</comment>"); }
        { let v = &self.items; v.write_xml("items", &mut content); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `USAddress`.
#[derive(Debug, Clone, PartialEq)]
pub struct USAddressType {
    pub name: String,
    pub street: String,
    pub city: String,
    pub state: String,
    pub zip: String,
    pub country: Option<String>,
}

impl USAddressType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        if let Some(v) = &self.country {
            out.push_str(" country=\"");
            out.push_str(&escape_attr(&v.clone()));
            out.push('"');
        }
        let mut content = String::new();
        { let v = &self.name; content.push_str("<name>"); content.push_str(&escape_text(&v.clone())); content.push_str("</name>"); }
        { let v = &self.street; content.push_str("<street>"); content.push_str(&escape_text(&v.clone())); content.push_str("</street>"); }
        { let v = &self.city; content.push_str("<city>"); content.push_str(&escape_text(&v.clone())); content.push_str("</city>"); }
        { let v = &self.state; content.push_str("<state>"); content.push_str(&escape_text(&v.clone())); content.push_str("</state>"); }
        { let v = &self.zip; content.push_str("<zip>"); content.push_str(&escape_text(&v.clone())); content.push_str("</zip>"); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Serializes a complete `<comment>` document.
pub fn comment_to_xml(value: &str) -> String {
    format!("<comment>{}</comment>", escape_text(value))
}

/// Serializes a complete `<purchaseOrder>` document.
pub fn purchase_order_to_xml(value: &PurchaseOrderTypeType) -> String {
    let mut out = String::new();
    value.write_xml("purchaseOrder", &mut out);
    out
}

