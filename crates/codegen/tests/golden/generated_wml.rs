// Generated V-DOM types for schema crates/codegen/testdata/wml.xsd — DO NOT EDIT.
// One struct per complex type, one enum per choice group; field
// order drives serialization, so any tree you can express here
// serializes to a schema-valid document (occurrence counts and
// restriction facets remain runtime checks, as in the paper).

// Include inside a module, e.g. `#[allow(dead_code)] mod generated {{ include!(…); }}`.

/// Escapes character data.
fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes attribute values (double-quoted).
fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Restriction of `string` (facets checked at validation time).
#[derive(Debug, Clone, PartialEq)]
pub struct AlignType(pub String);

impl AlignType {
    /// Wraps a lexical value (facets are runtime checks).
    pub fn new(value: impl Into<String>) -> Self { AlignType(value.into()) }
}

/// Choice group `PTypeC` — exactly one alternative (Fig. 6's
/// inheritance hierarchy, rendered as a Rust enum).
#[derive(Debug, Clone, PartialEq)]
pub enum PTypeCGroup {
    B(InlineTypeType),
    Em(InlineTypeType),
    Br(EmptyTypeType),
    Select(SelectTypeType),
    A(AnchorTypeType),
}

impl PTypeCGroup {
    /// Writes the chosen alternative under its own tag.
    pub fn write_xml(&self, out: &mut String) {
        match self {
            PTypeCGroup::B(v) => v.write_xml("b", out),
            PTypeCGroup::Em(v) => v.write_xml("em", out),
            PTypeCGroup::Br(v) => v.write_xml("br", out),
            PTypeCGroup::Select(v) => v.write_xml("select", out),
            PTypeCGroup::A(v) => v.write_xml("a", out),
        }
    }
}

/// Generated from complex type `AnchorType`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnchorTypeType {
    pub content: String,
    pub href: String,
}

impl AnchorTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        {
            let v = &self.href;
            out.push_str(" href=\"");
            out.push_str(&escape_attr(&v.clone()));
            out.push('"');
        }
        let mut content = String::new();
        { let v = &self.content; content.push_str(&escape_text(&v.clone())); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `CardType`.
#[derive(Debug, Clone, PartialEq)]
pub struct CardTypeType {
    pub p: Vec<PTypeType>,
    pub id: Option<String>,
    pub title: Option<String>,
}

impl CardTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        if let Some(v) = &self.id {
            out.push_str(" id=\"");
            out.push_str(&escape_attr(&v.clone()));
            out.push('"');
        }
        if let Some(v) = &self.title {
            out.push_str(" title=\"");
            out.push_str(&escape_attr(&v.clone()));
            out.push('"');
        }
        let mut content = String::new();
        for v in &self.p { v.write_xml("p", &mut content); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `EmptyType`.
#[derive(Debug, Clone, PartialEq)]
pub struct EmptyTypeType {
}

impl EmptyTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        let content = String::new();
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `InlineType`.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineTypeType {
    pub content: String,
}

impl InlineTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        let mut content = String::new();
        { let v = &self.content; content.push_str(&escape_text(&v.clone())); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `OptionType`.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionTypeType {
    pub content: String,
    pub value: String,
}

impl OptionTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        {
            let v = &self.value;
            out.push_str(" value=\"");
            out.push_str(&escape_attr(&v.clone()));
            out.push('"');
        }
        let mut content = String::new();
        { let v = &self.content; content.push_str(&escape_text(&v.clone())); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `PType`.
#[derive(Debug, Clone, PartialEq)]
pub struct PTypeType {
    pub ptype_c: Vec<PTypeCGroup>,
    pub align: Option<AlignType>,
}

impl PTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        if let Some(v) = &self.align {
            out.push_str(" align=\"");
            out.push_str(&escape_attr(&v.0.clone()));
            out.push('"');
        }
        let mut content = String::new();
        for v in &self.ptype_c { v.write_xml(&mut content); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `SelectType`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectTypeType {
    pub option: Vec<OptionTypeType>,
    pub multiple: Option<bool>,
    pub name: String,
}

impl SelectTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        if let Some(v) = &self.multiple {
            out.push_str(" multiple=\"");
            out.push_str(&escape_attr(&v.to_string()));
            out.push('"');
        }
        {
            let v = &self.name;
            out.push_str(" name=\"");
            out.push_str(&escape_attr(&v.clone()));
            out.push('"');
        }
        let mut content = String::new();
        for v in &self.option { v.write_xml("option", &mut content); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Generated from complex type `WmlType`.
#[derive(Debug, Clone, PartialEq)]
pub struct WmlTypeType {
    pub card: Vec<CardTypeType>,
}

impl WmlTypeType {
    /// Writes `<tag …>content</tag>` for an element of this type.
    pub fn write_xml(&self, tag: &str, out: &mut String) {
        out.push('<');
        out.push_str(tag);
        let mut content = String::new();
        for v in &self.card { v.write_xml("card", &mut content); }
        if content.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            out.push_str(&content);
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
    }
}

/// Serializes a complete `<wml>` document.
pub fn wml_to_xml(value: &WmlTypeType) -> String {
    let mut out = String::new();
    value.write_xml("wml", &mut out);
    out
}

