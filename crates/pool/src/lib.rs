//! A std-only work-stealing thread pool for batch workloads.
//!
//! The paper's economics (Sect. 6) compile every content model to a DFA
//! *once*; this crate amortizes that investment across cores. A
//! [`ThreadPool`] owns a fixed set of workers, each with its own job
//! deque: submitted jobs are distributed round-robin, a worker drains its
//! own deque from the front, and an idle worker steals from the back of
//! its siblings' deques — so an uneven batch (one giant document among
//! many small ones) still keeps every core busy.
//!
//! [`ThreadPool::map`] is the batch primitive the validation pipeline
//! uses: it fans a `Vec` of items out across the workers and returns the
//! results **in input order**, so callers observe exactly the sequential
//! semantics, just faster. Per-worker statistics (jobs executed, steals,
//! queue wait, job latency) are accumulated locally during the batch and
//! flushed to the `obs` metrics registry once at the end — workers never
//! contend on the global registry mid-batch.
//!
//! No external dependencies and no unsafe code: the deques are
//! `Mutex<VecDeque>`s, which for document-sized jobs (microseconds to
//! milliseconds each) are nowhere near contention.
//!
//! # Example
//!
//! ```
//! let pool = pool::ThreadPool::new(4);
//! let squares = pool.map((0u64..100).collect(), |n| n * n);
//! assert_eq!(squares[7], 49);
//! assert_eq!(squares.len(), 100);
//! ```
//!
//! # Panics in jobs
//!
//! A panicking job is caught on the worker; the worker survives and keeps
//! serving the pool (the panic is re-raised from [`ThreadPool::map`] on
//! the submitting thread). A wedge of the whole pool by one poisoned
//! document is exactly the failure mode this rules out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Where a worker found the job it is about to run.
struct JobCtx {
    /// Index of the executing worker.
    worker: usize,
    /// Whether the job was stolen from another worker's deque.
    stolen: bool,
    /// When the job was enqueued (for queue-wait accounting).
    queued: Instant,
}

type Job = Box<dyn FnOnce(&JobCtx) + Send + 'static>;

struct Shared {
    /// One deque per worker; `(job, enqueue time)`.
    queues: Vec<Mutex<VecDeque<(Job, Instant)>>>,
    /// Sleep coordination: workers wait here when every deque is empty.
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin submission cursor.
    next: AtomicUsize,
}

impl Shared {
    /// Pops a job for worker `id`: its own deque first (front), then a
    /// steal from a sibling (back), scanning from its right neighbour.
    fn take(&self, id: usize) -> Option<(Job, Instant, bool)> {
        if let Some((job, queued)) = self.queues[id].lock().unwrap().pop_front() {
            return Some((job, queued, false));
        }
        let n = self.queues.len();
        for k in 1..n {
            let victim = (id + k) % n;
            if let Some((job, queued)) = self.queues[victim].lock().unwrap().pop_back() {
                return Some((job, queued, true));
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    loop {
        if let Some((job, queued, stolen)) = shared.take(id) {
            let ctx = JobCtx {
                worker: id,
                stolen,
                queued,
            };
            // A panicking job must not take the worker down with it; the
            // submitting side notices the missing result and re-raises.
            let _ = catch_unwind(AssertUnwindSafe(|| job(&ctx)));
            continue;
        }
        let guard = shared.sleep.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Re-check under the sleep lock: a submitter pushes, then takes
        // this lock to notify, so either we see the job here or we are
        // already waiting when the notification arrives.
        if shared.has_work() {
            continue;
        }
        drop(shared.wake.wait(guard).unwrap());
    }
}

/// Per-worker statistics for one batch, accumulated lock-locally (each
/// worker only ever touches its own slot) and flushed to `obs` once.
struct BatchStats {
    slots: Vec<Mutex<WorkerSlot>>,
}

#[derive(Default)]
struct WorkerSlot {
    jobs: u64,
    steals: u64,
    queue_wait: Vec<Duration>,
    job_time: Vec<Duration>,
}

impl BatchStats {
    fn new(workers: usize) -> BatchStats {
        BatchStats {
            slots: (0..workers).map(|_| Mutex::default()).collect(),
        }
    }

    fn record(&self, ctx: &JobCtx, queue_wait: Duration, job_time: Duration) {
        let mut slot = self.slots[ctx.worker].lock().unwrap();
        slot.jobs += 1;
        slot.steals += ctx.stolen as u64;
        slot.queue_wait.push(queue_wait);
        slot.job_time.push(job_time);
    }

    /// One flush per batch: per-worker counters and histograms land in
    /// the global registry here, not from the hot path.
    fn flush(&self) {
        let metrics = obs::metrics();
        for (worker, slot) in self.slots.iter().enumerate() {
            let slot = slot.lock().unwrap();
            if slot.jobs == 0 {
                continue;
            }
            let worker = worker.to_string();
            let labels: &[(&str, &str)] = &[("worker", &worker)];
            metrics
                .counter_with("pool_jobs_total", "Jobs executed, per worker.", labels)
                .inc_by(slot.jobs);
            metrics
                .counter_with(
                    "pool_steals_total",
                    "Jobs stolen from a sibling's deque, per worker.",
                    labels,
                )
                .inc_by(slot.steals);
            let wait = metrics.histogram_with(
                "pool_queue_wait_seconds",
                "Time a job sat queued before a worker picked it up.",
                labels,
                obs::DURATION_BUCKETS,
            );
            for d in &slot.queue_wait {
                wait.observe_duration(*d);
            }
            let job = metrics.histogram_with(
                "pool_job_seconds",
                "Wall time running one job, per worker.",
                labels,
                obs::DURATION_BUCKETS,
            );
            for d in &slot.job_time {
                job.observe_duration(*d);
            }
        }
    }
}

/// A fixed-size work-stealing thread pool. Dropping the pool blocks
/// until every job already queued has run, then joins the workers.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|id| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("pool-worker-{id}"))
                    .spawn(move || worker_loop(shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    fn push(&self, job: Job) {
        let n = self.threads();
        let i = self.shared.next.fetch_add(1, Ordering::Relaxed) % n;
        self.shared.queues[i]
            .lock()
            .unwrap()
            .push_back((job, Instant::now()));
        // Take the sleep lock before notifying so a worker that found all
        // deques empty but has not yet started waiting cannot miss this.
        let _guard = self.shared.sleep.lock().unwrap();
        self.shared.wake.notify_one();
    }

    /// Runs `f` on some worker, fire-and-forget.
    pub fn execute(&self, f: impl FnOnce() + Send + 'static) {
        self.push(Box::new(move |_ctx| f()));
    }

    /// Applies `f` to every item across the workers and returns the
    /// results **in input order**. Blocks until the whole batch is done.
    ///
    /// When `obs` instrumentation is enabled, per-worker job counts,
    /// steal counts, queue-wait and job-latency histograms are
    /// accumulated during the batch and flushed to the global registry
    /// once, on return.
    ///
    /// # Panics
    /// Re-raises on the calling thread if any job panicked (the workers
    /// themselves survive).
    ///
    /// Do not call `map` from inside a pool job of the same pool: the
    /// nested batch would wait on workers that are all busy waiting.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        self.map_cancellable(items, || false, f)
            .into_iter()
            .map(|r| r.expect("a never-cancelled batch completes every item"))
            .collect()
    }

    /// [`map`](Self::map) with cooperative cancellation: each worker
    /// calls `cancelled` once per item, *before* running `f` on it, and
    /// skips the item (yielding `None` in its slot) when it returns
    /// `true`. Items already running when cancellation is observed finish
    /// normally — jobs are never interrupted mid-document — so the result
    /// is `Some` for every item processed before the cut and `None`
    /// after, still in input order.
    ///
    /// The predicate is deliberately a plain closure rather than a
    /// concrete token type, so this crate stays dependency-free: callers
    /// pass `|| token.is_cancelled()`, `|| Instant::now() >= deadline`,
    /// or a combination.
    ///
    /// # Panics
    /// Re-raises on the calling thread if any job panicked (the workers
    /// themselves survive), exactly like [`map`](Self::map).
    pub fn map_cancellable<T, R, F, C>(&self, items: Vec<T>, cancelled: C, f: F) -> Vec<Option<R>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
        C: Fn() -> bool + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let batch_span = obs::span!("pool.batch", docs = n, threads = self.threads());
        // Captured while the batch span is open, so worker-side spans
        // parent to it — across threads — when the flight recorder flies.
        let trace_ctx = obs::trace::TraceCtx::current();
        let instrument = obs::enabled();
        let stats = Arc::new(BatchStats::new(self.threads()));
        let f = Arc::new(f);
        let cancelled = Arc::new(cancelled);
        let (tx, rx) = mpsc::channel::<(usize, Option<R>)>();
        for (idx, item) in items.into_iter().enumerate() {
            let f = f.clone();
            let cancelled = cancelled.clone();
            let tx = tx.clone();
            let stats = stats.clone();
            self.push(Box::new(move |ctx| {
                let _attach = trace_ctx.attach();
                let result = if cancelled() {
                    None
                } else {
                    if obs::trace::enabled() {
                        // the wait began on the submitting thread; record
                        // it as a completed interval under the batch span
                        obs::trace::complete_from("pool.queue_wait", ctx.queued);
                    }
                    let wait = instrument.then(|| ctx.queued.elapsed());
                    let run_span = obs::span!("pool.run", worker = ctx.worker, stolen = ctx.stolen);
                    let result = f(item);
                    // one end-of-job clock read, shared by the trace
                    // record and the job-latency histogram
                    let elapsed = run_span.finish();
                    if let (Some(wait), Some(elapsed)) = (wait, elapsed) {
                        stats.record(ctx, wait, elapsed);
                    }
                    Some(result)
                };
                // The receiver outlives the batch; a send only fails if
                // the submitting thread already panicked, in which case
                // the result is moot.
                let _ = tx.send((idx, result));
            }));
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut received = 0;
        for (idx, result) in rx {
            out[idx] = result;
            received += 1;
        }
        let batch_elapsed = batch_span.finish();
        if instrument {
            stats.flush();
            let metrics = obs::metrics();
            metrics
                .counter("pool_batches_total", "Batches run through the pool.")
                .inc();
            if let Some(elapsed) = batch_elapsed {
                metrics
                    .histogram(
                        "pool_batch_seconds",
                        "Wall time for one whole batch.",
                        obs::DURATION_BUCKETS,
                    )
                    .observe_duration(elapsed);
            }
        }
        assert_eq!(
            received, n,
            "a pool job panicked before producing its result"
        );
        out
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let _guard = self.shared.sleep.lock().unwrap();
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.wake.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let out = pool.map((0u64..257).collect(), |n| n * 2);
        assert_eq!(out.len(), 257);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(vec![1, 2, 3], |n| n + 1), vec![2, 3, 4]);
    }

    #[test]
    fn zero_requested_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(vec![5], |n| n), vec![5]);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = ThreadPool::new(2);
        assert_eq!(pool.map(Vec::<u8>::new(), |n| n), Vec::<u8>::new());
    }

    #[test]
    fn execute_runs_fire_and_forget_jobs() {
        let pool = ThreadPool::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let hits = hits.clone();
            pool.execute(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while hits.load(Ordering::SeqCst) < 32 {
            assert!(Instant::now() < deadline, "jobs did not drain");
            thread::yield_now();
        }
    }

    #[test]
    fn uneven_work_is_stolen_not_serialized() {
        // 4 workers, round-robin puts every 4th job on the same deque;
        // one slow job must not make its deque-mates wait behind it.
        let pool = ThreadPool::new(4);
        let start = Instant::now();
        let out = pool.map((0..16).collect::<Vec<usize>>(), |i| {
            if i == 0 {
                thread::sleep(Duration::from_millis(200));
            }
            i
        });
        assert_eq!(out.len(), 16);
        // With stealing the batch is bounded by the one slow job, not by
        // slow + everything that was queued behind it sequentially.
        assert!(
            start.elapsed() < Duration::from_millis(600),
            "batch took {:?}; stealing is not happening",
            start.elapsed()
        );
    }

    #[test]
    fn worker_survives_a_panicking_job() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0, 1, 2], |n| {
                if n == 1 {
                    panic!("boom");
                }
                n
            })
        }));
        assert!(result.is_err(), "panic must propagate to the submitter");
        // the pool still works afterwards
        assert_eq!(pool.map(vec![10, 20], |n| n + 1), vec![11, 21]);
    }

    #[test]
    fn map_cancellable_without_cancellation_matches_map() {
        let pool = ThreadPool::new(4);
        let out = pool.map_cancellable((0u64..100).collect(), || false, |n| n * 3);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, Some(i as u64 * 3));
        }
    }

    #[test]
    fn map_cancellable_skips_everything_when_already_cancelled() {
        let pool = ThreadPool::new(2);
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = ran.clone();
        let out = pool.map_cancellable(
            (0..50).collect::<Vec<u32>>(),
            || true,
            move |n| {
                ran2.fetch_add(1, Ordering::SeqCst);
                n
            },
        );
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(Option::is_none));
        assert_eq!(
            ran.load(Ordering::SeqCst),
            0,
            "no job may run after the cut"
        );
    }

    #[test]
    fn mid_batch_cancellation_yields_a_prefix() {
        // a single worker runs the jobs in submission order, so flipping
        // the flag while item 2 runs deterministically skips 3 onward
        let pool = ThreadPool::new(1);
        let flag = Arc::new(AtomicBool::new(false));
        let observed = flag.clone();
        let flipper = flag.clone();
        let out = pool.map_cancellable(
            (0..10).collect::<Vec<u32>>(),
            move || observed.load(Ordering::SeqCst),
            move |n| {
                if n == 2 {
                    flipper.store(true, Ordering::SeqCst);
                }
                n
            },
        );
        assert_eq!(
            out,
            vec![
                Some(0),
                Some(1),
                Some(2),
                None,
                None,
                None,
                None,
                None,
                None,
                None
            ]
        );
    }

    #[test]
    fn batches_from_many_threads_interleave_safely() {
        let pool = Arc::new(ThreadPool::new(4));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let pool = pool.clone();
                thread::spawn(move || {
                    let out = pool.map((0u64..50).collect(), move |n| n + t);
                    assert_eq!(out[49], 49 + t);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
