//! Errors raised by structural DOM mutations.

use std::fmt;

use crate::document::NodeId;

/// An error produced by a structural mutation on a [`crate::Document`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomError {
    /// The node id does not belong to this document or was removed.
    StaleNode(NodeId),
    /// The operation requires an element node but another kind was given.
    NotAnElement(NodeId),
    /// The operation requires a container (document or element).
    NotAContainer(NodeId),
    /// Inserting the node would create a cycle (node is an ancestor of the
    /// insertion point).
    WouldCreateCycle {
        /// The node being inserted.
        node: NodeId,
        /// The prospective parent.
        parent: NodeId,
    },
    /// The node is still attached; detach it before re-inserting.
    StillAttached(NodeId),
    /// The child index was out of bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: usize,
        /// Number of children present.
        len: usize,
    },
    /// A document may have exactly one root element.
    SecondRootElement,
    /// The supplied name is not a well-formed XML name.
    BadName(String),
}

impl fmt::Display for DomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomError::StaleNode(id) => write!(f, "stale or foreign node id {id:?}"),
            DomError::NotAnElement(id) => write!(f, "node {id:?} is not an element"),
            DomError::NotAContainer(id) => write!(f, "node {id:?} cannot hold children"),
            DomError::WouldCreateCycle { node, parent } => {
                write!(
                    f,
                    "inserting {node:?} under {parent:?} would create a cycle"
                )
            }
            DomError::StillAttached(id) => {
                write!(f, "node {id:?} is attached; detach it first")
            }
            DomError::IndexOutOfBounds { index, len } => {
                write!(f, "child index {index} out of bounds (len {len})")
            }
            DomError::SecondRootElement => {
                write!(f, "document already has a root element")
            }
            DomError::BadName(name) => write!(f, "{name:?} is not a well-formed XML name"),
        }
    }
}

impl std::error::Error for DomError {}
