//! Node payloads: the data stored per arena slot.

use xmlchars::Span;

/// A single attribute on an element, in document order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Lexical attribute name (may carry a prefix, e.g. `xml:lang`).
    pub name: String,
    /// Attribute value after entity resolution.
    pub value: String,
}

/// The kind-specific payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The document node: the unique tree root. Holds no payload; its
    /// children are the root element plus any top-level comments/PIs.
    Document,
    /// An element with a lexical tag name and attributes.
    Element {
        /// Lexical tag name as written (`shipTo`, `xsd:element`).
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// Character data (text and resolved CDATA sections).
    Text(String),
    /// A comment (without the `<!--`/`-->` delimiters).
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// The PI data (may be empty).
        data: String,
    },
}

impl NodeKind {
    /// Whether this kind may hold children.
    pub fn is_container(&self) -> bool {
        matches!(self, NodeKind::Document | NodeKind::Element { .. })
    }

    /// Whether this is an element node.
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// Whether this is a text node.
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text(_))
    }
}

/// Internal arena slot: payload plus tree links.
#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub(crate) kind: NodeKind,
    pub(crate) parent: Option<crate::document::NodeId>,
    pub(crate) children: Vec<crate::document::NodeId>,
    /// Source span when the node came from the parser; default otherwise.
    pub(crate) span: Span,
    /// Incremented when the node is removed, so stale ids are detected.
    pub(crate) generation: u32,
    pub(crate) alive: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(NodeKind::Document.is_container());
        let el = NodeKind::Element {
            name: "a".into(),
            attributes: Vec::new(),
        };
        assert!(el.is_container());
        assert!(el.is_element());
        assert!(!el.is_text());
        assert!(NodeKind::Text("x".into()).is_text());
        assert!(!NodeKind::Comment("c".into()).is_container());
    }
}
