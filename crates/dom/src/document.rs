//! The arena document and its mutation API.

use xmlchars::chars::is_name;
use xmlchars::Span;

use crate::error::DomError;
use crate::node::{Attribute, NodeData, NodeKind};

/// A handle to a node inside a [`Document`].
///
/// Ids are `Copy` and cheap to pass around; they are validated against the
/// owning document on every access, and a generation counter detects reuse
/// of slots freed by [`Document::remove`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl NodeId {
    /// The arena index, useful for dense side tables keyed by node.
    pub fn index(self) -> usize {
        self.index as usize
    }
}

/// An XML document: an arena of nodes rooted at a document node.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<NodeData>,
    free: Vec<u32>,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the document node.
    pub fn new() -> Self {
        let root = NodeData {
            kind: NodeKind::Document,
            parent: None,
            children: Vec::new(),
            span: Span::default(),
            generation: 0,
            alive: true,
        };
        Document {
            nodes: vec![root],
            free: Vec::new(),
        }
    }

    /// The document node (root of the tree, parent of the root element).
    pub fn document_node(&self) -> NodeId {
        NodeId {
            index: 0,
            generation: self.nodes[0].generation,
        }
    }

    /// The root element, if one has been attached.
    pub fn root_element(&self) -> Option<NodeId> {
        let doc = self.document_node();
        self.children(doc)
            .find(|&c| self.kind(c).map(NodeKind::is_element).unwrap_or(false))
    }

    /// Number of live nodes, including the document node.
    pub fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Whether the document contains only the document node.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    fn get(&self, id: NodeId) -> Result<&NodeData, DomError> {
        let data = self
            .nodes
            .get(id.index as usize)
            .ok_or(DomError::StaleNode(id))?;
        if !data.alive || data.generation != id.generation {
            return Err(DomError::StaleNode(id));
        }
        Ok(data)
    }

    fn get_mut(&mut self, id: NodeId) -> Result<&mut NodeData, DomError> {
        let data = self
            .nodes
            .get_mut(id.index as usize)
            .ok_or(DomError::StaleNode(id))?;
        if !data.alive || data.generation != id.generation {
            return Err(DomError::StaleNode(id));
        }
        Ok(data)
    }

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        if let Some(index) = self.free.pop() {
            let generation = self.nodes[index as usize].generation;
            self.nodes[index as usize] = NodeData {
                kind,
                parent: None,
                children: Vec::new(),
                span: Span::default(),
                generation,
                alive: true,
            };
            NodeId { index, generation }
        } else {
            let index = u32::try_from(self.nodes.len()).expect("document exceeds u32 nodes");
            self.nodes.push(NodeData {
                kind,
                parent: None,
                children: Vec::new(),
                span: Span::default(),
                generation: 0,
                alive: true,
            });
            NodeId {
                index,
                generation: 0,
            }
        }
    }

    // ---- creation -------------------------------------------------------

    /// Creates a detached element node.
    pub fn create_element(&mut self, name: impl Into<String>) -> Result<NodeId, DomError> {
        let name = name.into();
        if !is_name(&name) {
            return Err(DomError::BadName(name));
        }
        Ok(self.alloc(NodeKind::Element {
            name,
            attributes: Vec::new(),
        }))
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Text(text.into()))
    }

    /// Creates a detached comment node.
    pub fn create_comment(&mut self, text: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Comment(text.into()))
    }

    /// Creates a detached processing-instruction node.
    pub fn create_pi(
        &mut self,
        target: impl Into<String>,
        data: impl Into<String>,
    ) -> Result<NodeId, DomError> {
        let target = target.into();
        if !is_name(&target) {
            return Err(DomError::BadName(target));
        }
        Ok(self.alloc(NodeKind::ProcessingInstruction {
            target,
            data: data.into(),
        }))
    }

    // ---- accessors ------------------------------------------------------

    /// The payload of `id`.
    pub fn kind(&self, id: NodeId) -> Result<&NodeKind, DomError> {
        Ok(&self.get(id)?.kind)
    }

    /// The parent of `id`, `None` for the document node or detached nodes.
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>, DomError> {
        Ok(self.get(id)?.parent)
    }

    /// The source span recorded by the parser (default span otherwise).
    pub fn span(&self, id: NodeId) -> Result<Span, DomError> {
        Ok(self.get(id)?.span)
    }

    /// Sets the source span (used by the parser's tree builder).
    pub fn set_span(&mut self, id: NodeId, span: Span) -> Result<(), DomError> {
        self.get_mut(id)?.span = span;
        Ok(())
    }

    /// The tag name of an element.
    pub fn tag_name(&self, id: NodeId) -> Result<&str, DomError> {
        match &self.get(id)?.kind {
            NodeKind::Element { name, .. } => Ok(name),
            _ => Err(DomError::NotAnElement(id)),
        }
    }

    /// The text of a text node, or `None` for other kinds.
    pub fn text(&self, id: NodeId) -> Result<Option<&str>, DomError> {
        match &self.get(id)?.kind {
            NodeKind::Text(t) => Ok(Some(t)),
            _ => Ok(None),
        }
    }

    /// Replaces the text of a text node.
    pub fn set_text(&mut self, id: NodeId, text: impl Into<String>) -> Result<(), DomError> {
        match &mut self.get_mut(id)?.kind {
            NodeKind::Text(t) => {
                *t = text.into();
                Ok(())
            }
            _ => Err(DomError::NotAnElement(id)),
        }
    }

    /// Concatenated descendant text of `id` (the DOM `textContent`).
    pub fn text_content(&self, id: NodeId) -> Result<String, DomError> {
        let mut out = String::new();
        self.get(id)?;
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let data = self.get(n)?;
            if let NodeKind::Text(t) = &data.kind {
                out.push_str(t);
            }
            for &c in data.children.iter().rev() {
                stack.push(c);
            }
        }
        Ok(out)
    }

    /// Iterates over the children of `id` in document order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        match self.get(id) {
            Ok(data) => data.children.clone().into_iter(),
            Err(_) => Vec::new().into_iter(),
        }
    }

    /// The children of `id` as a slice-backed `Vec` (document order).
    pub fn child_vec(&self, id: NodeId) -> Result<Vec<NodeId>, DomError> {
        Ok(self.get(id)?.children.clone())
    }

    /// The children of `id` as a borrowed slice (document order).
    ///
    /// Unlike [`children`](Self::children), this does not clone the
    /// child list — the read-only walks of the P-XML engines use it to
    /// traverse without per-element allocation.
    pub fn child_slice(&self, id: NodeId) -> Result<&[NodeId], DomError> {
        Ok(&self.get(id)?.children)
    }

    /// Number of children of `id`.
    pub fn child_count(&self, id: NodeId) -> Result<usize, DomError> {
        Ok(self.get(id)?.children.len())
    }

    /// Child element nodes of `id` (skipping text/comments/PIs).
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .filter(move |&c| self.kind(c).map(NodeKind::is_element).unwrap_or(false))
    }

    /// First child element with the given tag name.
    pub fn child_element_named(&self, id: NodeId, name: &str) -> Option<NodeId> {
        self.child_elements(id)
            .find(|&c| self.tag_name(c).map(|n| n == name).unwrap_or(false))
    }

    // ---- attributes -----------------------------------------------------

    /// The attributes of an element in document order.
    pub fn attributes(&self, id: NodeId) -> Result<&[Attribute], DomError> {
        match &self.get(id)?.kind {
            NodeKind::Element { attributes, .. } => Ok(attributes),
            _ => Err(DomError::NotAnElement(id)),
        }
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, id: NodeId, name: &str) -> Result<Option<&str>, DomError> {
        Ok(self
            .attributes(id)?
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str()))
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attribute(
        &mut self,
        id: NodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> Result<(), DomError> {
        let name = name.into();
        if !is_name(&name) {
            return Err(DomError::BadName(name));
        }
        match &mut self.get_mut(id)?.kind {
            NodeKind::Element { attributes, .. } => {
                let value = value.into();
                if let Some(a) = attributes.iter_mut().find(|a| a.name == name) {
                    a.value = value;
                } else {
                    attributes.push(Attribute { name, value });
                }
                Ok(())
            }
            _ => Err(DomError::NotAnElement(id)),
        }
    }

    /// Replaces an element's entire attribute list, returning the old
    /// one. Unlike repeated [`set_attribute`](Self::set_attribute) /
    /// [`remove_attribute`](Self::remove_attribute) calls, this restores
    /// attribute *order* exactly — the incremental revalidator uses it to
    /// roll a rejected attribute patch back byte-identically.
    pub fn replace_attributes(
        &mut self,
        id: NodeId,
        attrs: Vec<Attribute>,
    ) -> Result<Vec<Attribute>, DomError> {
        for a in &attrs {
            if !is_name(&a.name) {
                return Err(DomError::BadName(a.name.clone()));
            }
        }
        match &mut self.get_mut(id)?.kind {
            NodeKind::Element { attributes, .. } => Ok(std::mem::replace(attributes, attrs)),
            _ => Err(DomError::NotAnElement(id)),
        }
    }

    /// Removes an attribute; returns its old value if present.
    pub fn remove_attribute(&mut self, id: NodeId, name: &str) -> Result<Option<String>, DomError> {
        match &mut self.get_mut(id)?.kind {
            NodeKind::Element { attributes, .. } => {
                match attributes.iter().position(|a| a.name == name) {
                    Some(i) => Ok(Some(attributes.remove(i).value)),
                    None => Ok(None),
                }
            }
            _ => Err(DomError::NotAnElement(id)),
        }
    }

    // ---- structure ------------------------------------------------------

    /// Returns `true` if `ancestor` is `node` or one of its ancestors.
    pub fn is_ancestor_or_self(&self, ancestor: NodeId, node: NodeId) -> Result<bool, DomError> {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if n == ancestor {
                return Ok(true);
            }
            cur = self.parent(n)?;
        }
        Ok(false)
    }

    /// Appends detached node `child` as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<(), DomError> {
        let len = self.get(parent)?.children.len();
        self.insert_child(parent, len, child)
    }

    /// Inserts detached node `child` at `index` among `parent`'s children.
    pub fn insert_child(
        &mut self,
        parent: NodeId,
        index: usize,
        child: NodeId,
    ) -> Result<(), DomError> {
        let parent_data = self.get(parent)?;
        if !parent_data.kind.is_container() {
            return Err(DomError::NotAContainer(parent));
        }
        let len = parent_data.children.len();
        if index > len {
            return Err(DomError::IndexOutOfBounds { index, len });
        }
        let child_data = self.get(child)?;
        if child_data.parent.is_some() {
            return Err(DomError::StillAttached(child));
        }
        if matches!(child_data.kind, NodeKind::Document) {
            return Err(DomError::NotAnElement(child));
        }
        if self.is_ancestor_or_self(child, parent)? {
            return Err(DomError::WouldCreateCycle {
                node: child,
                parent,
            });
        }
        // Only one root element under the document node.
        if parent.index == 0 && child_data.kind.is_element() && self.root_element().is_some() {
            return Err(DomError::SecondRootElement);
        }
        self.get_mut(child)?.parent = Some(parent);
        self.get_mut(parent)?.children.insert(index, child);
        Ok(())
    }

    /// Detaches `node` from its parent, keeping it (and its subtree) alive.
    pub fn detach(&mut self, node: NodeId) -> Result<(), DomError> {
        let parent = self.get(node)?.parent;
        if let Some(p) = parent {
            let siblings = &mut self.get_mut(p)?.children;
            siblings.retain(|&c| c != node);
            self.get_mut(node)?.parent = None;
        }
        Ok(())
    }

    /// Removes `node` and its entire subtree, freeing the arena slots.
    pub fn remove(&mut self, node: NodeId) -> Result<(), DomError> {
        if node.index == 0 {
            return Err(DomError::NotAnElement(node));
        }
        self.detach(node)?;
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            let data = self.get_mut(n)?;
            data.alive = false;
            data.generation = data.generation.wrapping_add(1);
            stack.extend(std::mem::take(&mut data.children));
            self.free.push(n.index);
        }
        Ok(())
    }

    /// Deep-copies the subtree rooted at `node` (which may live in another
    /// document) into `self`, returning the detached copy's id.
    pub fn import_subtree(&mut self, source: &Document, node: NodeId) -> Result<NodeId, DomError> {
        let data = source.get(node)?;
        let copy = self.alloc(data.kind.clone());
        let children = data.children.clone();
        for child in children {
            let child_copy = self.import_subtree(source, child)?;
            // Document-node restriction does not apply to detached copies.
            self.get_mut(child_copy)?.parent = Some(copy);
            self.get_mut(copy)?.children.push(child_copy);
        }
        Ok(copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_with_root(name: &str) -> (Document, NodeId) {
        let mut d = Document::new();
        let root = d.create_element(name).unwrap();
        let doc_node = d.document_node();
        d.append_child(doc_node, root).unwrap();
        (d, root)
    }

    #[test]
    fn new_document_is_empty() {
        let d = Document::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 1);
        assert!(d.root_element().is_none());
    }

    #[test]
    fn build_small_tree() {
        let (mut d, root) = doc_with_root("purchaseOrder");
        let ship = d.create_element("shipTo").unwrap();
        d.append_child(root, ship).unwrap();
        let name = d.create_element("name").unwrap();
        d.append_child(ship, name).unwrap();
        let text = d.create_text("Alice Smith");
        d.append_child(name, text).unwrap();

        assert_eq!(d.root_element(), Some(root));
        assert_eq!(d.tag_name(ship).unwrap(), "shipTo");
        assert_eq!(d.text_content(root).unwrap(), "Alice Smith");
        assert_eq!(d.parent(name).unwrap(), Some(ship));
        assert_eq!(d.child_count(root).unwrap(), 1);
    }

    #[test]
    fn attributes_set_replace_remove() {
        let (mut d, root) = doc_with_root("shipTo");
        d.set_attribute(root, "country", "US").unwrap();
        assert_eq!(d.attribute(root, "country").unwrap(), Some("US"));
        d.set_attribute(root, "country", "DE").unwrap();
        assert_eq!(d.attribute(root, "country").unwrap(), Some("DE"));
        assert_eq!(d.attributes(root).unwrap().len(), 1);
        assert_eq!(
            d.remove_attribute(root, "country").unwrap(),
            Some("DE".into())
        );
        assert_eq!(d.attribute(root, "country").unwrap(), None);
    }

    #[test]
    fn replace_attributes_restores_order() {
        let (mut d, root) = doc_with_root("item");
        d.set_attribute(root, "partNum", "926-AA").unwrap();
        d.set_attribute(root, "extra", "x").unwrap();
        let saved = d.attributes(root).unwrap().to_vec();
        d.remove_attribute(root, "partNum").unwrap();
        d.set_attribute(root, "partNum", "mangled").unwrap();
        // partNum is now *last*; replace restores the original order.
        let mangled = d.replace_attributes(root, saved.clone()).unwrap();
        assert_eq!(mangled[0].name, "extra");
        assert_eq!(mangled[1].value, "mangled");
        assert_eq!(d.attributes(root).unwrap(), &saved[..]);
        assert!(matches!(
            d.replace_attributes(
                root,
                vec![Attribute {
                    name: "a b".into(),
                    value: "v".into()
                }]
            ),
            Err(DomError::BadName(_))
        ));
    }

    #[test]
    fn bad_names_rejected() {
        let mut d = Document::new();
        assert!(matches!(
            d.create_element("1bad"),
            Err(DomError::BadName(_))
        ));
        let (mut d, root) = doc_with_root("ok");
        assert!(matches!(
            d.set_attribute(root, "a b", "v"),
            Err(DomError::BadName(_))
        ));
    }

    #[test]
    fn second_root_element_rejected() {
        let (mut d, _root) = doc_with_root("a");
        let b = d.create_element("b").unwrap();
        let doc_node = d.document_node();
        assert_eq!(
            d.append_child(doc_node, b),
            Err(DomError::SecondRootElement)
        );
        // but comments are fine at top level
        let c = d.create_comment("hi");
        d.append_child(doc_node, c).unwrap();
    }

    #[test]
    fn cycle_detection() {
        let (mut d, root) = doc_with_root("a");
        let child = d.create_element("b").unwrap();
        d.append_child(root, child).unwrap();
        d.detach(root).unwrap();
        assert!(matches!(
            d.append_child(child, root),
            Err(DomError::WouldCreateCycle { .. })
        ));
    }

    #[test]
    fn double_attach_rejected() {
        let (mut d, root) = doc_with_root("a");
        let child = d.create_element("b").unwrap();
        d.append_child(root, child).unwrap();
        assert_eq!(
            d.append_child(root, child),
            Err(DomError::StillAttached(child))
        );
    }

    #[test]
    fn remove_frees_subtree_and_invalidates_ids() {
        let (mut d, root) = doc_with_root("a");
        let child = d.create_element("b").unwrap();
        d.append_child(root, child).unwrap();
        let grand = d.create_text("t");
        d.append_child(child, grand).unwrap();
        let before = d.len();
        d.remove(child).unwrap();
        assert_eq!(d.len(), before - 2);
        assert!(matches!(d.kind(child), Err(DomError::StaleNode(_))));
        assert!(matches!(d.kind(grand), Err(DomError::StaleNode(_))));
        // slot reuse gets a fresh generation
        let reused = d.create_element("c").unwrap();
        assert_ne!(reused, child);
        assert!(d.kind(reused).is_ok());
    }

    #[test]
    fn detach_and_reinsert_elsewhere() {
        let (mut d, root) = doc_with_root("a");
        let x = d.create_element("x").unwrap();
        let y = d.create_element("y").unwrap();
        d.append_child(root, x).unwrap();
        d.append_child(root, y).unwrap();
        d.detach(x).unwrap();
        d.append_child(y, x).unwrap();
        assert_eq!(d.parent(x).unwrap(), Some(y));
        assert_eq!(d.child_vec(root).unwrap(), vec![y]);
    }

    #[test]
    fn insert_child_positions() {
        let (mut d, root) = doc_with_root("a");
        let x = d.create_element("x").unwrap();
        let y = d.create_element("y").unwrap();
        let z = d.create_element("z").unwrap();
        d.append_child(root, x).unwrap();
        d.append_child(root, z).unwrap();
        d.insert_child(root, 1, y).unwrap();
        let names: Vec<_> = d
            .child_vec(root)
            .unwrap()
            .into_iter()
            .map(|c| d.tag_name(c).unwrap().to_string())
            .collect();
        assert_eq!(names, ["x", "y", "z"]);
        let w = d.create_element("w").unwrap();
        assert!(matches!(
            d.insert_child(root, 9, w),
            Err(DomError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn import_subtree_deep_copies() {
        let (mut src, root) = doc_with_root("a");
        let child = src.create_element("b").unwrap();
        src.set_attribute(child, "k", "v").unwrap();
        src.append_child(root, child).unwrap();
        let t = src.create_text("hello");
        src.append_child(child, t).unwrap();

        let mut dst = Document::new();
        let copy = dst.import_subtree(&src, root).unwrap();
        assert_eq!(dst.tag_name(copy).unwrap(), "a");
        let b = dst.child_element_named(copy, "b").unwrap();
        assert_eq!(dst.attribute(b, "k").unwrap(), Some("v"));
        assert_eq!(dst.text_content(copy).unwrap(), "hello");
        // mutation of the copy does not affect the source
        dst.set_attribute(b, "k", "w").unwrap();
        let src_b = src.child_element_named(root, "b").unwrap();
        assert_eq!(src.attribute(src_b, "k").unwrap(), Some("v"));
    }

    #[test]
    fn child_element_named_skips_text() {
        let (mut d, root) = doc_with_root("a");
        let t = d.create_text("noise");
        d.append_child(root, t).unwrap();
        let b = d.create_element("b").unwrap();
        d.append_child(root, b).unwrap();
        assert_eq!(d.child_element_named(root, "b"), Some(b));
        assert_eq!(d.child_element_named(root, "zzz"), None);
    }
}
