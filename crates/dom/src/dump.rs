//! Structural tree dumps, reproducing the paper's Fig. 4 style: the DOM
//! representation of a document fragment as a labelled tree.

use std::fmt::Write as _;

use crate::document::{Document, NodeId};
use crate::error::DomError;
use crate::node::NodeKind;

/// Renders the subtree at `node` as an indented structural dump.
///
/// Each element line shows the generic interface name (`Element`) plus the
/// tag name and attributes — matching the paper's point that in plain DOM
/// *every* node is just an `Element`. The typed dump in the `vdom` crate
/// contrasts with this by printing the generated interface names (Fig. 7).
pub fn dump_tree(doc: &Document, node: NodeId) -> Result<String, DomError> {
    let mut out = String::new();
    dump_into(doc, node, 0, &mut out)?;
    Ok(out)
}

fn dump_into(doc: &Document, node: NodeId, depth: usize, out: &mut String) -> Result<(), DomError> {
    for _ in 0..depth {
        out.push_str("  ");
    }
    match doc.kind(node)? {
        NodeKind::Document => out.push_str("Document\n"),
        NodeKind::Element { name, attributes } => {
            let _ = write!(out, "Element \"{name}\"");
            for a in attributes {
                let _ = write!(out, " {}={:?}", a.name, a.value);
            }
            out.push('\n');
        }
        NodeKind::Text(t) => {
            let _ = writeln!(out, "Text {:?}", t);
        }
        NodeKind::Comment(c) => {
            let _ = writeln!(out, "Comment {:?}", c);
        }
        NodeKind::ProcessingInstruction { target, .. } => {
            let _ = writeln!(out, "PI {:?}", target);
        }
    }
    for child in doc.child_vec(node)? {
        dump_into(doc, child, depth + 1, out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_shows_generic_element_interface() {
        let mut d = Document::new();
        let root = d.create_element("purchaseOrder").unwrap();
        d.set_attribute(root, "orderDate", "1999-10-20").unwrap();
        let ship = d.create_element("shipTo").unwrap();
        d.append_child(root, ship).unwrap();
        let t = d.create_text("x");
        d.append_child(ship, t).unwrap();

        let dump = dump_tree(&d, root).unwrap();
        assert_eq!(
            dump,
            "Element \"purchaseOrder\" orderDate=\"1999-10-20\"\n  Element \"shipTo\"\n    Text \"x\"\n"
        );
    }
}
