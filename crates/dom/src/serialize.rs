//! Serialization of documents and subtrees back to XML text.

use std::fmt::Write as _;

use xmlchars::{escape_attribute, escape_text};

use crate::document::{Document, NodeId};
use crate::error::DomError;
use crate::node::NodeKind;

/// Options controlling serialization.
#[derive(Debug, Clone, Default)]
pub struct SerializeOptions {
    /// Emit an `<?xml version="1.0"?>` declaration before the root.
    pub xml_declaration: bool,
    /// Pretty-print with the given indent string (`None` = compact).
    pub indent: Option<String>,
}

/// Serializes the subtree at `node` compactly (no added whitespace).
pub fn serialize(doc: &Document, node: NodeId) -> Result<String, DomError> {
    serialize_with(doc, node, &SerializeOptions::default())
}

/// Serializes the subtree at `node` with two-space pretty printing.
///
/// Elements with *element-only* content are broken across lines; elements
/// containing any text are kept inline so mixed content round-trips
/// faithfully.
pub fn serialize_pretty(doc: &Document, node: NodeId) -> Result<String, DomError> {
    serialize_with(
        doc,
        node,
        &SerializeOptions {
            xml_declaration: false,
            indent: Some("  ".to_string()),
        },
    )
}

/// Serializes the subtree at `node` with explicit options.
pub fn serialize_with(
    doc: &Document,
    node: NodeId,
    options: &SerializeOptions,
) -> Result<String, DomError> {
    let mut out = String::new();
    if options.xml_declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    write_node(doc, node, options, 0, &mut out)?;
    Ok(out)
}

fn has_text_child(doc: &Document, node: NodeId) -> bool {
    doc.children(node)
        .any(|c| matches!(doc.kind(c), Ok(NodeKind::Text(_))))
}

fn write_node(
    doc: &Document,
    node: NodeId,
    options: &SerializeOptions,
    depth: usize,
    out: &mut String,
) -> Result<(), DomError> {
    match doc.kind(node)? {
        NodeKind::Document => {
            let children = doc.child_vec(node)?;
            for (i, child) in children.iter().enumerate() {
                if i > 0 && options.indent.is_some() {
                    out.push('\n');
                }
                write_node(doc, *child, options, depth, out)?;
            }
            Ok(())
        }
        NodeKind::Element { name, attributes } => {
            out.push('<');
            out.push_str(name);
            for attr in attributes {
                let _ = write!(out, " {}=\"{}\"", attr.name, escape_attribute(&attr.value));
            }
            let children = doc.child_vec(node)?;
            if children.is_empty() {
                out.push_str("/>");
                return Ok(());
            }
            out.push('>');
            let inline = options.indent.is_none() || has_text_child(doc, node);
            if inline {
                for child in &children {
                    write_node(doc, *child, options, depth + 1, out)?;
                }
            } else {
                let indent = options.indent.as_deref().unwrap_or("");
                for child in &children {
                    out.push('\n');
                    for _ in 0..=depth {
                        out.push_str(indent);
                    }
                    write_node(doc, *child, options, depth + 1, out)?;
                }
                out.push('\n');
                for _ in 0..depth {
                    out.push_str(indent);
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
            Ok(())
        }
        NodeKind::Text(t) => {
            out.push_str(&escape_text(t));
            Ok(())
        }
        NodeKind::Comment(c) => {
            let _ = write!(out, "<!--{c}-->");
            Ok(())
        }
        NodeKind::ProcessingInstruction { target, data } => {
            if data.is_empty() {
                let _ = write!(out, "<?{target}?>");
            } else {
                let _ = write!(out, "<?{target} {data}?>");
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn po_fragment() -> (Document, NodeId) {
        let mut d = Document::new();
        let root = d.create_element("shipTo").unwrap();
        d.set_attribute(root, "country", "US").unwrap();
        let dn = d.document_node();
        d.append_child(dn, root).unwrap();
        let name = d.create_element("name").unwrap();
        d.append_child(root, name).unwrap();
        let t = d.create_text("Alice & Bob <Smith>");
        d.append_child(name, t).unwrap();
        let zip = d.create_element("zip").unwrap();
        d.append_child(root, zip).unwrap();
        (d, root)
    }

    #[test]
    fn compact_serialization() {
        let (d, root) = po_fragment();
        assert_eq!(
            serialize(&d, root).unwrap(),
            "<shipTo country=\"US\"><name>Alice &amp; Bob &lt;Smith&gt;</name><zip/></shipTo>"
        );
    }

    #[test]
    fn pretty_serialization_indents_element_content() {
        let (d, root) = po_fragment();
        let pretty = serialize_pretty(&d, root).unwrap();
        assert_eq!(
            pretty,
            "<shipTo country=\"US\">\n  <name>Alice &amp; Bob &lt;Smith&gt;</name>\n  <zip/>\n</shipTo>"
        );
    }

    #[test]
    fn attribute_values_escaped() {
        let mut d = Document::new();
        let e = d.create_element("x").unwrap();
        d.set_attribute(e, "v", "a\"b<c&d").unwrap();
        assert_eq!(serialize(&d, e).unwrap(), "<x v=\"a&quot;b&lt;c&amp;d\"/>");
    }

    #[test]
    fn comments_and_pis_serialize() {
        let mut d = Document::new();
        let e = d.create_element("x").unwrap();
        let c = d.create_comment(" note ");
        d.append_child(e, c).unwrap();
        let pi = d.create_pi("php", "echo 1;").unwrap();
        d.append_child(e, pi).unwrap();
        assert_eq!(
            serialize(&d, e).unwrap(),
            "<x><!-- note --><?php echo 1;?></x>"
        );
    }

    #[test]
    fn xml_declaration_option() {
        let (d, _root) = po_fragment();
        let out = serialize_with(
            &d,
            d.document_node(),
            &SerializeOptions {
                xml_declaration: true,
                indent: None,
            },
        )
        .unwrap();
        assert!(out.starts_with("<?xml version=\"1.0\""));
    }

    #[test]
    fn mixed_content_stays_inline_when_pretty() {
        let mut d = Document::new();
        let p = d.create_element("p").unwrap();
        let t1 = d.create_text("hello ");
        d.append_child(p, t1).unwrap();
        let b = d.create_element("b").unwrap();
        d.append_child(p, b).unwrap();
        let bt = d.create_text("world");
        d.append_child(b, bt).unwrap();
        assert_eq!(
            serialize_pretty(&d, p).unwrap(),
            "<p>hello <b>world</b></p>"
        );
    }
}
