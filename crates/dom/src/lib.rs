//! A generic Document Object Model, the substrate the paper's V-DOM
//! extends (Sect. 2, Fig. 4).
//!
//! The model mirrors DOM Level 1's structure — a document owning a tree of
//! element, text, comment and processing-instruction nodes with string
//! attributes — but uses an **arena** representation: all nodes live in a
//! `Vec` inside [`Document`] and are addressed by copyable [`NodeId`]
//! handles. This avoids `Rc<RefCell<…>>` cycles, keeps nodes contiguous in
//! memory, and makes the typed layer in the `vdom` crate cheap (a typed
//! handle is a `NodeId` plus a schema component reference).
//!
//! Like DOM's `Element` interface, nodes here are *unityped*: nothing stops
//! a caller from appending a `zip` element under `items`. That is exactly
//! the deficiency the paper's V-DOM corrects; the runtime `validator` crate
//! and the typed `vdom` crate both build on this one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod document;
pub mod dump;
pub mod error;
pub mod node;
pub mod serialize;
pub mod traversal;

pub use document::{Document, NodeId};
pub use dump::dump_tree;
pub use error::DomError;
pub use node::{Attribute, NodeKind};
pub use serialize::{serialize, serialize_pretty, SerializeOptions};
