//! Tree traversal helpers: depth-first iteration, ancestor walks, and
//! element search, all non-recursive so deep documents cannot overflow the
//! stack.

use crate::document::{Document, NodeId};
use crate::node::NodeKind;

/// Iterator over a subtree in document order (pre-order DFS), including
/// the starting node.
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let next = self.stack.pop()?;
        if let Ok(children) = self.doc.child_vec(next) {
            self.stack.extend(children.into_iter().rev());
        }
        Some(next)
    }
}

/// Iterator over the ancestors of a node, starting with its parent.
pub struct Ancestors<'a> {
    doc: &'a Document,
    current: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let current = self.current?;
        let parent = self.doc.parent(current).ok().flatten();
        self.current = parent;
        parent
    }
}

impl Document {
    /// Pre-order depth-first traversal of the subtree rooted at `root`,
    /// including `root` itself.
    pub fn descendants(&self, root: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![root],
        }
    }

    /// The ancestors of `node`, nearest first (excluding `node`).
    pub fn ancestors(&self, node: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            current: Some(node),
        }
    }

    /// All descendant elements with the given tag name, in document order.
    pub fn elements_named<'a>(
        &'a self,
        root: NodeId,
        name: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.descendants(root).filter(move |&n| {
            matches!(self.kind(n), Ok(NodeKind::Element { name: tag, .. }) if tag == name)
        })
    }

    /// Depth of `node` below the document node (document node = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.ancestors(node).count()
    }

    /// Resolves a namespace prefix at `node` by scanning `xmlns`/`xmlns:p`
    /// attributes on the node and its ancestors, nearest first.
    ///
    /// `prefix = None` looks up the default namespace. Returns `None` when
    /// no declaration is in scope (or the default namespace is undeclared
    /// via `xmlns=""`).
    pub fn namespace_of_prefix(&self, node: NodeId, prefix: Option<&str>) -> Option<String> {
        let attr_name = match prefix {
            Some(p) => format!("xmlns:{p}"),
            None => "xmlns".to_string(),
        };
        let mut current = Some(node);
        while let Some(n) = current {
            if let Ok(Some(uri)) = self.attribute(n, &attr_name) {
                if uri.is_empty() {
                    return None;
                }
                return Some(uri.to_string());
            }
            current = self.parent(n).ok().flatten();
        }
        // The xml prefix is implicitly bound.
        if prefix == Some("xml") {
            return Some("http://www.w3.org/XML/1998/namespace".to_string());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let root = d.create_element("root").unwrap();
        let dn = d.document_node();
        d.append_child(dn, root).unwrap();
        let a = d.create_element("a").unwrap();
        let b = d.create_element("b").unwrap();
        d.append_child(root, a).unwrap();
        d.append_child(root, b).unwrap();
        let inner = d.create_element("a").unwrap();
        d.append_child(b, inner).unwrap();
        (d, root, a, b)
    }

    #[test]
    fn descendants_in_document_order() {
        let (d, root, a, b) = sample();
        let names: Vec<_> = d
            .descendants(root)
            .map(|n| d.tag_name(n).unwrap().to_string())
            .collect();
        assert_eq!(names, ["root", "a", "b", "a"]);
        let _ = (a, b);
    }

    #[test]
    fn ancestors_nearest_first() {
        let (d, root, _a, b) = sample();
        let inner = d.child_elements(b).next().unwrap();
        let chain: Vec<_> = d.ancestors(inner).collect();
        assert_eq!(chain[0], b);
        assert_eq!(chain[1], root);
        assert_eq!(chain[2], d.document_node());
        assert_eq!(chain.len(), 3);
    }

    #[test]
    fn elements_named_finds_all() {
        let (d, root, _a, _b) = sample();
        assert_eq!(d.elements_named(root, "a").count(), 2);
        assert_eq!(d.elements_named(root, "b").count(), 1);
        assert_eq!(d.elements_named(root, "zzz").count(), 0);
    }

    #[test]
    fn depth_counts_levels() {
        let (d, root, a, b) = sample();
        assert_eq!(d.depth(root), 1);
        assert_eq!(d.depth(a), 2);
        let inner = d.child_elements(b).next().unwrap();
        assert_eq!(d.depth(inner), 3);
    }

    #[test]
    fn namespace_resolution_walks_ancestors() {
        let mut d = Document::new();
        let root = d.create_element("root").unwrap();
        let dn = d.document_node();
        d.append_child(dn, root).unwrap();
        d.set_attribute(root, "xmlns", "urn:default").unwrap();
        d.set_attribute(root, "xmlns:x", "urn:x").unwrap();
        let child = d.create_element("c").unwrap();
        d.append_child(root, child).unwrap();

        assert_eq!(
            d.namespace_of_prefix(child, None),
            Some("urn:default".to_string())
        );
        assert_eq!(
            d.namespace_of_prefix(child, Some("x")),
            Some("urn:x".into())
        );
        assert_eq!(d.namespace_of_prefix(child, Some("y")), None);
        assert_eq!(
            d.namespace_of_prefix(child, Some("xml")),
            Some("http://www.w3.org/XML/1998/namespace".into())
        );

        // xmlns="" undeclares the default
        d.set_attribute(child, "xmlns", "").unwrap();
        assert_eq!(d.namespace_of_prefix(child, None), None);
    }
}
