//! Property tests for the arena DOM: structural invariants hold under
//! random mutation sequences, and serialization round-trips.

use dom::{Document, NodeId};
use proptest::prelude::*;

/// A random mutation script.
#[derive(Debug, Clone)]
enum Op {
    CreateElement(u8),
    CreateText(String),
    Append { parent: u8, child: u8 },
    Detach(u8),
    Remove(u8),
    SetAttr { node: u8, key: u8, value: String },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(Op::CreateElement),
        "[a-z ]{0,8}".prop_map(Op::CreateText),
        (0u8..24, 0u8..24).prop_map(|(parent, child)| Op::Append { parent, child }),
        (0u8..24).prop_map(Op::Detach),
        (0u8..24).prop_map(Op::Remove),
        (0u8..24, 0u8..4, "[a-z]{0,6}").prop_map(|(node, key, value)| Op::SetAttr {
            node,
            key,
            value
        }),
    ]
}

/// Checks parent/child link consistency over all live nodes.
fn check_invariants(doc: &Document, nodes: &[NodeId]) {
    for &n in nodes {
        let Ok(kind) = doc.kind(n) else { continue };
        let _ = kind;
        // every child's parent is n
        for c in doc.child_vec(n).unwrap() {
            assert_eq!(doc.parent(c).unwrap(), Some(n));
        }
        // if attached, n appears exactly once among its parent's children
        if let Some(p) = doc.parent(n).unwrap() {
            let count = doc.children(p).filter(|&c| c == n).count();
            assert_eq!(count, 1);
        }
        // no cycles: walking up terminates (is_ancestor_or_self proves it)
        assert!(doc.is_ancestor_or_self(n, n).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_mutations_preserve_invariants(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut doc = Document::new();
        let mut nodes: Vec<NodeId> = vec![doc.document_node()];
        for op in ops {
            match op {
                Op::CreateElement(i) => {
                    let name = format!("el{i}");
                    nodes.push(doc.create_element(name).unwrap());
                }
                Op::CreateText(t) => nodes.push(doc.create_text(t)),
                Op::Append { parent, child } => {
                    let (pi, ci) = (parent as usize % nodes.len(), child as usize % nodes.len());
                    let _ = doc.append_child(nodes[pi], nodes[ci]); // may legitimately fail
                }
                Op::Detach(i) => {
                    let n = nodes[i as usize % nodes.len()];
                    let _ = doc.detach(n);
                }
                Op::Remove(i) => {
                    let n = nodes[i as usize % nodes.len()];
                    let _ = doc.remove(n);
                }
                Op::SetAttr { node, key, value } => {
                    let n = nodes[node as usize % nodes.len()];
                    if !value.is_empty() {
                        let _ = doc.set_attribute(n, format!("k{key}"), value);
                    }
                }
            }
            check_invariants(&doc, &nodes);
        }
    }

    #[test]
    fn serialize_parse_serialize_is_stable(
        names in prop::collection::vec("[a-z]{1,6}", 1..8),
        texts in prop::collection::vec("[a-zA-Z <>&\"']{0,10}", 1..8),
    ) {
        // build a random two-level tree
        let mut doc = Document::new();
        let root = doc.create_element("root").unwrap();
        let dn = doc.document_node();
        doc.append_child(dn, root).unwrap();
        for (i, name) in names.iter().enumerate() {
            let el = doc.create_element(name.as_str()).unwrap();
            doc.append_child(root, el).unwrap();
            // empty text nodes serialize invisibly, so skip them
            if let Some(t) = texts.get(i).filter(|t| !t.is_empty()) {
                let tn = doc.create_text(t.clone());
                doc.append_child(el, tn).unwrap();
            }
        }
        let once = dom::serialize(&doc, root).unwrap();
        let reparsed = xmlparse::parse_document(&once).unwrap();
        let twice = dom::serialize(&reparsed, reparsed.root_element().unwrap()).unwrap();
        prop_assert_eq!(once, twice);
    }
}
