#!/usr/bin/env bash
# Full local verification: the tier-1 gate (ROADMAP.md) plus formatting
# and lint walls. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo build --release -p examples --bins"
cargo build --release -p examples --bins

echo "==> xmlstat smoke run"
out="$(cargo run -q --release -p examples --bin xmlstat)"
for needle in "xmlparse_events_total" "schema_compile_seconds" \
    "validator_tree_seconds" "validator_stream_seconds" \
    "pxml_templates_checked_total" "registry_validate_seconds" \
    "# TYPE xmlparse_events_total counter"; do
  if ! grep -q "$needle" <<<"$out"; then
    echo "xmlstat output is missing '$needle'" >&2
    exit 1
  fi
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> verify OK"
