#!/usr/bin/env bash
# Full local verification: the tier-1 gate (ROADMAP.md) plus formatting
# and lint walls. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> verify OK"
