#!/usr/bin/env bash
# Full local verification: the tier-1 gate (ROADMAP.md) plus formatting
# and lint walls. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> zero-copy pipeline gates (allocation smoke + differential props)"
# The alloc smoke asserts 0 heap allocations per event on entity-free
# documents; the zero-copy props hold borrowed ≡ owned event streams and
# streaming ≡ tree validation across the corpora.
cargo test -q -p integration-tests --test alloc_smoke --test zero_copy_prop

echo "==> cargo build --release -p examples --bins"
cargo build --release -p examples --bins

echo "==> xmlstat smoke run"
out="$(cargo run -q --release -p examples --bin xmlstat)"
for needle in "xmlparse_events_total" "schema_compile_seconds" \
    "validator_tree_seconds" "validator_stream_seconds" \
    "pxml_templates_checked_total" "registry_validate_seconds" \
    "borrowed_events_total" "owned_fallback_total" \
    "symbols_interned_total" "symbol_table_bytes" \
    "# TYPE xmlparse_events_total counter"; do
  if ! grep -q "$needle" <<<"$out"; then
    echo "xmlstat output is missing '$needle'" >&2
    exit 1
  fi
done

echo "==> xmldiag smoke run (flight recorder + Chrome trace golden gate)"
# xmldiag self-validates its Chrome export before writing it (strict B/E
# nesting per thread, required ph/ts/pid/tid fields, zero orphaned
# parent links) and asserts every pool-worker span parents into the
# export, so the smoke run IS the trace-format gate; the greps below
# pin the wide-event and summary surfaces on top.
trace_out="$(mktemp /tmp/xmldiag_trace.XXXXXX.json)"
out="$(cargo run -q --release -p examples --bin xmldiag -- --chrome "$trace_out")"
for needle in "wide event: entry=stream" "outcome=valid" "outcome=malformed" \
    "== trace phases (top-down) ==" "pool.queue_wait" "validate.stream" \
    "== quantile estimates (from histogram buckets) ==" \
    "chrome trace OK"; do
  if ! grep -q "$needle" <<<"$out"; then
    echo "xmldiag output is missing '$needle'" >&2
    exit 1
  fi
done
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$trace_out" 2>/dev/null \
  || { echo "exported Chrome trace is not valid JSON" >&2; exit 1; }
rm -f "$trace_out"

echo "==> trace export gate (ctx propagation at 1/2/8 threads + wraparound + golden)"
cargo test -q -p integration-tests --test trace_export

echo "==> parallel stress pass (RUST_TEST_THREADS=8)"
# Run the concurrency-sensitive suites with 8 test threads so the
# parallel validator, the DFA intern table, and the obs aggregation race
# against each other as hard as this host allows.
RUST_TEST_THREADS=8 cargo test -q -p integration-tests \
  --test parallel_prop --test intern_stress --test obs_metrics
RUST_TEST_THREADS=8 cargo test -q -p pool -p webgen registry

echo "==> 32-thread parallel smoke on the corpora"
out="$(cargo run -q --release -p examples --bin parallel_batch -- 32)"
for needle in "threads=32" "pool_steals_total" "pool_queue_wait_seconds" \
    "schema_dfa_compiled_total"; do
  if ! grep -q "$needle" <<<"$out"; then
    echo "parallel_batch output is missing '$needle'" >&2
    exit 1
  fi
done
if grep -q "invalid, threads=32" <<<"$out" && ! grep -q " 0 invalid, threads=32" <<<"$out"; then
  echo "parallel_batch reported invalid documents on a valid corpus" >&2
  exit 1
fi

echo "==> hostile corpus pass (wall-clock bounded)"
# Every committed adversarial document must be rejected with a typed
# ResourceError inside its latency budget; `timeout` is a belt-and-braces
# wall-clock ceiling on the whole battery in case a limit regresses into
# a hang instead of a slow rejection.
timeout 120 cargo test -q -p integration-tests --test hostile_corpus

echo "==> governance gates (differential props + deterministic fuzz smoke)"
# limits_prop holds default ≡ unbounded on legitimate corpora and
# tight-budget runs ≡ prefix-plus-marker; fuzz_smoke drives fixed-seed
# LCG-mangled documents through the governed validator (no panic, no
# error-list overshoot, bounded per-document latency) and re-feeds every
# mangled document chunk-wise at LCG-chosen cut points, asserting the
# chunked verdict matches the whole-input one.
timeout 300 cargo test -q -p integration-tests --test limits_prop --test fuzz_smoke

echo "==> EOL conformance pass (CRLF/CR corpora + chunk-boundary props)"
# eol_prop re-encodes the corpora and generated documents with CRLF and
# lone-CR line endings and holds parse/validation results identical to
# the LF originals (XML 1.0 §2.11), then splits documents at random byte
# positions — inside tags, entities, \r\n pairs, UTF-8 sequences — and
# holds the FeedReader event stream equal to the whole-input parse.
timeout 300 cargo test -q -p integration-tests --test eol_prop

echo "==> hardened batch smoke (typed rejection + cancellation metrics)"
out="$(timeout 120 cargo run -q --release -p examples --bin hardened_batch)"
for needle in "limit_trips_total" "docs_rejected_total" "batch_cancelled_total" \
    "TooManyExpansions" "TooManyAttributes" "DepthExceeded"; do
  if ! grep -q "$needle" <<<"$out"; then
    echo "hardened_batch output is missing '$needle'" >&2
    exit 1
  fi
done

echo "==> HTTP serving gate (socket-level conformance + torture + drain)"
# The conformance battery holds HTTP verdicts byte-equivalent to the
# library's streaming validator across the corpus; the torture battery
# throws malformed requests, slowloris drips, chunk-boundary splits and
# oversized lengths at the wire layer; the drain tests complete in-flight
# work at 2 and 8 workers; the metrics binary reconciles exported
# counters against the exact traffic sent.
timeout 120 cargo test -q -p serve
timeout 300 cargo test -q -p integration-tests \
  --test http_e2e --test http_torture --test http_drain --test http_metrics

echo "==> xmlserved smoke run (boot on an ephemeral port + scripted sweep)"
# Boots the service end-to-end as a process and drives the request sweep
# over loopback: valid/invalid/hostile documents, an oversized declared
# length refused before the body is read, a batch, a schema hot-swap,
# and a /metrics scrape — the binary exits non-zero on any unexpected
# status, and `timeout` bounds the whole boot-serve-drain cycle.
out="$(timeout 120 cargo run -q --release -p examples --bin xmlserved -- --self-test)"
for needle in "hostile document typed rejection -> 422" \
    "oversized declared length refused before read -> 413" \
    "schema hot-swap -> 200" "malformed request line -> 400" \
    'metrics export http_requests_total{code="200"}' \
    "self-test ok: graceful drain" "xmlserved self-test OK"; do
  if ! grep -qF "$needle" <<<"$out"; then
    echo "xmlserved self-test output is missing '$needle'" >&2
    exit 1
  fi
done

echo "==> incremental revalidation gate (differential + hostile + resume audit + sessions)"
# patch_prop holds the incremental verdict (error kinds AND spans) equal
# to full revalidation over an independently patched tree across random
# patch sequences, with byte-identical rollback on rejection; resume_audit
# proves ContentDfa::resume behaviorally identical to stepping from state
# 0 at every split point of every corpus content model; patch_hostile
# throws metacharacters, unserializable comments/PIs, wrong-namespace
# QNames and patch floods at the validator; http_session drives the
# /v1/session endpoints socket-level including expiry, capacity and a
# drain that completes an in-flight patch.
timeout 300 cargo test -q -p integration-tests \
  --test patch_prop --test patch_hostile --test resume_audit --test http_session
timeout 120 cargo test -q -p validator patch
timeout 120 cargo test -q -p webgen session

echo "==> compiled template gate (plan ≡ interpreter differential battery)"
# The battery holds CompiledTemplate::render byte-identical to
# instantiate(...).to_xml() — or the identical typed error — across
# hostile values (markup metacharacters, ]]>, lone \r, empty strings),
# injected facet faults, fragment/pre-rendered splices, and occurrence
# overflows; the pxml and webgen suites pin the plan lowering, the
# registry plan cache, and the compiled page generators underneath.
timeout 120 cargo test -q -p pxml
timeout 120 cargo test -q -p integration-tests --test pxml_compile_prop
timeout 120 cargo test -q -p webgen compiled
timeout 120 cargo test -q -p webgen template

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> verify OK"
