//! Cross-crate integration tests live in this package's `tests/`
//! directory; see `tests/tests/figures.rs` for the figure-by-figure
//! reproduction of the paper's artifacts.
