//! Differential property tests for compiled templates: for every
//! template + bindings pair, `pxml::plan(...)` followed by
//! `CompiledTemplate::render` must produce exactly the bytes of
//! `pxml::instantiate(...)` followed by `Fragment::to_xml` — or reject
//! with the same typed error (single-fault inputs; the interpreter
//! validates bottom-up at seal, the compiled path in document order, so
//! only the first fault is contractually ordered).

use proptest::prelude::*;
use pxml::{Bindings, Template, TypeEnv};
use schema::corpus::{PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;
use webgen::{generate_order, OrderTemplates};

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

fn wml() -> CompiledSchema {
    CompiledSchema::parse(WML_XSD).unwrap()
}

/// Strings with every character class the escapers must handle: markup
/// metacharacters, `]]>`, lone carriage returns, quotes, emptiness.
fn hostile_text() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-zA-Z0-9 ]{0,12}",
        Just("<&>\"']]>".to_string()),
        Just("a]]>b".to_string()),
        Just("line\rreturn".to_string()),
        Just("\r".to_string()),
        Just(String::new()),
        "[^\\x00-\\x08\\x0b\\x0c\\x0e-\\x1f]{0,16}",
    ]
}

/// Optional hostile string (models optional comment fields).
fn maybe_text() -> impl Strategy<Value = Option<String>> {
    prop_oneof![Just(None), hostile_text().prop_map(Some)]
}

/// One compiled-vs-interpreted comparison on a template with text
/// bindings: identical bytes, or identical error messages.
fn assert_differential(
    compiled_schema: &CompiledSchema,
    source: &str,
    env: &TypeEnv,
    bindings: &Bindings,
) {
    let template = Template::parse(source).unwrap();
    let plan = pxml::plan(compiled_schema, &template, env).unwrap();
    let fast = plan.render_to_string(bindings);
    let slow = pxml::instantiate(compiled_schema, &template, bindings).and_then(|f| {
        f.to_xml()
            .map_err(|e| pxml::InstantiateError::Binding(format!("serialize: {e}")))
    });
    match (fast, slow) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "rendered bytes diverged"),
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "errors diverged"),
        (a, b) => panic!("one path accepted, the other rejected: compiled={a:?} interpreted={b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Orders with hostile values in every string-typed field render to
    /// identical bytes through the compiled path and the interpreter,
    /// and the page validates.
    #[test]
    fn compiled_orders_match_the_interpreter(
        seed in 0u64..500,
        items in 0usize..8,
        name in hostile_text(),
        street in hostile_text(),
        product in hostile_text(),
        order_comment in maybe_text(),
        item_comment in maybe_text(),
    ) {
        let c = po();
        let tpl = OrderTemplates::new(&c).unwrap();
        let mut order = generate_order(seed, items);
        order.ship_to.name = name;
        order.bill_to.street = street;
        order.comment = order_comment;
        if let Some(item) = order.items.first_mut() {
            item.product_name = product;
            item.comment = item_comment;
        }
        let fast = tpl.render_compiled(&order).unwrap();
        let slow = tpl.render_interpreted(&order).unwrap();
        prop_assert_eq!(&fast, &slow);
        if items == 0 {
            prop_assert!(fast.contains("<items/>"), "empty list must collapse: {}", fast);
        }
        let doc = xmlparse::parse_document(&fast).unwrap();
        prop_assert!(validator::validate_document(&c, &doc).is_empty());
    }

    /// A single injected fault (facet violation, bad date, bad SKU …)
    /// rejects both paths with the same typed error.
    #[test]
    fn single_faults_reject_identically(seed in 0u64..200, mutation in 0usize..5) {
        let c = po();
        let tpl = OrderTemplates::new(&c).unwrap();
        let mut order = generate_order(seed, 3);
        match mutation {
            0 => order.items[1].part_num = "no-sku".to_string(),
            1 => order.items[2].quantity = 100, // maxExclusive 100
            2 => order.items[0].us_price = "not a price".to_string(),
            3 => order.ship_to.zip = "zip?".to_string(),
            4 => order.order_date = "soon".to_string(),
            _ => unreachable!(),
        }
        let fast = tpl.render_compiled(&order).unwrap_err();
        let slow = tpl.render_interpreted(&order).unwrap_err();
        prop_assert_eq!(fast.to_string(), slow.to_string(), "mutation {}", mutation);
    }

    /// Attribute and simple-content holes with arbitrary values agree
    /// byte-for-byte (string-typed WML option rows, so any value is
    /// facet-legal and the comparison exercises pure escaping).
    #[test]
    fn wml_option_rows_agree(value in hostile_text(), label in hostile_text()) {
        let c = wml();
        let env = TypeEnv::new().text("v").text("l");
        let bindings = Bindings::new().text("v", value).text("l", label);
        assert_differential(&c, "<option value=\"$v$\">$l$</option>", &env, &bindings);
    }

    /// Multi-part attribute values (literal glue around two holes)
    /// agree: the URI facet either passes both or rejects both with the
    /// same error.
    #[test]
    fn interpolated_attributes_agree(host in "[a-z<&\" ]{0,8}", path in "[a-z%20 ]{0,8}") {
        let c = wml();
        let env = TypeEnv::new().text("host").text("path");
        let bindings = Bindings::new().text("host", host).text("path", path);
        assert_differential(
            &c,
            "<a href=\"http://$host$/media/$path$\">x</a>",
            &env,
            &bindings,
        );
    }

    /// Missing bindings reject both paths with the same message.
    #[test]
    fn missing_bindings_agree(which in 0usize..2) {
        let c = wml();
        let env = TypeEnv::new().text("v").text("l");
        let bindings = match which {
            0 => Bindings::new().text("l", "x"),
            1 => Bindings::new().text("v", "x"),
            _ => unreachable!(),
        };
        assert_differential(&c, "<option value=\"$v$\">$l$</option>", &env, &bindings);
    }
}

const SHIP_TO: &str = "<shipTo country=\"US\">$n$<street>s</street>\
     <city>c</city><state>st</state><zip>1</zip></shipTo>";

#[test]
fn fragment_splices_agree_with_the_interpreter() {
    let c = po();
    let env = TypeEnv::new().element("n", "name");
    let template = Template::parse(SHIP_TO).unwrap();
    let plan = pxml::plan(&c, &template, &env).unwrap();
    let name_t = Template::parse("<name>$who$</name>").unwrap();
    for who in ["Alice", "a<b&c\"", ""] {
        let frag = pxml::instantiate(&c, &name_t, &Bindings::new().text("who", who)).unwrap();
        let slow = pxml::instantiate(&c, &template, &Bindings::new().fragment("n", frag.clone()))
            .unwrap()
            .to_xml()
            .unwrap();
        // Fragment value and its pre-rendered form agree with the oracle
        let fast = plan
            .render_to_string(&Bindings::new().fragment("n", frag.clone()))
            .unwrap();
        assert_eq!(fast, slow, "who={who:?}");
        let rendered = frag.to_rendered().unwrap();
        let fast = plan
            .render_to_string(&Bindings::new().rendered("n", rendered))
            .unwrap();
        assert_eq!(fast, slow, "pre-rendered, who={who:?}");
    }
}

#[test]
fn occurrence_violations_agree_with_the_interpreter() {
    let c = po();
    let source = "<purchaseOrder orderDate=\"1999-10-20\">\
         <shipTo country=\"US\"><name>n</name><street>s</street><city>c</city>\
         <state>st</state><zip>1</zip></shipTo>\
         <billTo country=\"US\"><name>n</name><street>s</street><city>c</city>\
         <state>st</state><zip>1</zip></billTo>\
         $comment$<items/></purchaseOrder>";
    let env = TypeEnv::new().element("comment", "comment");
    let template = Template::parse(source).unwrap();
    let plan = pxml::plan(&c, &template, &env).unwrap();
    let comment_t = Template::parse("<comment>x</comment>").unwrap();
    let one = pxml::instantiate(&c, &comment_t, &Bindings::new()).unwrap();
    // zero and one comment: both paths accept with identical bytes
    for count in [0usize, 1] {
        let frags = vec![one.clone(); count];
        let fast = plan
            .render_to_string(&Bindings::new().fragment_list("comment", frags.clone()))
            .unwrap();
        let slow = pxml::instantiate(
            &c,
            &template,
            &Bindings::new().fragment_list("comment", frags),
        )
        .unwrap()
        .to_xml()
        .unwrap();
        assert_eq!(fast, slow, "count={count}");
    }
    // two comments overflow `comment?`: both reject with the same step
    let frags = vec![one.clone(), one.clone()];
    let fast = plan
        .render_to_string(&Bindings::new().fragment_list("comment", frags.clone()))
        .unwrap_err();
    let slow = pxml::instantiate(
        &c,
        &template,
        &Bindings::new().fragment_list("comment", frags),
    )
    .unwrap_err();
    assert_eq!(fast.to_string(), slow.to_string());
}

#[test]
fn mistyped_bindings_agree_with_the_interpreter() {
    let c = po();
    let env = TypeEnv::new().element("n", "name");
    let template = Template::parse(SHIP_TO).unwrap();
    let plan = pxml::plan(&c, &template, &env).unwrap();
    // a text value where element-only content expects a child
    let bindings = Bindings::new().text("n", "just text");
    let fast = plan.render_to_string(&bindings).unwrap_err();
    let slow = pxml::instantiate(&c, &template, &bindings).unwrap_err();
    assert_eq!(fast.to_string(), slow.to_string());
    // an element value in attribute position
    let attr_t = Template::parse(
        "<shipTo country=\"$n$\"><name>x</name><street>s</street>\
         <city>c</city><state>st</state><zip>1</zip></shipTo>",
    )
    .unwrap();
    let name_frag = pxml::instantiate(
        &c,
        &Template::parse("<name>x</name>").unwrap(),
        &Bindings::new(),
    )
    .unwrap();
    let attr_env = TypeEnv::new().text("n");
    let attr_plan = pxml::plan(&c, &attr_t, &attr_env).unwrap();
    let bindings = Bindings::new().fragment("n", name_frag);
    let fast = attr_plan.render_to_string(&bindings).unwrap_err();
    let slow = pxml::instantiate(&c, &attr_t, &bindings).unwrap_err();
    assert_eq!(fast.to_string(), slow.to_string());
}

/// A plan refuses templates the checker refuses, with the same errors.
#[test]
fn plan_rejects_what_the_checker_rejects() {
    let c = po();
    let bad = Template::parse("<shipTo country=\"US\"><zip>1</zip></shipTo>").unwrap();
    let env = TypeEnv::new();
    let check_errors = pxml::check_template(&c, &bad, &env);
    assert!(!check_errors.is_empty());
    let plan_errors = pxml::plan(&c, &bad, &env).unwrap_err();
    assert_eq!(
        format!("{check_errors:?}"),
        format!("{plan_errors:?}"),
        "plan must surface exactly the checker's errors"
    );
}
