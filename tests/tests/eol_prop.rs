//! Differential property tests for XML 1.0 §2.11 end-of-line handling
//! and the chunked feed path.
//!
//! Conformance means line-ending *representation* is invisible to the
//! application: the same document saved with LF, CRLF, or classic-Mac CR
//! line endings must produce the same events — same text, same attribute
//! values, same line/column positions — and the same validation errors.
//! Likewise, how a byte stream is cut into chunks must be invisible:
//! `FeedReader` over any split of a document must equal the whole-input
//! parse event-for-event, spans included.

use proptest::prelude::*;
use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;
use validator::{validate_chunks_streaming, validate_str_streaming};
use xmlparse::{Event, FeedReader, Reader};

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

fn wml() -> CompiledSchema {
    CompiledSchema::parse(WML_XSD).unwrap()
}

/// A WML page with attacker-ish text, LF-separated.
fn wml_page(dirs: &[String]) -> String {
    webgen::render_string(&webgen::DirectoryPageData {
        sub_dirs: dirs.to_vec(),
        current_dir: "/media/archive".into(),
        parent_dir: "/media".into(),
    })
}

/// The full owned-event stream, or the error that ended it (stringified,
/// position dropped — CRLF translation moves byte offsets).
fn events(src: &str) -> Result<Vec<Event>, String> {
    let mut reader = Reader::new(src);
    let mut out = Vec::new();
    loop {
        match reader.next_event() {
            Ok(Event::Eof) => {
                out.push(Event::Eof);
                return Ok(out);
            }
            Ok(e) => out.push(e),
            Err(e) => return Err(format!("{}", e.kind)),
        }
    }
}

/// Zeroes span byte offsets, keeping line/column: CRLF re-encoding
/// shifts offsets (two bytes per break) but must not move the
/// *character-accurate* positions.
fn scrub_offsets(events: Vec<Event>) -> Vec<Event> {
    fn scrub(span: &mut xmlchars::Span) {
        span.start.offset = 0;
        span.end.offset = 0;
    }
    events
        .into_iter()
        .map(|mut e| {
            match &mut e {
                Event::StartElement { span, .. }
                | Event::EndElement { span, .. }
                | Event::Text { span, .. }
                | Event::Comment { span, .. }
                | Event::ProcessingInstruction { span, .. } => scrub(span),
                Event::Eof => {}
            }
            e
        })
        .collect()
}

/// Re-encodes an LF-only document with CRLF line endings.
fn to_crlf(src: &str) -> String {
    assert!(!src.contains('\r'), "translation expects LF-only input");
    src.replace('\n', "\r\n")
}

/// Re-encodes an LF-only document with classic-Mac CR line endings.
fn to_cr(src: &str) -> String {
    assert!(!src.contains('\r'), "translation expects LF-only input");
    src.replace('\n', "\r")
}

/// parse(CRLF doc) ≡ parse(LF doc): everything but byte offsets, which
/// legitimately differ. parse(CR doc) is byte-length-preserving, so it
/// must match *including* offsets.
fn assert_eol_invariant(src: &str) {
    let lf = events(src);
    let crlf = events(&to_crlf(src));
    let cr = events(&to_cr(src));
    match (lf, crlf, cr) {
        (Ok(lf), Ok(crlf), Ok(cr)) => {
            assert_eq!(
                scrub_offsets(lf.clone()),
                scrub_offsets(crlf),
                "CRLF re-encoding changed the event stream of:\n{src}"
            );
            assert_eq!(lf, cr, "CR re-encoding changed the event stream of:\n{src}");
        }
        (lf, crlf, cr) => {
            // all three encodings must agree on rejection too
            let lf_err = lf.as_ref().err().cloned();
            assert_eq!(lf.is_err(), crlf.is_err(), "CRLF changed the verdict");
            assert_eq!(lf_err, cr.err(), "CR changed the verdict or error");
            let _ = crlf;
        }
    }
}

/// Chunked parse over `cuts` split points ≡ whole-input parse.
fn assert_chunks_invariant(src: &str, cuts: &[usize]) {
    let whole = events(src);
    let mut positions: Vec<usize> = cuts
        .iter()
        .map(|c| c % (src.len() + 1))
        .filter(|&p| src.is_char_boundary(p))
        .collect();
    positions.sort_unstable();
    positions.dedup();
    let bytes = src.as_bytes();
    let mut chunks = Vec::new();
    let mut prev = 0;
    for p in positions {
        chunks.push(&bytes[prev..p]);
        prev = p;
    }
    chunks.push(&bytes[prev..]);

    let mut fed = Vec::new();
    let mut feeder = FeedReader::new();
    let mut result = Ok(());
    'feed: {
        for chunk in &chunks {
            if let Err(e) = feeder.feed(chunk, |e| {
                fed.push(e.clone().into_owned());
                true
            }) {
                result = Err(format!("{}", e.kind));
                break 'feed;
            }
        }
        if let Err(e) = feeder.finish(|e| {
            fed.push(e.clone().into_owned());
            true
        }) {
            result = Err(format!("{}", e.kind));
        }
    }
    match (whole, result) {
        (Ok(whole), Ok(())) => {
            assert_eq!(fed, whole, "chunked parse diverged on:\n{src}");
        }
        (whole, result) => {
            assert_eq!(
                whole.err(),
                result.err(),
                "chunking changed the verdict on:\n{src}"
            );
        }
    }
}

#[test]
fn corpus_documents_are_eol_invariant() {
    assert_eol_invariant(PURCHASE_ORDER_XML);
    assert_eol_invariant(&wml_page(&["music".into(), "a & b".into()]));
    let order = webgen::render_order_string(&webgen::generate_order(17, 25));
    assert_eol_invariant(&order);
}

#[test]
fn corpus_validation_verdicts_are_eol_invariant() {
    // same validation errors — kinds and line/column — for every
    // re-encoding, on valid and broken documents alike
    for (compiled, src) in [
        (po(), PURCHASE_ORDER_XML.to_string()),
        (
            po(),
            PURCHASE_ORDER_XML.replace("<zip>90952</zip>", "<zip>nope</zip>"),
        ),
        (wml(), wml_page(&["x".into()])),
        (
            wml(),
            "<wml>stray<card id=\"c\"><p>ok</p></card></wml>".to_string(),
        ),
    ] {
        let strip = |errors: Vec<validator::ValidationError>| {
            errors
                .into_iter()
                .map(|e| {
                    (
                        format!("{}", e.kind),
                        e.span.map(|s| (s.start.line, s.start.column)),
                    )
                })
                .collect::<Vec<_>>()
        };
        let lf = strip(validate_str_streaming(&compiled, &src));
        let crlf = strip(validate_str_streaming(&compiled, &to_crlf(&src)));
        let cr = strip(validate_str_streaming(&compiled, &to_cr(&src)));
        assert_eq!(lf, crlf, "CRLF changed the verdict on:\n{src}");
        assert_eq!(lf, cr, "CR changed the verdict on:\n{src}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated purchase orders, any size: all three EOL encodings
    /// yield one event stream.
    #[test]
    fn generated_orders_are_eol_invariant(seed in 0u64..500, items in 1usize..12) {
        let order = webgen::render_order_string(&webgen::generate_order(seed, items));
        assert_eol_invariant(&order);
    }

    /// WML pages over adversarial directory names (entities, quotes,
    /// markup noise) stay EOL-invariant.
    #[test]
    fn generated_pages_are_eol_invariant(
        dirs in prop::collection::vec("[a-zA-Z0-9 <>&\"']{1,12}", 0..5),
    ) {
        assert_eol_invariant(&wml_page(&dirs));
    }

    /// Arbitrary markup-ish soup: whatever the parser's verdict, it must
    /// not depend on the line-ending encoding.
    #[test]
    fn markup_soup_is_eol_invariant(input in "[<>/a-z\"'= &;!?\\-\\[\\]\n]{0,80}") {
        assert_eol_invariant(&input);
    }

    /// Random chunk splits of generated orders ≡ the whole-input parse
    /// (spans and positions included, byte for byte).
    #[test]
    fn chunk_splits_equal_whole_parse(
        seed in 0u64..500,
        items in 1usize..10,
        cuts in prop::collection::vec(0usize..8192, 0..9),
    ) {
        let order = webgen::render_order_string(&webgen::generate_order(seed, items));
        assert_chunks_invariant(&order, &cuts);
    }

    /// Chunk splits of CRLF-encoded documents: the split may land inside
    /// a \r\n pair; normalization must still see it as one break.
    #[test]
    fn chunk_splits_equal_whole_parse_on_crlf(
        seed in 0u64..500,
        cuts in prop::collection::vec(0usize..4096, 0..9),
    ) {
        let order = to_crlf(&webgen::render_order_string(&webgen::generate_order(seed, 4)));
        assert_chunks_invariant(&order, &cuts);
    }

    /// Chunked validation ≡ whole-input validation, split anywhere.
    #[test]
    fn chunked_validation_equals_whole(
        seed in 0u64..500,
        items in 1usize..8,
        cuts in prop::collection::vec(0usize..8192, 0..6),
    ) {
        let compiled = po();
        let order = webgen::render_order_string(&webgen::generate_order(seed, items));
        let whole = validate_str_streaming(&compiled, &order);
        let mut positions: Vec<usize> = cuts
            .iter()
            .map(|c| c % (order.len() + 1))
            .filter(|&p| order.is_char_boundary(p))
            .collect();
        positions.sort_unstable();
        positions.dedup();
        let bytes = order.as_bytes();
        let mut chunks = Vec::new();
        let mut prev = 0;
        for p in positions {
            chunks.push(&bytes[prev..p]);
            prev = p;
        }
        chunks.push(&bytes[prev..]);
        prop_assert_eq!(validate_chunks_streaming(&compiled, chunks), whole);
    }
}
