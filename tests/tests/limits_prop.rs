//! Differential property tests for resource governance: the default
//! budget must be *invisible* on legitimate documents (byte-identical
//! error lists to an unbounded run, which is itself the pre-governance
//! behavior), and a tight budget must degrade gracefully — the governed
//! run's error list is always a prefix of the unbounded run's, ending in
//! exactly one typed `Resource` marker when a ceiling tripped.

use limits::Limits;
use pool::ThreadPool;
use proptest::prelude::*;
use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;
use validator::{
    validate_str_streaming, validate_str_streaming_with_limits, ValidationError,
    ValidationErrorKind,
};
use webgen::SchemaRegistry;

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

fn wml() -> CompiledSchema {
    CompiledSchema::parse(WML_XSD).unwrap()
}

/// Purchase-order mutations (the `streaming_prop.rs` table): each keeps
/// the paper's Fig. 1 document well-formed while invalidating it.
const PO_MUTATIONS: &[(&str, &str)] = &[
    ("<zip>90952</zip>", "<zip>not a number</zip>"),
    ("partNum=\"872-AA\"", "partNum=\"oops\""),
    ("<quantity>1</quantity>", "<quantity>900</quantity>"),
    ("country=\"US\"", "country=\"DE\""),
    ("orderDate=\"1999-10-20\"", "orderDate=\"soon\""),
    ("<state>CA</state>", ""),
    ("<city>Mill Valley</city>", "<town>Mill Valley</town>"),
    ("<items>", "<items>loose text"),
    (
        "<purchaseOrder orderDate",
        "<purchaseOrder bogus=\"1\" orderDate",
    ),
    (" partNum=\"926-AA\"", ""),
];

fn mutated_po(picks: &[usize]) -> String {
    let mut src = PURCHASE_ORDER_XML.to_string();
    for &pick in picks {
        let (from, to) = PO_MUTATIONS[pick];
        src = src.replace(from, to);
    }
    src
}

fn is_resource(e: &ValidationError) -> bool {
    matches!(e.kind, ValidationErrorKind::Resource(_))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clean and mutated purchase orders: the default budget's error
    /// list is byte-identical to the unbounded (pre-governance) run.
    #[test]
    fn default_budget_is_invisible_on_po(
        picks in prop::collection::vec(0usize..10, 0..3),
    ) {
        let c = po();
        let src = mutated_po(&picks);
        prop_assert_eq!(
            validate_str_streaming(&c, &src),
            validate_str_streaming_with_limits(&c, &src, &Limits::unbounded())
        );
    }

    /// Generated orders and rendered WML directory pages — the serving
    /// path's document classes — under default vs unbounded budgets.
    #[test]
    fn default_budget_is_invisible_on_rendered_pages(
        seed in 0u64..500,
        items in 0usize..15,
        dirs in prop::collection::vec("[a-zA-Z0-9 <>&\"']{1,12}", 0..6),
    ) {
        let c = po();
        let order = webgen::render_order_string(&webgen::generate_order(seed, items));
        prop_assert_eq!(
            validate_str_streaming(&c, &order),
            validate_str_streaming_with_limits(&c, &order, &Limits::unbounded())
        );
        let c = wml();
        let page = webgen::render_string(&webgen::DirectoryPageData {
            sub_dirs: dirs,
            current_dir: "/media/archive".into(),
            parent_dir: "/media".into(),
        });
        prop_assert_eq!(
            validate_str_streaming(&c, &page),
            validate_str_streaming_with_limits(&c, &page, &Limits::unbounded())
        );
    }

    /// A tight error cap returns the exact prefix of the unbounded run
    /// plus one marker — never reordered, rewritten, or over-collected.
    #[test]
    fn tight_error_cap_yields_exact_prefix(
        picks in prop::collection::vec(0usize..10, 1..3),
        cap in 0usize..6,
    ) {
        let c = po();
        let src = mutated_po(&picks);
        let unbounded = validate_str_streaming_with_limits(&c, &src, &Limits::unbounded());
        let limited = validate_str_streaming_with_limits(
            &c,
            &src,
            &Limits::default().with_max_errors(cap),
        );
        if unbounded.len() <= cap {
            prop_assert_eq!(limited, unbounded);
        } else {
            prop_assert_eq!(limited.len(), cap + 1);
            prop_assert_eq!(&limited[..cap], &unbounded[..cap]);
            prop_assert!(is_resource(&limited[cap]), "{:#?}", limited);
        }
    }

    /// A tight depth ceiling stops the stream early; everything
    /// collected before the trip is a prefix of the unbounded run, and
    /// the trip itself is the single trailing typed marker.
    #[test]
    fn tight_depth_yields_prefix_of_unbounded(
        picks in prop::collection::vec(0usize..10, 0..3),
        depth in 1usize..4,
    ) {
        let c = po();
        let src = mutated_po(&picks);
        let unbounded = validate_str_streaming_with_limits(&c, &src, &Limits::unbounded());
        let limited = validate_str_streaming_with_limits(
            &c,
            &src,
            &Limits::default().with_max_depth(depth),
        );
        if limited.iter().any(is_resource) {
            let (marker, prefix) = limited.split_last().unwrap();
            prop_assert!(is_resource(marker), "marker not last: {:#?}", limited);
            prop_assert!(prefix.iter().all(|e| !is_resource(e)));
            prop_assert!(prefix.len() <= unbounded.len());
            prop_assert_eq!(prefix, &unbounded[..prefix.len()]);
        } else {
            // deep enough for this document: the budget was invisible
            prop_assert_eq!(limited, unbounded);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The governed registry batch paths (sequential, parallel, warmed
    /// parallel) agree with each other at any thread count when the
    /// budget does not expire — governance must not change scheduling
    /// semantics.
    #[test]
    fn governed_batches_agree_across_paths(
        mutations in prop::collection::vec(0usize..4, 1..5),
        threads in 1usize..5,
    ) {
        let reg = SchemaRegistry::new();
        reg.register("wml", WML_XSD).unwrap();
        let base = webgen::render_string(&webgen::DirectoryPageData {
            sub_dirs: vec!["music".into(), "video".into()],
            current_dir: "/media".into(),
            parent_dir: "/".into(),
        });
        let docs: Vec<String> = mutations
            .iter()
            .map(|m| match m {
                0 => base.clone(),
                1 => base.replacen("<card", "stray text<card", 1),
                2 => base.replacen("id=\"dirs\"", "id=\"dirs\" bogus=\"x\"", 1),
                _ => base.replacen("<br/>", "<bogus/>", 1),
            })
            .collect();
        let docs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let budget = Limits::default().with_max_errors(2);
        let sequential = reg
            .validate_batch_streaming_with_limits("wml", &docs, &budget)
            .unwrap();
        let pool = ThreadPool::new(threads);
        let parallel = reg
            .validate_batch_streaming_parallel_with_limits("wml", &docs, &pool, &budget)
            .unwrap();
        prop_assert_eq!(&sequential, &parallel);
        let warmed = reg
            .validate_batch_parallel_with_limits("wml", &docs, &pool, &budget)
            .unwrap();
        prop_assert_eq!(&sequential, &warmed);
        // and the unbounded batch matches the ungoverned entry point
        let pristine = reg.validate_batch_streaming("wml", &docs).unwrap();
        let unbounded = reg
            .validate_batch_streaming_with_limits("wml", &docs, &Limits::unbounded())
            .unwrap();
        prop_assert_eq!(pristine, unbounded);
    }
}
