//! Regression battery over the committed hostile corpus
//! (`tests/corpora/hostile/`): every adversarial document must be
//! rejected under `limits::Limits::default()` with the *right* typed
//! `ResourceErrorKind`, quickly, and without memory proportional to the
//! attack. Scaled-up in-memory monsters (100,000-deep nesting, a
//! million attributes) check that the bounds hold far past the sizes it
//! is sensible to commit.
//!
//! Memory is measured with a peak-tracking global allocator (this test
//! file is its own binary, so the tracker sees only this test): the
//! validation of a monster may allocate at most a fixed budget beyond
//! the input string itself, however large the attack is.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use limits::ResourceErrorKind;
use schema::corpus::PURCHASE_ORDER_XSD;
use schema::CompiledSchema;
use validator::{validate_str_streaming, ValidationError, ValidationErrorKind};

struct PeakAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            note_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

/// The tracker is process-global; hold this across each measured region
/// so the harness's parallel test threads cannot bleed allocations into
/// each other's window.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

const BILLION_LAUGHS: &str = include_str!("../corpora/hostile/billion_laughs.xml");
const DEEP_NESTING: &str = include_str!("../corpora/hostile/deep_nesting.xml");
const MANY_ATTRIBUTES: &str = include_str!("../corpora/hostile/many_attributes.xml");
const QUADRATIC_BLOWUP: &str = include_str!("../corpora/hostile/quadratic_blowup.xml");

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

/// The rejection-latency ceiling per hostile document. The production
/// claim (EXPERIMENTS.md) is <100ms; unoptimized test builds run the
/// same code roughly an order of magnitude slower, so they get a scaled
/// allowance rather than a vacuous one.
fn time_budget() -> Duration {
    if cfg!(debug_assertions) {
        Duration::from_millis(800)
    } else {
        Duration::from_millis(100)
    }
}

/// Validates `src` under default limits three times and returns the
/// fastest run plus the (asserted-stable) error list — min-of-3 filters
/// scheduler noise out of the latency assertion.
fn rejected_in(compiled: &CompiledSchema, src: &str) -> (Duration, Vec<ValidationError>) {
    let mut best: Option<(Duration, Vec<ValidationError>)> = None;
    for _ in 0..3 {
        let started = Instant::now();
        let errors = validate_str_streaming(compiled, src);
        let elapsed = started.elapsed();
        match &mut best {
            Some((t, e)) => {
                assert_eq!(*e, errors, "rejection is not deterministic");
                *t = (*t).min(elapsed);
            }
            None => best = Some((elapsed, errors)),
        }
    }
    best.unwrap()
}

/// Asserts `src` is rejected with exactly the expected resource kind,
/// inside the time budget, carrying the span where the budget tripped.
fn assert_rejected(compiled: &CompiledSchema, src: &str, want: &ResourceErrorKind, label: &str) {
    let (elapsed, errors) = rejected_in(compiled, src);
    assert!(
        elapsed < time_budget(),
        "{label}: rejection took {elapsed:?}, budget {:?}",
        time_budget()
    );
    let last = errors
        .last()
        .unwrap_or_else(|| panic!("{label}: no errors"));
    match &last.kind {
        ValidationErrorKind::Resource(kind) => {
            assert_eq!(kind, want, "{label}: wrong limit tripped: {errors:#?}")
        }
        other => panic!("{label}: rejected untyped: {other:?}"),
    }
    let span = last
        .span
        .unwrap_or_else(|| panic!("{label}: resource error without a trip position"));
    assert!(
        span.start.offset <= src.len(),
        "{label}: trip position {span:?} outside the document"
    );
}

#[test]
fn billion_laughs_trips_expansion_count() {
    assert_rejected(
        &po(),
        BILLION_LAUGHS,
        &ResourceErrorKind::TooManyExpansions { limit: 10_000 },
        "billion_laughs.xml",
    );
}

#[test]
fn deep_nesting_trips_depth() {
    assert_rejected(
        &po(),
        DEEP_NESTING,
        &ResourceErrorKind::DepthExceeded { limit: 1024 },
        "deep_nesting.xml",
    );
}

#[test]
fn many_attributes_trips_attribute_count() {
    assert_rejected(
        &po(),
        MANY_ATTRIBUTES,
        &ResourceErrorKind::TooManyAttributes { limit: 4096 },
        "many_attributes.xml",
    );
}

#[test]
fn quadratic_blowup_trips_attribute_value_length() {
    assert_rejected(
        &po(),
        QUADRATIC_BLOWUP,
        &ResourceErrorKind::AttributeValueTooLong {
            limit: 64 << 10,
            actual: 70_000,
        },
        "quadratic_blowup.xml",
    );
}

#[test]
fn corpus_files_trip_distinct_limits() {
    // each file regression-tests exactly one ceiling; if two ever trip
    // the same one, a regression in that limit could hide behind another
    let compiled = po();
    let mut kinds: Vec<&'static str> = [
        BILLION_LAUGHS,
        DEEP_NESTING,
        MANY_ATTRIBUTES,
        QUADRATIC_BLOWUP,
    ]
    .iter()
    .map(
        |src| match &validate_str_streaming(&compiled, src).last().unwrap().kind {
            ValidationErrorKind::Resource(kind) => kind.label(),
            other => panic!("untyped rejection: {other:?}"),
        },
    )
    .collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(kinds.len(), 4, "{kinds:?}");
}

/// Runs `f` and returns (peak-live-bytes-above-start, result).
fn peak_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let start = LIVE.load(Ordering::Relaxed);
    PEAK.store(start, Ordering::Relaxed);
    let result = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (peak.saturating_sub(start), result)
}

#[test]
fn scaled_monsters_reject_in_bounded_time_and_memory() {
    let compiled = po();
    // warm every size-independent lazy structure (symbol table, plans)
    validate_str_streaming(&compiled, "<purchaseOrder/>");

    // 100,000-deep nesting: ~100× past the default ceiling
    let depth_monster = format!("{}{}", "<d>".repeat(100_000), "</d>".repeat(100_000));
    // one element with 1,000,000 attributes: ~250× past the ceiling
    let mut attr_monster = String::from("<doc");
    for i in 0..1_000_000 {
        attr_monster.push_str(&format!(" a{i}=\"x\""));
    }
    attr_monster.push_str("/>");
    // 200,000 references in one text run: 20× past the ceiling
    let flood_monster = format!("<doc>{}</doc>", "&amp;".repeat(200_000));

    let cases: [(&str, &str, &str); 3] = [
        ("depth monster", &depth_monster, "DepthExceeded"),
        ("attribute monster", &attr_monster, "TooManyAttributes"),
        ("expansion monster", &flood_monster, "TooManyExpansions"),
    ];
    let _window = MEASURE.lock().unwrap();
    for (label, src, want) in cases {
        let started = Instant::now();
        let (peak, errors) = peak_during(|| validate_str_streaming(&compiled, src));
        let elapsed = started.elapsed();
        assert!(
            elapsed < 4 * time_budget(),
            "{label}: took {elapsed:?} on {} bytes",
            src.len()
        );
        // the rejection must not buffer the attack: a fixed budget far
        // below the input size, not proportional to it
        assert!(
            peak < 1 << 20,
            "{label}: peak allocation {peak} bytes over a {}-byte input",
            src.len()
        );
        match &errors.last().unwrap().kind {
            ValidationErrorKind::Resource(kind) => assert_eq!(kind.label(), want, "{label}"),
            other => panic!("{label}: untyped rejection {other:?}"),
        }
    }
}

#[test]
fn input_size_ceiling_rejects_before_parsing() {
    let compiled = po();
    let budget = limits::Limits::default().with_max_input_bytes(1 << 10);
    let doc = format!(
        "<purchaseOrder><comment>{}</comment></purchaseOrder>",
        "x".repeat(4096)
    );
    let _window = MEASURE.lock().unwrap();
    let (peak, errors) =
        peak_during(|| validator::validate_str_streaming_with_limits(&compiled, &doc, &budget));
    assert!(
        peak < 64 << 10,
        "pre-parse rejection allocated {peak} bytes"
    );
    assert_eq!(errors.len(), 1, "{errors:#?}");
    match errors[0].kind {
        ValidationErrorKind::Resource(ResourceErrorKind::InputTooLarge { limit, actual }) => {
            assert_eq!(limit, 1024);
            assert_eq!(actual, doc.len());
        }
        ref other => panic!("wrong rejection: {other:?}"),
    }
}
