//! Differential property tests for the parallel batch validator: for
//! arbitrary batches drawn from the valid/mutated purchase-order and WML
//! generators (the same strategies as `streaming_prop.rs`),
//! `SchemaRegistry::validate_batch_parallel` and
//! `validate_batch_streaming_parallel` at 1, 2, and 8 threads must
//! return error kinds, spans, and document order **identical** to the
//! sequential `validate_batch_streaming` path.

use std::sync::OnceLock;

use pool::ThreadPool;
use proptest::prelude::*;
use schema::corpus::PURCHASE_ORDER_XML;
use webgen::SchemaRegistry;

fn registry() -> &'static SchemaRegistry {
    static REG: OnceLock<SchemaRegistry> = OnceLock::new();
    REG.get_or_init(|| SchemaRegistry::with_corpus().unwrap())
}

/// The pools are built once: proptest runs many cases and thread spawn
/// cost would otherwise dominate.
fn pools() -> &'static [(usize, ThreadPool); 3] {
    static POOLS: OnceLock<[(usize, ThreadPool); 3]> = OnceLock::new();
    POOLS.get_or_init(|| {
        [
            (1, ThreadPool::new(1)),
            (2, ThreadPool::new(2)),
            (8, ThreadPool::new(8)),
        ]
    })
}

/// Asserts that both parallel entry points agree with the sequential
/// batch at every thread count, and returns the sequential result.
fn assert_parallel_equals_sequential(
    schema_name: &str,
    docs: &[&str],
) -> Vec<Vec<validator::ValidationError>> {
    let reg = registry();
    let sequential = reg.validate_batch_streaming(schema_name, docs).unwrap();
    for (threads, pool) in pools() {
        let streamed = reg
            .validate_batch_streaming_parallel(schema_name, docs, pool)
            .unwrap();
        assert_eq!(
            streamed, sequential,
            "validate_batch_streaming_parallel diverged at {threads} threads"
        );
        let warmed = reg
            .validate_batch_parallel(schema_name, docs, pool)
            .unwrap();
        assert_eq!(
            warmed, sequential,
            "validate_batch_parallel diverged at {threads} threads"
        );
    }
    sequential
}

/// Purchase-order mutations (as in `streaming_prop.rs`), each of which
/// individually invalidates the paper's Fig. 1 document while keeping it
/// well-formed.
const PO_MUTATIONS: &[(&str, &str)] = &[
    ("<zip>90952</zip>", "<zip>not a number</zip>"),
    ("partNum=\"872-AA\"", "partNum=\"oops\""),
    ("<quantity>1</quantity>", "<quantity>900</quantity>"),
    ("country=\"US\"", "country=\"DE\""),
    ("orderDate=\"1999-10-20\"", "orderDate=\"soon\""),
    ("<state>CA</state>", ""),
    ("<city>Mill Valley</city>", "<town>Mill Valley</town>"),
    ("<items>", "<items>loose text"),
    (
        "<purchaseOrder orderDate",
        "<purchaseOrder bogus=\"1\" orderDate",
    ),
    (" partNum=\"926-AA\"", ""),
];

/// One batch document: a generated valid order, or the Fig. 1 document
/// under 0–2 mutations.
fn po_document(pick: (u64, usize, Vec<usize>)) -> String {
    let (seed, items, mutations) = pick;
    if mutations.is_empty() {
        webgen::render_order_string(&webgen::generate_order(seed, items))
    } else {
        let mut src = PURCHASE_ORDER_XML.to_string();
        for m in mutations {
            let (from, to) = PO_MUTATIONS[m];
            src = src.replace(from, to);
        }
        src
    }
}

/// WML page mutations over the rendered directory page (as in
/// `streaming_prop.rs`); index 0 leaves the page valid.
fn wml_page(dirs: Vec<String>, mutation: usize) -> String {
    let data = webgen::DirectoryPageData {
        sub_dirs: dirs,
        current_dir: "/media/archive".into(),
        parent_dir: "/media".into(),
    };
    let page = webgen::render_string(&data);
    match mutation {
        0 => page,
        1 => page.replacen("<card", "stray text<card", 1),
        2 => page.replacen("id=\"dirs\"", "id=\"dirs\" bogus=\"x\"", 1),
        3 => page.replacen("<br/>", "<bogus/>", 1),
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mixed valid/mutated purchase-order batches: parallel ≡ sequential
    /// at every thread count, and each document's verdict is what its
    /// construction promised.
    #[test]
    fn po_batches_agree(
        picks in prop::collection::vec(
            (0u64..500, 0usize..8, prop::collection::vec(0usize..10, 0..3)),
            0..12,
        ),
    ) {
        let expect_valid: Vec<bool> = picks.iter().map(|p| p.2.is_empty()).collect();
        let docs: Vec<String> = picks.into_iter().map(po_document).collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let sequential = assert_parallel_equals_sequential("purchase-order", &refs);
        prop_assert_eq!(sequential.len(), refs.len());
        for (i, errors) in sequential.iter().enumerate() {
            prop_assert_eq!(
                expect_valid[i],
                errors.is_empty(),
                "doc {} verdict: {:#?}", i, errors
            );
        }
    }

    /// Rendered WML directory-page batches, pristine or mutated, for
    /// arbitrary (markup-hostile) directory names.
    #[test]
    fn wml_batches_agree(
        pages in prop::collection::vec(
            (prop::collection::vec("[a-zA-Z0-9 <>&\"']{1,12}", 0..5), 0usize..4),
            0..10,
        ),
    ) {
        let expect_valid: Vec<bool> = pages.iter().map(|p| p.1 == 0).collect();
        let docs: Vec<String> = pages
            .into_iter()
            .map(|(dirs, mutation)| wml_page(dirs, mutation))
            .collect();
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let sequential = assert_parallel_equals_sequential("wml", &refs);
        for (i, errors) in sequential.iter().enumerate() {
            prop_assert_eq!(
                expect_valid[i],
                errors.is_empty(),
                "page {} verdict: {:#?}", i, errors
            );
        }
    }

    /// Arbitrary short inputs (mostly not well-formed) through the
    /// parallel path: never a panic, never a divergence from sequential.
    #[test]
    fn arbitrary_batches_agree(
        inputs in prop::collection::vec(".{0,48}", 0..8),
    ) {
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        assert_parallel_equals_sequential("purchase-order", &refs);
    }
}
