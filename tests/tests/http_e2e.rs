//! Socket-level conformance battery for the HTTP validation service.
//!
//! The claim under test is *byte equivalence*: the verdict a document
//! gets over a loopback TCP connection is exactly the verdict the
//! library's streaming validator renders for the same document — same
//! error kinds, same messages, same spans — because both sides render
//! through the same canonical `serve::json`. Every purchase-order and
//! WML document in the corpus goes over the wire; hostile documents
//! must come back `422` with the same typed `Resource` kind the library
//! reports; and a schema hot-swap under concurrent traffic must never
//! produce a torn verdict.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use serve::{Server, ServerConfig};
use webgen::SchemaRegistry;

const BILLION_LAUGHS: &str = include_str!("../corpora/hostile/billion_laughs.xml");
const DEEP_NESTING: &str = include_str!("../corpora/hostile/deep_nesting.xml");
const MANY_ATTRIBUTES: &str = include_str!("../corpora/hostile/many_attributes.xml");
const QUADRATIC_BLOWUP: &str = include_str!("../corpora/hostile/quadratic_blowup.xml");

/// A complete, valid WML deck exercising mixed content, attributes,
/// empty elements and the select/option nesting.
const WML_VALID: &str = r#"<?xml version="1.0"?>
<wml>
  <card id="home" title="Caf&#233; menu">
    <p align="center">Welcome <b>back</b><br/>choose a drink:</p>
    <p><select name="drink" multiple="false">
      <option value="espresso">Espresso</option>
      <option value="flat-white">Flat white</option>
    </select></p>
    <p><a href="http://example.org/next">more</a></p>
  </card>
  <card id="second"><p>done</p></card>
</wml>
"#;

/// Structurally broken WML: `option` is missing its required `value`
/// attribute and a stray element sits where only cards may appear.
const WML_INVALID: &str = r#"<?xml version="1.0"?>
<wml>
  <card id="a"><p><select name="d"><option>no value</option></select></p></card>
  <rogue/>
</wml>
"#;

/// Not well-formed at all: tag soup.
const WML_MALFORMED: &str = "<wml><card></wml>";

fn corpus_server() -> (Arc<SchemaRegistry>, Server) {
    let registry = Arc::new(SchemaRegistry::with_corpus().unwrap());
    let server = Server::start(registry.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    (registry, server)
}

/// Reads one HTTP response off `reader`: `(status, body)`.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<u8>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .unwrap();
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).unwrap();
    (status, body)
}

/// One-shot request: connect, send, read one response, close.
fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader);
    (status, String::from_utf8(body).unwrap())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The whole serving corpus: every generated purchase order plus the
/// WML documents, valid and broken.
fn corpus() -> Vec<(&'static str, String)> {
    let mut docs = Vec::new();
    for seed in 0..8u64 {
        let order = webgen::generate_order(seed, 1 + (seed as usize % 7));
        docs.push(("purchase-order", webgen::render_order_string(&order)));
    }
    // a tampered order: wrong element where the schema expects items
    let tampered = webgen::render_order_string(&webgen::generate_order(3, 2))
        .replace("<shipTo", "<shipFrom")
        .replace("</shipTo", "</shipFrom");
    docs.push(("purchase-order", tampered));
    // a PO document aimed at the wrong schema is schema-invalid, not an error
    docs.push((
        "wml",
        webgen::render_order_string(&webgen::generate_order(1, 1)),
    ));
    docs.push(("wml", WML_VALID.to_string()));
    docs.push(("wml", WML_INVALID.to_string()));
    docs.push(("wml", WML_MALFORMED.to_string()));
    docs
}

#[test]
fn every_corpus_document_gets_the_library_verdict_byte_for_byte() {
    let (registry, server) = corpus_server();
    let addr = server.addr();
    let mut checked = 0;
    for (schema, doc) in corpus() {
        let expected_errors = registry.validate_streaming(schema, &doc).unwrap();
        let expected_body = serve::json::verdict_json(schema, &expected_errors);
        let expected_status = serve::json::status_for(&expected_errors);
        let (status, body) = post(addr, &format!("/v1/validate/{schema}"), &doc);
        assert_eq!(status, expected_status, "{schema}: {body}");
        assert_eq!(
            body, expected_body,
            "{schema}: verdict drifted over the wire"
        );
        checked += 1;
    }
    assert!(checked >= 13);
    server.drain();
}

#[test]
fn keep_alive_reuse_does_not_leak_budget_between_requests() {
    // many documents over ONE connection: each request must be validated
    // under a fresh budget (a cumulative-limit leak across keep-alive
    // requests would eventually flip verdicts)
    let (registry, server) = corpus_server();
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let doc = webgen::render_order_string(&webgen::generate_order(7, 6));
    let expected = serve::json::verdict_json(
        "purchase-order",
        &registry.validate_streaming("purchase-order", &doc).unwrap(),
    );
    for i in 0..32 {
        stream
            .write_all(
                format!(
                    "POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                    doc.len(),
                    doc
                )
                .as_bytes(),
            )
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200, "request {i}");
        assert_eq!(String::from_utf8(body).unwrap(), expected, "request {i}");
    }
    server.drain();
}

#[test]
fn hostile_documents_come_back_422_with_the_library_resource_kind() {
    let (registry, server) = corpus_server();
    let addr = server.addr();
    for (label, doc) in [
        ("billion_laughs", BILLION_LAUGHS),
        ("deep_nesting", DEEP_NESTING),
        ("many_attributes", MANY_ATTRIBUTES),
        ("quadratic_blowup", QUADRATIC_BLOWUP),
    ] {
        let expected_errors = registry.validate_streaming("purchase-order", doc).unwrap();
        let expected_body = serve::json::verdict_json("purchase-order", &expected_errors);
        assert_eq!(
            serve::json::status_for(&expected_errors),
            422,
            "{label}: hostile corpus doc no longer trips a budget"
        );
        let (status, body) = post(addr, "/v1/validate/purchase-order", doc);
        assert_eq!(status, 422, "{label}: {body}");
        assert_eq!(body, expected_body, "{label}: typed rejection drifted");
        let kind = serve::json::resource_kind(&expected_errors).unwrap();
        assert!(
            body.contains(&format!("\"resource\":\"{}\"", kind.label())),
            "{label}: {body}"
        );
    }
    server.drain();
}

#[test]
fn batch_endpoint_matches_the_parallel_library_verdicts() {
    let (registry, server) = corpus_server();
    let addr = server.addr();
    let docs: Vec<String> = vec![
        webgen::render_order_string(&webgen::generate_order(1, 2)),
        WML_MALFORMED.to_string(),
        webgen::render_order_string(&webgen::generate_order(2, 4)),
        String::new(),
    ];
    let mut body = String::new();
    for doc in &docs {
        body.push_str(&format!("{}\n{}", doc.len(), doc));
    }
    let refs: Vec<&str> = docs.iter().map(|d| d.as_str()).collect();
    let pool = pool::ThreadPool::new(2);
    let expected_lists = registry
        .validate_batch_streaming_parallel_with_limits(
            "purchase-order",
            &refs,
            &pool,
            &limits::Limits::default(),
        )
        .unwrap();
    let expected = serve::json::batch_json("purchase-order", &expected_lists);
    let (status, got) = post(addr, "/v1/batch/purchase-order", &body);
    assert_eq!(status, 200, "{got}");
    assert_eq!(got, expected, "batch verdicts drifted over the wire");
    server.drain();
}

#[test]
fn unknown_schema_is_404_and_bad_upload_is_400() {
    let (_registry, server) = corpus_server();
    let addr = server.addr();
    let (status, body) = post(addr, "/v1/validate/nope", "<a/>");
    assert_eq!(status, 404, "{body}");
    let (status, body) = request(
        addr,
        "PUT /v1/schemas/broken HTTP/1.1\r\nHost: t\r\nContent-Length: 12\r\nConnection: close\r\n\r\nnot a schema",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("failed to compile"), "{body}");
    server.drain();
}

#[test]
fn hot_swap_under_traffic_never_serves_a_torn_verdict() {
    let (registry, server) = corpus_server();
    let addr = server.addr();
    // precompute the only two legal verdicts for WML_VALID under the
    // two schemas that will alternate under the name "swap"
    let under_wml = serve::json::verdict_json(
        "swap",
        &validator::validate_str_streaming(
            &schema::CompiledSchema::parse(schema::corpus::WML_XSD).unwrap(),
            WML_VALID,
        ),
    );
    let under_po = serve::json::verdict_json(
        "swap",
        &validator::validate_str_streaming(
            &schema::CompiledSchema::parse(schema::corpus::PURCHASE_ORDER_XSD).unwrap(),
            WML_VALID,
        ),
    );
    assert_ne!(under_wml, under_po);
    registry.register("swap", schema::corpus::WML_XSD).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut hammers = Vec::new();
    for _ in 0..4 {
        let stop = stop.clone();
        let under_wml = under_wml.clone();
        let under_po = under_po.clone();
        hammers.push(thread::spawn(move || {
            let mut served = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let (status, body) = request(
                    addr,
                    &format!(
                        "POST /v1/validate/swap HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                        WML_VALID.len(),
                        WML_VALID
                    ),
                );
                assert_eq!(status, 200, "{body}");
                assert!(
                    body == under_wml || body == under_po,
                    "torn verdict during hot swap: {body}"
                );
                served += 1;
            }
            served
        }));
    }
    for i in 0..30 {
        let xsd = if i % 2 == 0 {
            schema::corpus::PURCHASE_ORDER_XSD
        } else {
            schema::corpus::WML_XSD
        };
        let (status, body) = request(
            addr,
            &format!(
                "PUT /v1/schemas/swap HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                xsd.len(),
                xsd
            ),
        );
        assert_eq!(status, 200, "swap {i}: {body}");
        assert!(body.contains("\"replaced\":true"), "{body}");
        thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    let total: u32 = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "hammer threads never got a request through");
    server.drain();
}

#[test]
fn tenant_header_selects_the_admission_budget() {
    // the "small" tenant's depth ceiling trips on a document the default
    // tenant sails through — same document, different verdict, selected
    // purely by the X-Tenant header
    let registry = Arc::new(SchemaRegistry::with_corpus().unwrap());
    let cfg = ServerConfig {
        tenants: serve::TenantTable::new(limits::Limits::default())
            .with("small", limits::Limits::default().with_max_depth(2)),
        ..ServerConfig::default()
    };
    let server = Server::start(registry.clone(), "127.0.0.1:0", cfg).unwrap();
    let addr = server.addr();
    let doc = webgen::render_order_string(&webgen::generate_order(5, 3));
    let (status, body) = post(addr, "/v1/validate/purchase-order", &doc);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"valid\":true"), "{body}");
    let (status, body) = request(
        addr,
        &format!(
            "POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nX-Tenant: small\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            doc.len(),
            doc
        ),
    );
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("\"resource\":\"DepthExceeded\""), "{body}");
    server.drain();
}
