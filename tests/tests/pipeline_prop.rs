//! Cross-crate property tests: the whole pipeline (generation →
//! serialization → parsing → validation) holds its invariants on random
//! workloads, and injected violations never escape the validator.

use proptest::prelude::*;
use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated order renders identically through the unchecked
    /// string back end and the typed V-DOM back end, and the result is
    /// schema-valid.
    #[test]
    fn order_backends_agree_and_validate(seed in 0u64..1000, items in 0usize..20) {
        let c = po();
        let order = webgen::generate_order(seed, items);
        let s = webgen::render_order_string(&order);
        let v = webgen::render_order_vdom(&c, &order).unwrap();
        prop_assert_eq!(&s, &v);
        let doc = xmlparse::parse_document(&v).unwrap();
        prop_assert!(validator::validate_document(&c, &doc).is_empty());
    }

    /// Serialize → parse is the identity on generated documents.
    #[test]
    fn serialize_parse_roundtrip(seed in 0u64..1000, items in 0usize..12) {
        let c = po();
        let order = webgen::generate_order(seed, items);
        let xml = webgen::render_order_vdom(&c, &order).unwrap();
        let doc = xmlparse::parse_document(&xml).unwrap();
        let root = doc.root_element().unwrap();
        prop_assert_eq!(dom::serialize(&doc, root).unwrap(), xml);
    }

    /// Lifting a valid document into the typed layer succeeds, and the
    /// sealed result revalidates.
    #[test]
    fn typed_import_of_valid_documents(seed in 0u64..500, items in 1usize..10) {
        let c = po();
        let order = webgen::generate_order(seed, items);
        let xml = webgen::render_order_string(&order);
        let td = vdom::parse_typed(&c, &xml).unwrap();
        let doc = td.seal().unwrap();
        prop_assert!(validator::validate_document(&c, &doc).is_empty());
    }

    /// Every injected structural violation is caught by both the runtime
    /// validator (on the finished document) and the typed layer (during
    /// import).
    #[test]
    fn injected_violations_never_escape(mutation in 0usize..7) {
        let c = po();
        let bad = match mutation {
            0 => PURCHASE_ORDER_XML.replace("<zip>90952</zip>", "<zip>not a number</zip>"),
            1 => PURCHASE_ORDER_XML.replace("partNum=\"872-AA\"", "partNum=\"oops\""),
            2 => PURCHASE_ORDER_XML.replace("<quantity>1</quantity>", "<quantity>900</quantity>"),
            3 => PURCHASE_ORDER_XML.replace("country=\"US\"", "country=\"DE\""),
            4 => PURCHASE_ORDER_XML.replace("orderDate=\"1999-10-20\"", "orderDate=\"soon\""),
            5 => PURCHASE_ORDER_XML.replacen("<state>CA</state>", "", 1),
            6 => PURCHASE_ORDER_XML.replace(
                "<city>Mill Valley</city>",
                "<town>Mill Valley</town>",
            ),
            _ => unreachable!(),
        };
        let doc = xmlparse::parse_document(&bad).unwrap();
        let errors = validator::validate_document(&c, &doc);
        prop_assert!(!errors.is_empty(), "mutation {} escaped the validator", mutation);
        // the typed layer refuses it during import or at seal
        let typed = vdom::parse_typed(&c, &bad).and_then(|td| td.seal());
        prop_assert!(typed.is_err(), "mutation {} escaped the typed layer", mutation);
    }

    /// Random directory data renders the same page through all four
    /// back ends, for arbitrary (even markup-hostile) directory names.
    #[test]
    fn directory_page_backends_agree(
        dirs in prop::collection::vec("[a-zA-Z0-9 <>&\"']{1,12}", 0..8),
        current in "/[a-z/]{0,20}",
    ) {
        let wml = CompiledSchema::parse(WML_XSD).unwrap();
        let data = webgen::DirectoryPageData {
            sub_dirs: dirs,
            current_dir: current,
            parent_dir: "/workspace".into(),
        };
        let s = webgen::render_string(&data);
        let d = webgen::render_dom(&wml, &data).unwrap();
        let v = webgen::render_vdom(&wml, &data).unwrap();
        prop_assert_eq!(&s, &d);
        prop_assert_eq!(&d, &v);
        let doc = xmlparse::parse_document(&v).unwrap();
        prop_assert!(validator::validate_document(&wml, &doc).is_empty());
    }

    /// The P-XML option template instantiates validly for arbitrary
    /// labels, and its output embeds them escaped.
    #[test]
    fn pxml_template_instantiation_is_safe(label in "[^\\x00-\\x08\\x0b\\x0c\\x0e-\\x1f]{1,24}") {
        // exclude only chars that are not legal XML at all
        let wml = CompiledSchema::parse(WML_XSD).unwrap();
        let t = pxml::Template::parse("<option value=\"v\">$label$</option>").unwrap();
        let frag = pxml::instantiate(
            &wml,
            &t,
            &pxml::Bindings::new().text("label", label.clone()),
        ).unwrap();
        let xml = frag.to_xml().unwrap();
        let doc = xmlparse::parse_document(&xml).unwrap();
        let root = doc.root_element().unwrap();
        let roundtripped = doc.text_content(root).unwrap();
        // whitespace-only labels are dropped as formatting; others roundtrip
        if !label.trim().is_empty() {
            prop_assert_eq!(roundtripped, label);
        }
    }
}
