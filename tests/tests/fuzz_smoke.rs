//! Deterministic fuzz smoke test, std-only: a fixed-seed LCG drives
//! byte-level mutations of seed documents through the governed streaming
//! validator. This is not a coverage-guided fuzzer — it is a cheap,
//! reproducible battery (same seeds, same cases, every run, including
//! `scripts/verify.sh`) asserting the crash-safety contract of
//! `Limits::default()`: no panic, no error-list overshoot past
//! `max_errors + 1`, and no pathological per-document latency, for
//! arbitrarily mangled input.

use std::time::{Duration, Instant};

use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;
use validator::{validate_chunks_streaming, validate_str_streaming};

/// Knuth's MMIX multiplier; full-period over u64, seeded per corpus so
/// every run of every checkout mutates identically.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() >> 33) as usize % bound.max(1)
    }
}

/// Applies 1–8 random byte-level edits: overwrite, XML-noise splice,
/// deletion, or internal duplication. Lossy re-decoding keeps the input
/// a `&str` (the validator's contract) while still exercising mangled
/// multi-byte sequences via replacement characters.
fn mutate(rng: &mut Lcg, seed_doc: &str) -> String {
    let mut bytes = seed_doc.as_bytes().to_vec();
    const SPLICES: &[&[u8]] = &[
        b"<",
        b">",
        b"&",
        b"\"",
        b"<!--",
        b"]]>",
        b"<![CDATA[",
        b"&#x41;",
        b"&amp;",
        b"<?pi?>",
        b"</",
        b"<a b=\"",
        b"\x80\xb5",
    ];
    for _ in 0..1 + rng.below(8) {
        if bytes.is_empty() {
            bytes.extend_from_slice(b"<x/>");
        }
        let at = rng.below(bytes.len());
        match rng.below(4) {
            0 => bytes[at] = (rng.next() >> 40) as u8,
            1 => {
                let splice = SPLICES[rng.below(SPLICES.len())];
                bytes.splice(at..at, splice.iter().copied());
            }
            2 => {
                let len = rng.below(16).min(bytes.len() - at);
                bytes.drain(at..at + len);
            }
            _ => {
                let len = rng.below(32).min(bytes.len() - at);
                let dup: Vec<u8> = bytes[at..at + len].to_vec();
                bytes.splice(at..at, dup);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn per_doc_budget() -> Duration {
    if cfg!(debug_assertions) {
        Duration::from_millis(800)
    } else {
        Duration::from_millis(100)
    }
}

/// Splits `doc` into 1–9 chunks at LCG-chosen *byte* positions — cuts
/// may land inside multi-byte sequences, CRLF pairs, or tags, which is
/// exactly what the feed path must absorb.
fn random_chunks<'d>(rng: &mut Lcg, doc: &'d str) -> Vec<&'d [u8]> {
    let bytes = doc.as_bytes();
    let mut cuts: Vec<usize> = (0..rng.below(9))
        .map(|_| rng.below(bytes.len() + 1))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut chunks = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0;
    for cut in cuts {
        chunks.push(&bytes[prev..cut]);
        prev = cut;
    }
    chunks.push(&bytes[prev..]);
    chunks
}

fn smoke(compiled: &CompiledSchema, seed_doc: &str, seed: u64, cases: usize) {
    let max_errors = limits::Limits::default().max_errors;
    let mut rng = Lcg(seed);
    for case in 0..cases {
        let doc = mutate(&mut rng, seed_doc);
        let started = Instant::now();
        let errors = validate_str_streaming(compiled, &doc);
        let elapsed = started.elapsed();
        assert!(
            errors.len() <= max_errors + 1,
            "case {case}: collected {} errors past the cap of {max_errors}",
            errors.len()
        );
        assert!(
            elapsed < per_doc_budget(),
            "case {case}: {elapsed:?} on {} bytes:\n{doc}",
            doc.len()
        );
        // the same mangled document fed chunk-wise must neither panic
        // nor change the verdict, wherever the cuts land
        let chunked = validate_chunks_streaming(compiled, random_chunks(&mut rng, &doc));
        assert_eq!(
            chunked, errors,
            "case {case}: chunked validation diverged on:\n{doc}"
        );
    }
}

#[test]
fn mangled_purchase_orders_never_panic_or_overshoot() {
    let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
    smoke(&compiled, PURCHASE_ORDER_XML, 0x5eed_0001, 200);
}

#[test]
fn mangled_wml_pages_never_panic_or_overshoot() {
    let compiled = CompiledSchema::parse(WML_XSD).unwrap();
    let page = webgen::render_string(&webgen::DirectoryPageData {
        sub_dirs: vec!["music".into(), "video & more".into(), "incoming".into()],
        current_dir: "/media/archive".into(),
        parent_dir: "/media".into(),
    });
    smoke(&compiled, &page, 0x5eed_0002, 100);
}

#[test]
fn mangled_hostile_corpus_stays_typed_and_bounded() {
    // mutations of already-adversarial input must degrade just as
    // gracefully as mutations of legitimate documents
    let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
    for (i, hostile) in [
        include_str!("../corpora/hostile/billion_laughs.xml"),
        include_str!("../corpora/hostile/deep_nesting.xml"),
        include_str!("../corpora/hostile/many_attributes.xml"),
        include_str!("../corpora/hostile/quadratic_blowup.xml"),
    ]
    .iter()
    .enumerate()
    {
        smoke(&compiled, hostile, 0x5eed_0100 + i as u64, 25);
    }
}
