//! Socket-level torture battery: everything a hostile or broken client
//! can do to the wire layer. Malformed request lines and headers,
//! premature closes mid-body, slowloris drips, pipelined keep-alive,
//! chunked bodies split at UTF-8 and tag boundaries, and oversized
//! declared lengths — the server must answer (or close) deterministically
//! and never panic. Each test drains its server, which would hang or
//! crash if a connection worker had died badly.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use serve::{Server, ServerConfig};
use webgen::SchemaRegistry;

fn server_with(cfg: ServerConfig) -> Server {
    let registry = Arc::new(SchemaRegistry::with_corpus().unwrap());
    Server::start(registry, "127.0.0.1:0", cfg).unwrap()
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Reads one response head + body; `None` if the peer closed without
/// answering (legitimate for some protocol violations).
fn try_read_response(reader: &mut BufReader<TcpStream>) -> Option<(u16, String)> {
    let mut status_line = String::new();
    match reader.read_line(&mut status_line) {
        Ok(0) => return None,
        Ok(_) => {}
        Err(_) => return None,
    }
    let status: u16 = status_line.split(' ').nth(1)?.parse().ok()?;
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().ok()?;
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).ok()?;
    Some((status, String::from_utf8_lossy(&body).into_owned()))
}

/// Sends raw bytes, returns the (optional) response.
fn raw_exchange(addr: SocketAddr, raw: &[u8]) -> Option<(u16, String)> {
    let mut stream = connect(addr);
    stream.write_all(raw).unwrap();
    let mut reader = BufReader::new(stream);
    try_read_response(&mut reader)
}

#[test]
fn malformed_request_lines_and_headers_get_400_never_a_panic() {
    let server = server_with(ServerConfig::default());
    let addr = server.addr();
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9 << 10));
    let many_headers: String =
        (0..120).fold(String::from("GET /healthz HTTP/1.1\r\n"), |mut s, i| {
            s.push_str(&format!("x-h{i}: v\r\n"));
            s
        }) + "\r\n";
    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("garbage line", b"GARBAGE\r\n\r\n".to_vec()),
        ("two-part line", b"GET /healthz\r\n\r\n".to_vec()),
        ("four-part line", b"GET / healthz HTTP/1.1\r\n\r\n".to_vec()),
        ("lowercase method", b"get /healthz HTTP/1.1\r\n\r\n".to_vec()),
        ("bad version", b"GET /healthz HTTP/2.0\r\n\r\n".to_vec()),
        ("relative target", b"GET healthz HTTP/1.1\r\n\r\n".to_vec()),
        ("oversized request line", long_line.into_bytes()),
        ("too many headers", many_headers.into_bytes()),
        (
            "space before colon (smuggling)",
            b"GET /healthz HTTP/1.1\r\nHost : t\r\n\r\n".to_vec(),
        ),
        (
            "header without colon",
            b"GET /healthz HTTP/1.1\r\njusttext\r\n\r\n".to_vec(),
        ),
        (
            "control bytes in header name",
            b"GET /healthz HTTP/1.1\r\nx\x01y: v\r\n\r\n".to_vec(),
        ),
        (
            "conflicting content-lengths",
            b"POST /v1/validate/wml HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab".to_vec(),
        ),
        (
            "content-length plus chunked",
            b"POST /v1/validate/wml HTTP/1.1\r\nContent-Length: 2\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
        ),
        (
            "non-numeric content-length",
            b"POST /v1/validate/wml HTTP/1.1\r\nContent-Length: ten\r\n\r\n".to_vec(),
        ),
        (
            "bad chunk size",
            b"POST /v1/validate/wml HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nhi\r\n0\r\n\r\n".to_vec(),
        ),
    ];
    for (label, raw) in cases {
        match raw_exchange(addr, &raw) {
            Some((status, body)) => {
                assert_eq!(status, 400, "{label}: {body}")
            }
            None => panic!("{label}: server closed without a 400"),
        }
    }
    // after all that abuse the server still serves
    let (status, body) = raw_exchange(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    server.drain();
}

#[test]
fn premature_close_mid_body_is_a_400_not_a_hang() {
    let server = server_with(ServerConfig::default());
    let addr = server.addr();
    let mut stream = connect(addr);
    stream
        .write_all(b"POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: 1000\r\n\r\n<purchase")
        .unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut reader = BufReader::new(stream);
    let (status, body) = try_read_response(&mut reader).expect("no response to a truncated body");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("prematurely"), "{body}");
    server.drain();
}

#[test]
fn slowloris_drip_trips_the_request_deadline() {
    let cfg = ServerConfig {
        request_deadline: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let server = server_with(cfg);
    let addr = server.addr();
    // drip the request head one byte at a time, far slower than the
    // deadline allows; the absolute deadline must cut the client off
    // even though every individual read makes "progress"
    let started = Instant::now();
    let mut stream = connect(addr);
    let head = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    let mut answered = None;
    'drip: for &b in head.iter() {
        if stream.write_all(&[b]).is_err() {
            break 'drip; // server already gave up on us
        }
        thread::sleep(Duration::from_millis(40));
        if started.elapsed() > Duration::from_secs(3) {
            break 'drip;
        }
        // peek for an early 408 without blocking the drip
        stream
            .set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        let mut buf = [0u8; 512];
        match stream.read(&mut buf) {
            Ok(n) if n > 0 => {
                answered = Some(String::from_utf8_lossy(&buf[..n]).into_owned());
                break 'drip;
            }
            Ok(_) => break 'drip,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break 'drip,
        }
    }
    if answered.is_none() {
        // whatever is left of the response
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        if !rest.is_empty() {
            answered = Some(String::from_utf8_lossy(&rest).into_owned());
        }
    }
    let response = answered.expect("slowloris connection was neither answered nor cut off");
    assert!(
        response.starts_with("HTTP/1.1 408"),
        "expected 408 for the drip-fed request, got: {response}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "deadline took {:?} to trip",
        started.elapsed()
    );
    server.drain();
}

#[test]
fn slow_body_drip_trips_the_deadline_with_408() {
    let cfg = ServerConfig {
        request_deadline: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let server = server_with(cfg);
    let addr = server.addr();
    let mut stream = connect(addr);
    // the head arrives instantly; the declared 64-byte body then drips
    // one byte per 150ms — the *body* read must hit the same deadline
    stream
        .write_all(
            b"POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\n",
        )
        .unwrap();
    // a well-formed prefix, so the parser stays suspended wanting more
    // bytes rather than failing fast on tag soup
    for b in b"<purchaseOrder orderDate=" {
        if stream.write_all(&[*b]).is_err() {
            break;
        }
        thread::sleep(Duration::from_millis(150));
    }
    let mut reader = BufReader::new(stream);
    let (status, body) = try_read_response(&mut reader).expect("no response to the slow body");
    assert_eq!(status, 408, "{body}");
    server.drain();
}

#[test]
fn pipelined_requests_on_one_connection_all_get_answered_in_order() {
    let server = server_with(ServerConfig::default());
    let addr = server.addr();
    let registry = SchemaRegistry::with_corpus().unwrap();
    let doc = webgen::render_order_string(&webgen::generate_order(2, 3));
    let verdict = serve::json::verdict_json(
        "purchase-order",
        &registry.validate_streaming("purchase-order", &doc).unwrap(),
    );
    // three requests written in ONE burst before reading anything
    let mut burst = String::new();
    burst.push_str("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    burst.push_str(&format!(
        "POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
        doc.len(),
        doc
    ));
    burst.push_str("GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    let mut stream = connect(addr);
    stream.write_all(burst.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let (s1, b1) = try_read_response(&mut reader).unwrap();
    let (s2, b2) = try_read_response(&mut reader).unwrap();
    let (s3, b3) = try_read_response(&mut reader).unwrap();
    assert_eq!((s1, b1.as_str()), (200, "ok\n"));
    assert_eq!(s2, 200);
    assert_eq!(b2, verdict, "pipelined verdict drifted");
    assert_eq!((s3, b3.as_str()), (200, "ok\n"));
    assert!(
        try_read_response(&mut reader).is_none(),
        "Connection: close was not honoured"
    );
    server.drain();
}

#[test]
fn chunked_bodies_split_at_utf8_and_tag_boundaries_validate_identically() {
    let server = server_with(ServerConfig::default());
    let addr = server.addr();
    let registry = SchemaRegistry::with_corpus().unwrap();
    // multibyte content (é is two UTF-8 bytes) so a chunk boundary can
    // land inside a character as well as inside a tag name
    let doc = "<?xml version=\"1.0\"?>\n<wml><card id=\"a\" title=\"caf\u{e9}s \u{2615}\"><p>caf\u{e9} <b>cr\u{e8}me</b></p></card></wml>";
    let expected =
        serve::json::verdict_json("wml", &registry.validate_streaming("wml", doc).unwrap());
    let bytes = doc.as_bytes();
    // chunk sizes 1, 2, 3, 7: every boundary class gets hit, including
    // mid-character and mid-tag splits
    for chunk_size in [1usize, 2, 3, 7] {
        let mut raw = b"POST /v1/validate/wml HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n".to_vec();
        for chunk in bytes.chunks(chunk_size) {
            raw.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            raw.extend_from_slice(chunk);
            raw.extend_from_slice(b"\r\n");
        }
        raw.extend_from_slice(b"0\r\nx-trailer: ignored\r\n\r\n");
        let (status, body) = raw_exchange(addr, &raw).unwrap();
        assert_eq!(status, 200, "chunk_size {chunk_size}: {body}");
        assert_eq!(body, expected, "chunk_size {chunk_size}: verdict drifted");
    }
    // chunk extensions after the size are legal and ignored
    let raw = format!(
        "POST /v1/validate/wml HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n{:x};ext=1\r\n{}\r\n0\r\n\r\n",
        bytes.len(),
        doc
    );
    let (status, body) = raw_exchange(addr, raw.as_bytes()).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(body, expected);
    server.drain();
}

#[test]
fn oversized_content_length_is_rejected_before_the_body_is_read() {
    let server = server_with(ServerConfig::default());
    let addr = server.addr();
    let mut stream = connect(addr);
    // declare 100 MiB (over the default 64 MiB budget) and send NOTHING:
    // the 413 must arrive while the body is still unsent, proving the
    // admission check runs on the declared length alone
    stream
        .write_all(b"POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: 104857600\r\n\r\n")
        .unwrap();
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let (status, body) = try_read_response(&mut reader).expect("no early 413");
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"resource\":\"InputTooLarge\""), "{body}");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "413 was not early: {:?}",
        started.elapsed()
    );
    server.drain();
}

#[test]
fn overlong_actual_body_trips_the_cumulative_byte_budget_mid_stream() {
    // an honest Content-Length but a tiny tenant budget: the stream is
    // cut off mid-read with the same typed InputTooLarge verdict
    let cfg = ServerConfig {
        tenants: serve::TenantTable::new(limits::Limits::default().with_max_input_bytes(1 << 10)),
        ..ServerConfig::default()
    };
    let server = server_with(cfg);
    let addr = server.addr();
    let big = webgen::render_order_string(&webgen::generate_order(1, 200));
    assert!(big.len() > 2 << 10);
    let raw = format!(
        "POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        big.len(),
        big
    );
    let (status, body) = raw_exchange(addr, raw.as_bytes()).unwrap();
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"resource\":\"InputTooLarge\""), "{body}");
    server.drain();
}

#[test]
fn connection_cap_answers_503_and_recovers() {
    let cfg = ServerConfig {
        conn_workers: 2,
        max_connections: 2,
        ..ServerConfig::default()
    };
    let server = server_with(cfg);
    let addr = server.addr();
    // two parked connections occupy the cap...
    let parked: Vec<TcpStream> = (0..2).map(|_| connect(addr)).collect();
    thread::sleep(Duration::from_millis(150));
    // ...so the third is refused with 503
    let mut refused = connect(addr);
    refused.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    let mut reader = BufReader::new(refused);
    let (status, body) = try_read_response(&mut reader).expect("no 503 at the cap");
    assert_eq!(status, 503, "{body}");
    drop(parked);
    thread::sleep(Duration::from_millis(300));
    let (status, body) =
        raw_exchange(addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("no recovery");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    server.drain();
}

#[test]
fn empty_and_zero_length_bodies_are_handled() {
    let server = server_with(ServerConfig::default());
    let addr = server.addr();
    // no framing headers at all → 411
    let (status, body) = raw_exchange(
        addr,
        b"POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\n\r\n",
    )
    .unwrap();
    assert_eq!(status, 411, "{body}");
    // explicit zero-length body → validated as the empty document
    let (status, body) = raw_exchange(
        addr,
        b"POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"valid\":false"), "{body}");
    // wrong verb on a known route → 405
    let (status, _) = raw_exchange(
        addr,
        b"DELETE /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\n\r\n",
    )
    .unwrap();
    assert_eq!(status, 405);
    server.drain();
}
