//! Figure-by-figure reproduction of the paper's artifacts (experiment
//! index F1–FA in DESIGN.md). Every figure in the paper is either a
//! document, a schema, a generated interface, or generated code — each
//! test regenerates the corresponding artifact and checks its content.

use schema::corpus::*;
use schema::{BuiltinType, CompiledSchema, TypeRef};

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

// ---------------------------------------------------------------- F1 --

#[test]
fn fig1_purchase_order_document_roundtrips() {
    let doc = xmlparse::parse_document(PURCHASE_ORDER_XML).unwrap();
    let root = doc.root_element().unwrap();
    // the parse is lossless
    assert_eq!(
        format!("{}\n", dom::serialize(&doc, root).unwrap()),
        PURCHASE_ORDER_XML
    );
    // structure as in the paper: purchaseOrder with 4 children
    let children: Vec<_> = doc
        .child_elements(root)
        .map(|c| doc.tag_name(c).unwrap().to_string())
        .collect();
    assert_eq!(children, ["shipTo", "billTo", "comment", "items"]);
    // line 21/27: USPrice values
    let prices: Vec<String> = doc
        .elements_named(root, "USPrice")
        .map(|n| doc.text_content(n).unwrap())
        .collect();
    assert_eq!(prices, ["148.95", "39.98"]);
}

#[test]
fn fig1_document_is_valid_per_fig2_3_schema() {
    let doc = xmlparse::parse_document(PURCHASE_ORDER_XML).unwrap();
    assert!(validator::validate_document(&po(), &doc).is_empty());
}

// ------------------------------------------------------------- F2/F3 --

#[test]
fn fig2_3_schema_components() {
    let c = po();
    let s = c.schema();
    // elements (lines 8–9)
    assert_eq!(
        s.element("purchaseOrder").unwrap().type_ref,
        TypeRef::Named("PurchaseOrderType".into())
    );
    assert_eq!(
        s.element("comment").unwrap().type_ref,
        TypeRef::Builtin(BuiltinType::String)
    );
    // PurchaseOrderType (10–23): sequence + orderDate attribute
    let attrs = s.effective_attributes("PurchaseOrderType").unwrap();
    assert_eq!(attrs[0].name, "orderDate");
    assert!(matches!(
        attrs[0].type_ref,
        TypeRef::Builtin(BuiltinType::Date)
    ));
    // USAddress (24–33): country fixed US
    let attrs = s.effective_attributes("USAddress").unwrap();
    assert_eq!(attrs[0].fixed.as_deref(), Some("US"));
    // quantity (41–46): anonymous positiveInteger restriction < 100
    let item_t = s.child_element_type("Items", "item").unwrap();
    let q = s.child_element_type(item_t.name(), "quantity").unwrap();
    assert!(s.validate_simple_value(&q, "99").is_ok());
    assert!(s.validate_simple_value(&q, "100").is_err());
    // SKU (57–61): pattern \d{3}-[A-Z]{2}
    let sku = TypeRef::Named("SKU".into());
    assert!(s.validate_simple_value(&sku, "926-AA").is_ok());
    assert!(s.validate_simple_value(&sku, "926-aa").is_err());
}

// ---------------------------------------------------------------- F4 --

#[test]
fn fig4_dom_representation_uses_generic_element_interface() {
    let doc = xmlparse::parse_document(
        "<purchaseOrder orderDate=\"1999-10-20\"><shipTo country=\"US\"><name>Alice Smith</name></shipTo></purchaseOrder>",
    )
    .unwrap();
    let root = doc.root_element().unwrap();
    let dump = dom::dump_tree(&doc, root).unwrap();
    // every node is just "Element" — the deficiency V-DOM corrects
    assert_eq!(
        dump,
        "Element \"purchaseOrder\" orderDate=\"1999-10-20\"\n  \
         Element \"shipTo\" country=\"US\"\n    \
         Element \"name\"\n      \
         Text \"Alice Smith\"\n"
    );
}

// ---------------------------------------------------------------- F5 --

#[test]
fn fig5_union_type_interface() {
    let schema = schema::parse_schema(CHOICE_PO_XSD).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let idl = codegen::render_union_idl(&model);
    // Fig. 5 lines 2–5: the union typedef with a switch enum
    assert!(idl.contains("typedef union PurchaseOrderTypeCC1Union"));
    assert!(idl.contains("switch (enum PurchaseOrderTypeCC1ST(singAddr,twoAddr))"));
    assert!(idl.contains("case singAddr: singAddrElement singAddr;"));
    assert!(idl.contains("case twoAddr: twoAddrElement twoAddr;"));
    // lines 6–8: the three attributes
    assert!(idl.contains("attribute PurchaseOrderTypeCC1Union PurchaseOrderTypeCC1;"));
    assert!(idl.contains("attribute commentElement comment;"));
    assert!(idl.contains("attribute itemsElement items;"));
}

// ---------------------------------------------------------------- F6 --

#[test]
fn fig6_inheritance_interface_with_merged_naming() {
    let schema = schema::parse_schema(CHOICE_PO_XSD).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let idl = codegen::render_idl(&model);
    // Fig. 6 line 2: the empty super-interface
    assert!(idl.contains("interface PurchaseOrderTypeCC1Group"));
    // lines 3–4: alternatives inherit from it
    assert!(idl.contains("interface singAddrElement: PurchaseOrderTypeCC1Group"));
    assert!(idl.contains("interface twoAddrElement: PurchaseOrderTypeCC1Group"));
    // line 6: the choice field is typed by the group interface
    assert!(idl.contains("attribute PurchaseOrderTypeCC1Group PurchaseOrderTypeCC1;"));
}

// ---------------------------------------------------------------- F7 --

#[test]
fn fig7_vdom_representation_shows_generated_interfaces() {
    let compiled = po();
    let mut td = vdom::TypedDocument::new(compiled);
    let root = td.create_root("purchaseOrder").unwrap();
    td.set_attribute(root, "orderDate", "1999-10-20").unwrap();
    let ship = td.append_element(root, "shipTo").unwrap();
    td.set_attribute(ship, "country", "US").unwrap();
    let name = td.append_element(ship, "name").unwrap();
    td.append_text(name, "Alice Smith").unwrap();
    let dump = vdom::dump_typed(&td, root).unwrap();
    // in contrast to Fig. 4, every node carries its generated interface
    assert!(dump.contains("purchaseOrderElement : PurchaseOrderTypeType"));
    assert!(dump.contains("shipToElement : USAddressType"));
    assert!(dump.contains("nameElement : string"));
}

// ---------------------------------------------------------------- F8 --

#[test]
fn fig8_jsp_style_page() {
    // the Fig. 8 server page: current directory as select/options
    let archive = webgen::MediaArchive::generate(42, 4, 2);
    let data = webgen::DirectoryPageData::from_media(&archive.root());
    let page = webgen::render_string(&data);
    assert!(page.contains("<select name=\"directories\">"));
    assert!(page.contains(">..</option>"));
    for dir in &data.sub_dirs {
        assert!(page.contains(&format!(">{dir}</option>")));
    }
    // nothing checked it — but this one happens to be valid WML
    let wml = CompiledSchema::parse(WML_XSD).unwrap();
    let doc = xmlparse::parse_document(&page).unwrap();
    assert!(validator::validate_document(&wml, &doc).is_empty());
}

// ---------------------------------------------------------------- F9 --

#[test]
fn fig9_preprocessor_pipeline() {
    // P-XML program → (preprocessor) → V-DOM program, statically validated
    let compiled = po();
    let template = pxml::Template::parse(
        "<shipTo country=\"US\">$n$<street>123 Maple Street</street>\
         <city>Mill Valey</city><state>CA</state><zip>90952</zip></shipTo>",
    )
    .unwrap();
    let env = pxml::TypeEnv::new().element("n", "name");
    // validation happens without running anything
    assert!(pxml::check_template(&compiled, &template, &env).is_empty());
    // and the output is a V-DOM program
    let code = pxml::emit_rust(&compiled, &template, &env, "build_ship_to").unwrap();
    assert!(code.contains("create_root_typed(\"shipTo\""));
    assert!(code.contains("td.set_attribute(e0, \"country\", \"US\")?;"));
    assert!(code.contains("td.import_element(e0, &n.doc, n.root)?;"));
    assert!(code.contains("append_text(e1, \"123 Maple Street\")?;"));
    // a broken constructor never reaches emission
    let bad = pxml::Template::parse("<shipTo country=\"US\"><zip>1</zip></shipTo>").unwrap();
    assert!(pxml::emit_rust(&compiled, &bad, &env, "f").is_err());
}

// --------------------------------------------------------------- F10 --

#[test]
fn fig10_pxml_wml_page_equals_fig8_page() {
    let wml = CompiledSchema::parse(WML_XSD).unwrap();
    let archive = webgen::MediaArchive::generate(42, 4, 2);
    let data = webgen::DirectoryPageData::from_media(&archive.root());
    let fig8 = webgen::render_string(&data);
    let fig10 = webgen::PxmlDirectoryPage::new(&wml)
        .unwrap()
        .render(&data)
        .unwrap();
    // the paper: Fig. 10 "generates the same pages as … Fig. 8"
    assert_eq!(fig8, fig10);
}

// --------------------------------------------------------------- F11 --

#[test]
fn fig11_generated_vdom_code_for_the_option_template() {
    let wml = CompiledSchema::parse(WML_XSD).unwrap();
    let template = pxml::Template::parse("<option value=\"$subDir$\">$label$</option>").unwrap();
    let env = pxml::TypeEnv::new().text("subDir").text("label");
    let code = pxml::emit_rust(&wml, &template, &env, "build_option").unwrap();
    // Fig. 11 lines 18–19: createOption(label) + setValue(subDir)
    assert!(code.contains("create_root_typed(\"option\""));
    assert!(code.contains("td.set_attribute(e0, \"value\", sub_dir)?;"));
    assert!(code.contains("td.append_text(e0, label)?;"));
}

// ---------------------------------------------------------- Appendix A --

#[test]
fn appendix_a_generated_interfaces() {
    let schema = schema::parse_schema(PURCHASE_ORDER_XSD).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let idl = codegen::render_idl(&model);
    // lines 1–4
    assert!(idl.contains("interface purchaseOrderElement {"));
    assert!(idl.contains("attribute PurchaseOrderTypeType content;"));
    assert!(idl.contains("interface commentElement {"));
    // lines 5–14: PurchaseOrderTypeType with nested element interfaces
    assert!(idl.contains("interface PurchaseOrderTypeType {"));
    assert!(idl.contains("attribute shipToElement shipTo;"));
    assert!(idl.contains("attribute billToElement billTo;"));
    assert!(idl.contains("attribute commentElement comment;"));
    assert!(idl.contains("attribute itemsElement items;"));
    assert!(idl.contains("attribute Date orderDate;"));
    // lines 15–27: USAddressType
    assert!(idl.contains("interface USAddressType {"));
    assert!(idl.contains("attribute zipElement zip;"));
    assert!(idl.contains("attribute NMToken country;"));
    // lines 28–45: itemsType with the item list
    assert!(idl.contains("attribute list<itemElement> item;"));
    assert!(idl.contains("attribute SKU partNum;"));
    // line 46: SKU restriction
    assert!(idl.contains("interface SKU: string { ... }"));
}

// ------------------------------------------ Sect. 3 feature walkthrough --

#[test]
fn sect3_type_extension_example() {
    // the Address/USAddress pair: inheritance + merged content
    let c = CompiledSchema::parse(ADDRESS_EXTENSION_XSD).unwrap();
    let schema = schema::parse_schema(ADDRESS_EXTENSION_XSD).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let idl = codegen::render_idl(&model);
    assert!(idl.contains("interface USAddressType: AddressType"));
    // instances of the subtype are allowed where the base is expected —
    // checked here through the content DFA of the extension
    let dfa = c.content_dfa("USAddress").unwrap();
    assert!(dfa.accepts(["name", "street", "city", "state", "zip"]));
}

#[test]
fn sect3_substitution_group_example() {
    let schema = schema::parse_schema(SUBSTITUTION_XSD).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let idl = codegen::render_idl(&model);
    // "interface shipCommentElement: CommentElement" (modulo case of the
    // generated element-interface names)
    assert!(idl.contains("interface shipCommentElement: commentElement"));
    assert!(idl.contains("interface customerCommentElement: commentElement"));
    // members usable anywhere the head is
    let c = CompiledSchema::parse(SUBSTITUTION_XSD).unwrap();
    let mut td = vdom::TypedDocument::new(c);
    let root = td.create_root("order").unwrap();
    let id = td.append_element(root, "id").unwrap();
    td.append_text(id, "1").unwrap();
    td.append_element(root, "customerComment").unwrap();
    td.append_element(root, "comment").unwrap();
    td.append_element(root, "shipComment").unwrap();
    assert!(td.is_complete(root).unwrap());
}

#[test]
fn sect3_abstract_elements() {
    let xsd = r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
      <xsd:element name="payment" type="xsd:string" abstract="true"/>
      <xsd:element name="creditCard" type="xsd:string" substitutionGroup="payment"/>
    </xsd:schema>"#;
    let schema = schema::parse_schema(xsd).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let iface = model.interface("paymentElement").unwrap();
    assert!(iface.is_abstract);
    let idl = codegen::render_idl(&model);
    assert!(idl.contains("abstract interface paymentElement"));
}

#[test]
fn sect3_named_group_example() {
    // the AddressGroup escape hatch
    let schema = schema::parse_schema(NAMED_GROUP_XSD).unwrap();
    let model = normalize::build_model(&schema).unwrap();
    let idl = codegen::render_idl(&model);
    assert!(idl.contains("interface AddressGroup"));
    assert!(idl.contains("interface singAddrElement: AddressGroup"));
}
