//! Adversarial patch battery: hostile payloads and resource floods
//! against [`validator::IncrementalValidator`].
//!
//! Every case must end one of three ways — committed with a faithful
//! serialize→reparse round trip, rejected with a *typed* error, or
//! refused by [`Limits`] with a typed `Resource` kind — and never with a
//! panic, a corrupted session document, or unbounded latency. After
//! every rejection the held document must serialize byte-identically to
//! its pre-patch form.

use limits::{Limits, ResourceErrorKind};
use schema::corpus::{PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;
use std::time::{Duration, Instant};
use validator::{
    validate_document, validate_str_streaming, DomPatch, IncrementalValidator, NewNode, PatchError,
};

fn po_session() -> IncrementalValidator {
    let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
    let order = webgen::render_order_string(&webgen::generate_order(3, 2));
    let doc = xmlparse::parse_document(&order).unwrap();
    IncrementalValidator::new(compiled, doc).unwrap()
}

fn wml_session() -> IncrementalValidator {
    let compiled = CompiledSchema::parse(WML_XSD).unwrap();
    let doc = xmlparse::parse_document(
        "<wml><card id=\"c1\" title=\"T\"><p>hello <b>bold</b> tail</p></card></wml>",
    )
    .unwrap();
    IncrementalValidator::new(compiled, doc).unwrap()
}

fn snapshot(session: &IncrementalValidator) -> String {
    let doc = session.document();
    dom::serialize(doc, doc.document_node()).unwrap()
}

/// Finds the path of the first text node under the root's named child
/// chain, e.g. `text_path(&s, &["shipTo", "name"])`.
fn text_path(session: &IncrementalValidator, chain: &[&str]) -> Vec<usize> {
    let doc = session.document();
    let mut node = doc.document_node();
    let mut path = Vec::new();
    let root = doc.root_element().unwrap();
    let root_idx = doc
        .child_slice(node)
        .unwrap()
        .iter()
        .position(|&c| c == root)
        .unwrap();
    path.push(root_idx);
    node = root;
    for name in chain {
        let children = doc.child_slice(node).unwrap();
        let idx = children
            .iter()
            .position(|&c| doc.tag_name(c).map(|n| n == *name).unwrap_or(false))
            .unwrap_or_else(|| panic!("no <{name}> under the chain"));
        path.push(idx);
        node = children[idx];
    }
    // first text child
    let children = session.document().child_slice(node).unwrap();
    let idx = children
        .iter()
        .position(|&c| matches!(session.document().kind(c), Ok(dom::NodeKind::Text(_))))
        .expect("chain tail has a text child");
    path.push(idx);
    path
}

fn root_path(session: &IncrementalValidator) -> Vec<usize> {
    let doc = session.document();
    let root = doc.root_element().unwrap();
    vec![doc
        .child_slice(doc.document_node())
        .unwrap()
        .iter()
        .position(|&c| c == root)
        .unwrap()]
}

/// Markup metacharacters, `]]>`, and whitespace pathologies through
/// `SetText`: each either commits (and the serialization reparses to the
/// same value — escaping is the validator's problem, not the caller's)
/// or is rejected typed, with byte-identical rollback.
#[test]
fn hostile_text_payloads_round_trip_or_reject_typed() {
    let mut session = po_session();
    let path = text_path(&session, &["comment"]);
    let payloads: &[&str] = &[
        "]]>",
        "a < b & c > d",
        "\"quoted\" & 'apos'",
        "<![CDATA[not a cdata open]]>",
        "&amp; literal ampersand text &",
        "line\rlone carriage return",
        "line\r\ncrlf",
        "tab\tand newline\n",
        "",
        " \t\n ",
        "\u{FFFD} replacement",
        "ends with ]]",
    ];
    for payload in payloads {
        let before = snapshot(&session);
        let patch = DomPatch::SetText {
            at: path.clone(),
            text: (*payload).to_string(),
        };
        match session.apply(&patch) {
            Ok(()) => {
                // committed: the serialized form must reparse and still
                // validate cleanly, and the text must survive unmangled
                let xml = snapshot(&session);
                let reparsed = xmlparse::parse_document(&xml)
                    .unwrap_or_else(|e| panic!("{payload:?} serialized unparseable: {e}"));
                assert!(
                    validate_document(session.schema(), &reparsed).is_empty(),
                    "{payload:?} committed but round trip is invalid"
                );
            }
            Err(PatchError::Invalid(_) | PatchError::Structure(_)) => {
                assert_eq!(snapshot(&session), before, "{payload:?} rollback broken");
            }
            Err(other) => panic!("{payload:?} unexpected error class: {other}"),
        }
    }
    // control characters are never XML: typed structure rejection
    for payload in ["nul\u{0}byte", "\u{8}", "escape\u{1b}"] {
        let before = snapshot(&session);
        let err = session
            .apply(&DomPatch::SetText {
                at: path.clone(),
                text: payload.to_string(),
            })
            .unwrap_err();
        assert!(
            matches!(err, PatchError::Structure(_)),
            "{payload:?} must be a structure rejection, got {err}"
        );
        assert_eq!(snapshot(&session), before);
    }
}

/// The same hostility through attribute values.
#[test]
fn hostile_attribute_payloads_round_trip_or_reject_typed() {
    let mut session = po_session();
    let root = root_path(&session);
    for payload in ["]]>", "a\"b", "<tag>", "1999-10-20\r", "&#x41;", ""] {
        let before = snapshot(&session);
        let patch = DomPatch::SetAttr {
            at: root.clone(),
            name: "orderDate".into(),
            value: (*payload).to_string(),
        };
        match session.apply(&patch) {
            Ok(()) => {
                let xml = snapshot(&session);
                let reparsed = xmlparse::parse_document(&xml).unwrap();
                assert!(validate_document(session.schema(), &reparsed).is_empty());
            }
            Err(PatchError::Invalid(_) | PatchError::Structure(_)) => {
                assert_eq!(snapshot(&session), before, "{payload:?} rollback broken");
            }
            Err(other) => panic!("{payload:?} unexpected error class: {other}"),
        }
    }
    // `xml:*` built-ins are always permitted (parity with the full
    // validator, which skips them when undeclared) and must round-trip
    session
        .apply(&DomPatch::SetAttr {
            at: root.clone(),
            name: "xml:lang".into(),
            value: "en".into(),
        })
        .unwrap();
    let xml = snapshot(&session);
    let reparsed = xmlparse::parse_document(&xml).unwrap();
    assert!(validate_document(session.schema(), &reparsed).is_empty());
    // attribute names that are not XML names / carry namespace colons the
    // schema never declared
    for name in ["soap:mustUnderstand", "a b", "", "9lives"] {
        let before = snapshot(&session);
        let result = session.apply(&DomPatch::SetAttr {
            at: root.clone(),
            name: (*name).to_string(),
            value: "x".into(),
        });
        match result {
            Err(PatchError::Invalid(_) | PatchError::Structure(_)) => {
                assert_eq!(snapshot(&session), before, "{name:?} rollback broken");
            }
            Ok(()) => panic!("{name:?} must not be accepted as an attribute"),
            Err(other) => panic!("{name:?} unexpected error class: {other}"),
        }
    }
}

/// Wrong and wrong-namespace element QNames in inserted fragments:
/// either the fragment refuses to parse (typed `Fragment`) or the DFA
/// rejects the undeclared child (typed `Invalid`), never a panic.
#[test]
fn wrong_namespace_qnames_reject_typed() {
    let mut session = po_session();
    let root = root_path(&session);
    let fragments = [
        "<po:comment xmlns:po=\"http://other\">x</po:comment>",
        "<comment xmlns=\"http://wrong-default\">x</comment>",
        "<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\"/>",
        "<:badname/>",
        "<xml-reserved/>",
    ];
    for xml in fragments {
        let before = snapshot(&session);
        let result = session.apply(&DomPatch::AppendChild {
            at: root.clone(),
            child: NewNode::Element {
                xml: (*xml).to_string(),
            },
        });
        match result {
            Err(PatchError::Invalid(_) | PatchError::Fragment(_) | PatchError::Structure(_)) => {
                assert_eq!(snapshot(&session), before, "{xml:?} rollback broken");
            }
            Ok(()) => panic!("{xml:?} must not validate under the purchase-order schema"),
            Err(other) => panic!("{xml:?} unexpected error class: {other}"),
        }
    }
}

/// Comments and processing instructions serialize *raw*, so the patch
/// layer must refuse the payloads that would break the serialization —
/// `--` or trailing `-` in comments, `?>` or an `xml` target in PIs.
#[test]
fn unserializable_comment_and_pi_payloads_are_structure_errors() {
    let mut session = po_session();
    let root = root_path(&session);
    let cases: &[NewNode] = &[
        NewNode::Comment("a -- b".into()),
        NewNode::Comment("ends with -".into()),
        NewNode::Pi {
            target: "xml".into(),
            data: "version=\"1.0\"".into(),
        },
        NewNode::Pi {
            target: "XML".into(),
            data: "x".into(),
        },
        NewNode::Pi {
            target: "app".into(),
            data: "breaks ?> out".into(),
        },
        NewNode::Comment("nul \u{0}".into()),
    ];
    for child in cases {
        let before = snapshot(&session);
        let err = session
            .apply(&DomPatch::AppendChild {
                at: root.clone(),
                child: child.clone(),
            })
            .unwrap_err();
        assert!(
            matches!(err, PatchError::Structure(_)),
            "{child:?} must be a structure rejection, got {err}"
        );
        assert_eq!(snapshot(&session), before, "{child:?} rollback broken");
    }
    // benign comment/PI forms DO commit anywhere (they are transparent to
    // content models)
    session
        .apply(&DomPatch::AppendChild {
            at: root.clone(),
            child: NewNode::Comment("a - b, single dashes - fine".into()),
        })
        .unwrap();
    session
        .apply(&DomPatch::AppendChild {
            at: root.clone(),
            child: NewNode::Pi {
                target: "app".into(),
                data: "k='v'".into(),
            },
        })
        .unwrap();
    let xml = snapshot(&session);
    assert!(validate_str_streaming(session.schema(), &xml).is_empty());
}

/// Occurrence overflow exactly at the DFA boundary: `comment?` is
/// maxOccurs-1, and WML `option+` inside `select` is minOccurs-1 — the
/// append/remove that crosses each boundary must flip the verdict.
#[test]
fn occurrence_overflow_at_dfa_boundary() {
    // purchase order: the corpus generator emits a comment already? build
    // from a known state: remove any comment, then add two.
    let mut session = po_session();
    let root = root_path(&session);
    let doc = session.document();
    let root_node = doc.root_element().unwrap();
    if let Some(idx) = doc
        .child_slice(root_node)
        .unwrap()
        .iter()
        .position(|&c| doc.tag_name(c).map(|n| n == "comment").unwrap_or(false))
    {
        session
            .apply(&DomPatch::RemoveChild {
                at: root.clone(),
                index: idx,
            })
            .unwrap();
    }
    let comment = NewNode::Element {
        xml: "<comment>first</comment>".into(),
    };
    // first comment: fits the optional slot (insert before <items>)
    let items_idx = {
        let doc = session.document();
        let root_node = doc.root_element().unwrap();
        doc.child_slice(root_node)
            .unwrap()
            .iter()
            .position(|&c| doc.tag_name(c).map(|n| n == "items").unwrap_or(false))
            .unwrap()
    };
    session
        .apply(&DomPatch::InsertChild {
            at: root.clone(),
            index: items_idx,
            child: comment.clone(),
        })
        .unwrap();
    // second comment: occurrence overflow, typed Invalid, rolled back
    let before = snapshot(&session);
    let err = session
        .apply(&DomPatch::InsertChild {
            at: root.clone(),
            index: items_idx,
            child: comment,
        })
        .unwrap_err();
    assert!(matches!(err, PatchError::Invalid(_)), "got {err}");
    assert_eq!(snapshot(&session), before);

    // WML: <select> requires option+ — removing the last option crosses
    // the minOccurs boundary
    let compiled = CompiledSchema::parse(WML_XSD).unwrap();
    let doc = xmlparse::parse_document(
        "<wml><card id=\"c\" title=\"t\"><p><select name=\"s\">\
         <option value=\"1\">one</option></select></p></card></wml>",
    )
    .unwrap();
    let mut session = IncrementalValidator::new(compiled, doc).unwrap();
    let select_path = vec![0, 0, 0, 0];
    let before = snapshot(&session);
    let err = session
        .apply(&DomPatch::RemoveChild {
            at: select_path.clone(),
            index: 0,
        })
        .unwrap_err();
    assert!(matches!(err, PatchError::Invalid(_)), "got {err}");
    assert_eq!(snapshot(&session), before);
    // but appending a second option is fine (unbounded maxOccurs)
    session
        .apply(&DomPatch::AppendChild {
            at: select_path,
            child: NewNode::Element {
                xml: "<option value=\"2\">two</option>".into(),
            },
        })
        .unwrap();
}

/// Patch floods against `Limits`: a byte-cap refuses oversized payloads
/// with `PatchTooLarge`, a rate-cap cuts the session off with
/// `TooManyPatches`, both as typed `Resource` rejections that leave the
/// document intact — and the refusal path stays fast even under a large
/// flood.
#[test]
fn patch_floods_hit_typed_resource_limits() {
    let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
    let order = webgen::render_order_string(&webgen::generate_order(9, 2));
    let doc = xmlparse::parse_document(&order).unwrap();
    let limits = Limits::default()
        .with_max_patch_bytes(256)
        .with_max_patches(50);
    let mut session = IncrementalValidator::with_limits(compiled, doc, limits).unwrap();
    let root = root_path(&session);

    // oversized payload: typed PatchTooLarge carrying both numbers
    let big = "x".repeat(4096);
    let before = snapshot(&session);
    let err = session
        .apply(&DomPatch::SetAttr {
            at: root.clone(),
            name: "orderDate".into(),
            value: big,
        })
        .unwrap_err();
    match err {
        PatchError::Resource(ResourceErrorKind::PatchTooLarge { limit, actual }) => {
            assert_eq!(limit, 256);
            assert!(actual >= 4096, "actual={actual}");
        }
        other => panic!("expected PatchTooLarge, got {other}"),
    }
    assert_eq!(snapshot(&session), before);

    // flood: after the 50-patch budget every further patch is refused
    // with TooManyPatches, quickly, and the document never changes
    let flood_started = Instant::now();
    let mut too_many = 0u32;
    let mut last_committed = before;
    for i in 0..2_000u32 {
        let result = session.apply(&DomPatch::SetAttr {
            at: root.clone(),
            name: "orderDate".into(),
            value: format!("1999-10-{:02}", (i % 28) + 1),
        });
        match result {
            Ok(()) => last_committed = snapshot(&session),
            Err(PatchError::Resource(ResourceErrorKind::TooManyPatches { limit })) => {
                assert_eq!(limit, 50);
                too_many += 1;
            }
            Err(other) => panic!("flood patch {i}: unexpected {other}"),
        }
    }
    assert!(too_many >= 1_900, "flood was not cut off: {too_many}");
    assert!(
        flood_started.elapsed() < Duration::from_secs(10),
        "flood handling latency unbounded: {:?}",
        flood_started.elapsed()
    );
    assert_eq!(
        snapshot(&session),
        last_committed,
        "refused flood mutated the document"
    );
    assert!(session.rejected_total() >= u64::from(too_many));

    // counters stayed coherent through the flood
    assert!(validate_document(session.schema(), session.document()).is_empty());
}

/// Path attacks: out-of-range indexes, the document node itself, paths
/// through text nodes — all typed `Structure`, never a panic.
#[test]
fn malformed_paths_are_structure_errors() {
    let mut session = wml_session();
    let before = snapshot(&session);
    let bad_paths: &[Vec<usize>] = &[
        vec![99],
        vec![0, 99],
        vec![0, 0, 0, 0, 0, 0, 0, 0],
        vec![usize::MAX],
    ];
    for at in bad_paths {
        let err = session
            .apply(&DomPatch::SetText {
                at: at.clone(),
                text: "x".into(),
            })
            .unwrap_err();
        assert!(
            matches!(err, PatchError::Structure(_)),
            "{at:?} must be structure, got {err}"
        );
    }
    // SetText on an element, SetAttr on a text node
    let err = session
        .apply(&DomPatch::SetText {
            at: vec![0],
            text: "x".into(),
        })
        .unwrap_err();
    assert!(matches!(err, PatchError::Structure(_)));
    let err = session
        .apply(&DomPatch::SetAttr {
            at: vec![0, 0, 0, 0],
            name: "a".into(),
            value: "b".into(),
        })
        .unwrap_err();
    assert!(matches!(err, PatchError::Structure(_)));
    // RemoveChild index == len
    let err = session
        .apply(&DomPatch::RemoveChild {
            at: vec![0],
            index: 999,
        })
        .unwrap_err();
    assert!(matches!(err, PatchError::Structure(_)));
    assert_eq!(
        snapshot(&session),
        before,
        "path attacks mutated the document"
    );
}

/// Malformed fragment payloads: truncated markup, doubled roots, raw
/// `<`, entity bombs — typed `Fragment` errors, document intact.
#[test]
fn malformed_fragments_are_fragment_errors() {
    let mut session = wml_session();
    let before = snapshot(&session);
    let fragments = [
        "<card id=\"x\" title=\"y\">",
        "<a/><b/>",
        "no markup at all",
        "<p>unclosed",
        "<p attr=unquoted>x</p>",
        "<!DOCTYPE p [<!ENTITY a \"&b;\"><!ENTITY b \"&a;\">]><p>&a;</p>",
        "",
    ];
    for xml in fragments {
        let err = session
            .apply(&DomPatch::AppendChild {
                at: vec![0],
                child: NewNode::Element {
                    xml: (*xml).to_string(),
                },
            })
            .unwrap_err();
        assert!(
            matches!(err, PatchError::Fragment(_) | PatchError::Structure(_)),
            "{xml:?} must be a typed fragment/structure error, got {err}"
        );
    }
    assert_eq!(snapshot(&session), before);
}
