//! Allocation-count smoke test for the zero-copy pipeline: streaming
//! validation of an entity-free document performs **zero heap
//! allocations per event** — all per-document costs (frame stack,
//! attribute buffer, open-element stack) are O(depth), not O(length).
//!
//! Method: a counting global allocator wraps the system allocator (this
//! test file is its own binary, so the counter sees only this test).
//! Validating a document with 10× the events must cost *exactly* the
//! same number of allocations as the small one — any per-event
//! allocation would scale with the event count and break the equality.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use schema::corpus::WML_XSD;
use schema::CompiledSchema;
use validator::validate_str_streaming;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The two tests measure a process-global counter; hold this across each
/// measured region so the harness's parallel test threads cannot bleed
/// allocations into each other's window.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// A flat, entity-free WML page with `n` options — event count scales
/// linearly with `n` while depth stays constant.
fn flat_page(n: usize) -> String {
    let mut page = String::from("<wml><card id=\"c\"><p><select name=\"d\">");
    for i in 0..n {
        page.push_str(&format!("<option value=\"{i}\">entry {i}</option>"));
    }
    page.push_str("</select></p></card></wml>");
    page
}

#[test]
fn streaming_validation_allocates_zero_per_event() {
    let compiled = CompiledSchema::parse(WML_XSD).unwrap();
    compiled.warm();

    let small = flat_page(100);
    let large = flat_page(1000);

    let _window = MEASURE.lock().unwrap();

    // one throwaway pass over each document: settles every lazy,
    // size-independent cost (symbol table, DFA intern, plan index)
    assert!(validate_str_streaming(&compiled, &small).is_empty());
    assert!(validate_str_streaming(&compiled, &large).is_empty());

    let before_small = allocations();
    let errors = validate_str_streaming(&compiled, &small);
    let cost_small = allocations() - before_small;
    assert!(errors.is_empty(), "{errors:#?}");

    let before_large = allocations();
    let errors = validate_str_streaming(&compiled, &large);
    let cost_large = allocations() - before_large;
    assert!(errors.is_empty(), "{errors:#?}");

    // ~2700 more events in the large document; equality means exactly
    // zero allocations per event
    assert_eq!(
        cost_large, cost_small,
        "per-event allocations detected: {cost_small} allocs for 100 \
         options vs {cost_large} for 1000"
    );
}

#[test]
fn borrowed_event_stream_allocates_zero_per_event() {
    // the parser alone, below the validator: pulling borrowed events
    // over an entity-free document costs O(depth) allocations total
    let small = flat_page(100);
    let large = flat_page(1000);

    let drain = |src: &str| {
        let mut reader = xmlparse::Reader::new(src);
        let mut events = 0u64;
        loop {
            match reader.next_event_borrowed() {
                Ok(xmlparse::BorrowedEvent::Eof) => return events,
                Ok(e) => {
                    assert!(e.is_fully_borrowed(), "owned copy on clean input: {e:?}");
                    events += 1;
                }
                Err(e) => panic!("unexpected parse error: {e}"),
            }
        }
    };

    let _window = MEASURE.lock().unwrap();

    drain(&small);
    drain(&large);

    let before_small = allocations();
    let events_small = drain(&small);
    let cost_small = allocations() - before_small;

    let before_large = allocations();
    let events_large = drain(&large);
    let cost_large = allocations() - before_large;

    assert!(events_large > events_small * 9);
    assert_eq!(
        cost_large, cost_small,
        "per-event allocations detected in the parser: {cost_small} \
         allocs for {events_small} events vs {cost_large} for {events_large}"
    );
}
