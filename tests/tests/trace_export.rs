//! Flight-recorder integration: trace-context propagation across real
//! pool threads, ring wraparound under overflow, and a golden-shape
//! check on the Chrome trace export.
//!
//! The recorder is process-global, so every test takes `TRACE_LOCK` and
//! starts its own flight (`trace::start` discards the previous one).

use std::sync::Mutex;

use pool::ThreadPool;
use webgen::SchemaRegistry;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

const SCHEMA: &str = "purchase-order";

/// Runs an n-thread parallel batch under the recorder and returns the
/// validated export.
fn traced_batch(threads: usize, docs: usize) -> (String, obs::trace::ChromeStats) {
    // compile outside the flight: this test is about the batch's spans
    let registry = SchemaRegistry::with_corpus().unwrap();
    let document = schema::corpus::PURCHASE_ORDER_XML;
    let documents: Vec<&str> = vec![document; docs];
    let pool = ThreadPool::new(threads);

    obs::trace::start(1 << 16);
    let results = registry
        .validate_batch_streaming_parallel(SCHEMA, &documents, &pool)
        .unwrap();
    obs::trace::stop();
    assert_eq!(results.len(), docs);
    assert!(results.iter().all(|r| r.is_empty()), "corpus doc is valid");

    let json = obs::trace::export_chrome_trace();
    let stats = obs::trace::validate_chrome_trace(&json).expect("export must validate");
    (json, stats)
}

#[test]
fn pool_worker_spans_parent_to_the_submitting_batch() {
    let _guard = TRACE_LOCK.lock().unwrap();
    for threads in [1, 2, 8] {
        let (json, stats) = traced_batch(threads, 4 * threads);
        assert_eq!(
            stats.orphan_parents, 0,
            "{threads} threads: every span's parent must be in the export"
        );

        let events = obs::trace::parse_chrome_trace(&json).unwrap();
        let find_span = |name: &str| {
            events
                .iter()
                .find(|e| e.ph == 'B' && e.name == name)
                .unwrap_or_else(|| panic!("{threads} threads: no {name} span"))
                .span
        };
        let registry_span = find_span("registry.validate_batch_parallel");
        let batch_span = find_span("pool.batch");
        let batch = events
            .iter()
            .find(|e| e.ph == 'B' && e.name == "pool.batch")
            .unwrap();
        assert_eq!(
            batch.parent, registry_span,
            "{threads} threads: pool.batch must hang off the registry entry point"
        );

        // every worker-side record — pool.run begins and pool.queue_wait
        // completes, on whatever worker thread they landed — links back
        // to the submitting batch span
        let worker_events: Vec<_> = events
            .iter()
            .filter(|e| {
                (e.ph == 'B' && e.name == "pool.run")
                    || (e.ph == 'X' && e.name == "pool.queue_wait")
            })
            .collect();
        assert!(
            !worker_events.is_empty(),
            "{threads} threads: workers must have recorded spans"
        );
        for e in &worker_events {
            assert_eq!(
                e.parent, batch_span,
                "{threads} threads: {} on tid {} must parent to pool.batch",
                e.name, e.tid
            );
        }
        // the per-document registry.validate spans nest under pool.run
        let run_spans: Vec<u64> = events
            .iter()
            .filter(|e| e.ph == 'B' && e.name == "pool.run")
            .map(|e| e.span)
            .collect();
        for e in events
            .iter()
            .filter(|e| e.ph == 'B' && e.name == "registry.validate")
        {
            assert!(
                run_spans.contains(&e.parent),
                "{threads} threads: registry.validate must parent to a pool.run"
            );
        }
    }
}

#[test]
fn ring_wraparound_stays_exportable() {
    let _guard = TRACE_LOCK.lock().unwrap();
    obs::trace::start(16);
    for _ in 0..500 {
        let _outer = obs::span!("wrap.outer");
        let _inner = obs::span!("wrap.inner");
    }
    obs::trace::stop();

    assert!(
        obs::trace::dropped_records() > 0,
        "500 span pairs must overflow a 16-record ring"
    );
    let json = obs::trace::export_chrome_trace();
    let stats = obs::trace::validate_chrome_trace(&json)
        .expect("wraparound must never produce an unbalanced export");
    assert!(
        stats.begin_end_pairs > 0,
        "the surviving tail must still export matched pairs"
    );
}

/// Remaps volatile fields (timestamps, span ids, thread ids) to stable
/// ones so the export can be compared against a committed golden file.
fn normalize(json: &str) -> String {
    let events = obs::trace::parse_chrome_trace(json).unwrap();
    let mut tids: Vec<u64> = Vec::new();
    let mut spans: Vec<u64> = Vec::new();
    fn remap(id: u64, seen: &mut Vec<u64>) -> String {
        if id == 0 {
            return "-".to_string();
        }
        let i = seen.iter().position(|s| *s == id).unwrap_or_else(|| {
            seen.push(id);
            seen.len() - 1
        });
        format!("S{}", i + 1)
    }
    let mut out = String::new();
    for e in &events {
        let tid = match tids.iter().position(|t| *t == e.tid) {
            Some(i) => i + 1,
            None => {
                tids.push(e.tid);
                tids.len()
            }
        };
        let span = remap(e.span, &mut spans);
        let parent = remap(e.parent, &mut spans);
        out.push_str(&format!(
            "{} {} T{} span={} parent={}\n",
            e.ph, e.name, tid, span, parent
        ));
    }
    out
}

#[test]
fn chrome_trace_golden_shape() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let registry = SchemaRegistry::with_corpus().unwrap();

    obs::trace::start(1 << 16);
    let errors = registry
        .validate_streaming(SCHEMA, schema::corpus::PURCHASE_ORDER_XML)
        .unwrap();
    obs::trace::stop();
    assert!(errors.is_empty());

    let json = obs::trace::export_chrome_trace();
    obs::trace::validate_chrome_trace(&json).expect("golden workload must validate");
    let got = normalize(&json);
    let want = include_str!("../corpora/golden/chrome_trace_po.txt");
    assert_eq!(
        got, want,
        "normalized Chrome export drifted from the golden file;\n\
         if the change is intentional, update tests/corpora/golden/chrome_trace_po.txt"
    );
}
