//! Differential property tests for the zero-copy pipeline: the borrowed
//! event stream must be *identical* (names, attributes, text, spans) to
//! the owned stream on any input, and streaming validation over borrowed
//! events — sequential or fanned out over a thread pool — must produce
//! the same error lists as the tree validator.
//!
//! These properties are what let the reader and validator take the
//! allocation-free fast path without a correctness tax: if a byte-sweep
//! scan loop or a symbol-table lookup ever diverged from the slow string
//! path, one of these tests would present the offending document.

use pool::ThreadPool;
use proptest::prelude::*;
use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;
use validator::{validate_document, validate_str_streaming, ValidationError};
use webgen::SchemaRegistry;
use xmlparse::{Event, Reader};

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

fn wml() -> CompiledSchema {
    CompiledSchema::parse(WML_XSD).unwrap()
}

/// Pulls the full owned-event stream (or the error that ended it).
fn owned_stream(src: &str) -> Result<Vec<Event>, String> {
    let mut reader = Reader::new(src);
    let mut events = Vec::new();
    loop {
        match reader.next_event() {
            Ok(Event::Eof) => {
                events.push(Event::Eof);
                return Ok(events);
            }
            Ok(e) => events.push(e),
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Pulls the borrowed-event stream, converting each event to owned for
/// comparison, and asserting the borrow classification is sound: every
/// event over an entity-free document must be fully borrowed.
fn borrowed_stream(src: &str) -> Result<Vec<Event>, String> {
    let entity_free = !src.contains('&');
    let mut reader = Reader::new(src);
    let mut events = Vec::new();
    loop {
        match reader.next_event_borrowed() {
            Ok(e) => {
                if entity_free && !matches!(e, xmlparse::BorrowedEvent::Eof) {
                    // attribute normalization (tab/newline) is the one
                    // non-entity owner; only assert when values are clean
                    let clean_values =
                        !src.contains('\t') && !src.contains('\n') && !src.contains('\r');
                    if clean_values {
                        assert!(e.is_fully_borrowed(), "owned copy without entities: {e:?}");
                    }
                }
                let done = matches!(e, xmlparse::BorrowedEvent::Eof);
                events.push(e.into_owned());
                if done {
                    return Ok(events);
                }
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Streaming and tree validation must agree on well-formed input; returns
/// the error list.
fn agree(c: &CompiledSchema, src: &str) -> Vec<ValidationError> {
    let streamed = validate_str_streaming(c, src);
    let doc = xmlparse::parse_document(src).expect("well-formed input");
    let treed = validate_document(c, &doc);
    assert_eq!(streamed, treed, "validators disagree on:\n{src}");
    streamed
}

/// Purchase-order mutations, each of which individually invalidates the
/// paper's Fig. 1 document while keeping it well-formed.
const PO_MUTATIONS: &[(&str, &str)] = &[
    ("<zip>90952</zip>", "<zip>not a number</zip>"),
    ("partNum=\"872-AA\"", "partNum=\"oops\""),
    ("<quantity>1</quantity>", "<quantity>900</quantity>"),
    ("country=\"US\"", "country=\"DE\""),
    ("orderDate=\"1999-10-20\"", "orderDate=\"soon\""),
    ("<state>CA</state>", ""),
    ("<city>Mill Valley</city>", "<town>Mill Valley</town>"),
    ("<items>", "<items>loose text"),
    (
        "<purchaseOrder orderDate",
        "<purchaseOrder bogus=\"1\" orderDate",
    ),
    (" partNum=\"926-AA\"", ""),
];

/// A batch mixing valid and mutated orders, deterministically from seeds.
fn mixed_batch(seeds: &[u64]) -> Vec<String> {
    seeds
        .iter()
        .map(|&seed| {
            if seed % 3 == 0 {
                let (from, to) = PO_MUTATIONS[(seed as usize / 3) % PO_MUTATIONS.len()];
                PURCHASE_ORDER_XML.replace(from, to)
            } else {
                let order = webgen::generate_order(seed, (seed % 7) as usize);
                webgen::render_order_string(&order)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Borrowed events ≡ owned events on generated (valid) orders.
    #[test]
    fn borrowed_stream_matches_owned_on_orders(seed in 0u64..500, items in 0usize..15) {
        let order = webgen::generate_order(seed, items);
        let xml = webgen::render_order_string(&order);
        prop_assert_eq!(owned_stream(&xml), borrowed_stream(&xml));
    }

    /// Borrowed events ≡ owned events on mutated paper documents.
    #[test]
    fn borrowed_stream_matches_owned_on_mutations(
        picks in prop::collection::vec(0usize..10, 1..3),
    ) {
        let mut src = PURCHASE_ORDER_XML.to_string();
        for &pick in &picks {
            let (from, to) = PO_MUTATIONS[pick];
            src = src.replace(from, to);
        }
        prop_assert_eq!(owned_stream(&src), borrowed_stream(&src));
    }

    /// Borrowed events ≡ owned events on rendered WML pages over
    /// markup-hostile directory names (entity escapes force the owned
    /// fallback — both streams must resolve them identically).
    #[test]
    fn borrowed_stream_matches_owned_on_wml(
        dirs in prop::collection::vec("[a-zA-Z0-9 <>&\"']{1,12}", 0..6),
    ) {
        let data = webgen::DirectoryPageData {
            sub_dirs: dirs,
            current_dir: "/media/archive".into(),
            parent_dir: "/media".into(),
        };
        let page = webgen::render_string(&data);
        prop_assert_eq!(owned_stream(&page), borrowed_stream(&page));
    }

    /// Borrowed events ≡ owned events on arbitrary inputs, including
    /// non-ASCII, controls, and malformed markup — same events *and* the
    /// same error at the same point.
    #[test]
    fn borrowed_stream_matches_owned_on_arbitrary(input in ".{0,64}") {
        prop_assert_eq!(owned_stream(&input), borrowed_stream(&input));
    }

    /// Streaming over borrowed events ≡ tree validation, on valid and
    /// mutated purchase orders (the zero-copy twin of streaming_prop's
    /// agreement property, now exercising the symbol-dispatch path).
    #[test]
    fn zero_copy_validation_agrees_with_tree(
        picks in prop::collection::vec(0usize..10, 0..3),
    ) {
        let c = po();
        let mut src = PURCHASE_ORDER_XML.to_string();
        for &pick in &picks {
            let (from, to) = PO_MUTATIONS[pick];
            src = src.replace(from, to);
        }
        let errors = agree(&c, &src);
        if picks.is_empty() {
            prop_assert!(errors.is_empty(), "{errors:#?}");
        }
    }

    /// Same agreement on WML pages over hostile names.
    #[test]
    fn zero_copy_validation_agrees_on_wml(
        dirs in prop::collection::vec("[a-zA-Z0-9 <>&\"']{1,12}", 0..6),
    ) {
        let c = wml();
        let data = webgen::DirectoryPageData {
            sub_dirs: dirs,
            current_dir: "/media/archive".into(),
            parent_dir: "/media".into(),
        };
        let errors = agree(&c, &webgen::render_string(&data));
        prop_assert!(errors.is_empty(), "{errors:#?}");
    }

    /// Batch validation through the registry at 1 and 8 threads: both
    /// must equal the per-document sequential truth, document by
    /// document, for batches mixing valid and invalid orders.
    #[test]
    fn parallel_batches_agree_at_one_and_eight_threads(
        seeds in prop::collection::vec(0u64..1000, 1..12),
    ) {
        let reg = SchemaRegistry::with_corpus().unwrap();
        let compiled = reg.get("purchase-order").unwrap();
        let batch = mixed_batch(&seeds);
        let docs: Vec<&str> = batch.iter().map(String::as_str).collect();
        let expected: Vec<Vec<ValidationError>> = docs
            .iter()
            .map(|d| validate_str_streaming(&compiled, d))
            .collect();
        for threads in [1, 8] {
            let pool = ThreadPool::new(threads);
            let got = reg
                .validate_batch_parallel("purchase-order", &docs, &pool)
                .unwrap();
            prop_assert_eq!(&got, &expected, "thread count {}", threads);
        }
    }
}

/// The paper's own document, end to end on both paths — a deterministic
/// anchor alongside the generated cases.
#[test]
fn paper_document_identical_on_both_paths() {
    assert_eq!(
        owned_stream(PURCHASE_ORDER_XML),
        borrowed_stream(PURCHASE_ORDER_XML)
    );
    assert!(agree(&po(), PURCHASE_ORDER_XML).is_empty());
}
