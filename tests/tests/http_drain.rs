//! Graceful-drain battery: a server with requests *in flight* is told to
//! shut down; every in-flight request must complete normally, no new
//! connection may be served afterwards, and nothing is cancelled —
//! `batch_cancelled_total` stays untouched because a drain finishes work
//! rather than killing it. Run at both 2 and 8 connection workers: the
//! small pool forces some accepted connections to still be *queued*
//! when the drain begins, and those must be served too (their bytes are
//! already on the wire).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use serve::{Server, ServerConfig};
use webgen::SchemaRegistry;

fn read_response(stream: TcpStream) -> (u16, String) {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap())
}

/// One in-flight client: sends the request head plus the first half of
/// the body, waits at the barrier (while the main thread starts the
/// drain), then sends the rest and insists on a complete response.
fn half_sent_client(
    addr: SocketAddr,
    path: &str,
    body: Vec<u8>,
    barrier: Arc<Barrier>,
    resume: Arc<Barrier>,
) -> thread::JoinHandle<(u16, String)> {
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream.write_all(head.as_bytes()).unwrap();
        let half = body.len() / 2;
        stream.write_all(&body[..half]).unwrap();
        barrier.wait(); // in flight — main thread may drain now
        resume.wait(); // drain has begun
        stream.write_all(&body[half..]).unwrap();
        read_response(stream)
    })
}

fn drain_with_inflight(conn_workers: usize) {
    let registry = Arc::new(SchemaRegistry::with_corpus().unwrap());
    let cfg = ServerConfig {
        conn_workers,
        batch_threads: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(registry.clone(), "127.0.0.1:0", cfg).unwrap();
    let addr = server.addr();

    let doc = webgen::render_order_string(&webgen::generate_order(9, 8));
    let expected = serve::json::verdict_json(
        "purchase-order",
        &registry.validate_streaming("purchase-order", &doc).unwrap(),
    );
    let batch_docs = [
        webgen::render_order_string(&webgen::generate_order(1, 2)),
        webgen::render_order_string(&webgen::generate_order(2, 3)),
    ];
    let mut batch_body = String::new();
    for d in &batch_docs {
        batch_body.push_str(&format!("{}\n{}", d.len(), d));
    }

    const VALIDATORS: usize = 4;
    // validators + one batch client + this thread
    let barrier = Arc::new(Barrier::new(VALIDATORS + 2));
    let resume = Arc::new(Barrier::new(VALIDATORS + 2));
    let mut clients = Vec::new();
    for _ in 0..VALIDATORS {
        clients.push(half_sent_client(
            addr,
            "/v1/validate/purchase-order",
            doc.clone().into_bytes(),
            barrier.clone(),
            resume.clone(),
        ));
    }
    let batch_client = half_sent_client(
        addr,
        "/v1/batch/purchase-order",
        batch_body.into_bytes(),
        barrier.clone(),
        resume.clone(),
    );

    barrier.wait(); // every client has half a request on the wire
    server.shutdown();
    assert!(server.is_draining());
    thread::sleep(Duration::from_millis(100));
    resume.wait(); // clients finish their bodies mid-drain

    for (i, client) in clients.into_iter().enumerate() {
        let (status, body) = client.join().unwrap();
        assert_eq!(
            status, 200,
            "in-flight client {i} at {conn_workers} workers: {body}"
        );
        assert_eq!(
            body, expected,
            "in-flight client {i} got a degraded verdict during drain"
        );
    }
    let (status, body) = batch_client.join().unwrap();
    assert_eq!(status, 200, "in-flight batch during drain: {body}");
    assert!(body.contains("\"docs\":2"), "{body}");

    server.join(); // blocks until the last in-flight connection is done

    // the listener is gone: no new connection gets served
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let mut buf = [0u8; 1];
            !matches!(s.read(&mut buf), Ok(n) if n > 0)
        }
    };
    assert!(refused, "a drained server served a new connection");

    // drain is completion, not cancellation
    let metrics = obs::metrics().render_prometheus();
    for line in metrics.lines() {
        if line.starts_with("batch_cancelled_total") {
            assert!(
                line.ends_with(" 0"),
                "drain cancelled in-flight work: {line}"
            );
        }
    }
}

#[test]
fn drain_completes_inflight_work_with_two_workers() {
    // fewer workers than clients: some connections are still queued in
    // the pool when the drain flag flips, and must be served anyway
    drain_with_inflight(2);
}

#[test]
fn drain_completes_inflight_work_with_eight_workers() {
    drain_with_inflight(8);
}
