//! Audit of [`ContentDfa::resume`] mid-sibling entry states — the
//! foundation the incremental revalidator (`validator::patch`) stands
//! on.
//!
//! The claim: because the subset-constructed automaton is
//! deterministic, the state reached after consuming a prefix is a pure
//! function of that prefix — so a matcher *resumed* at that state and
//! stepped over the suffix behaves identically (same states, same
//! step outcomes, same `expected()` sets, same acceptance) to a matcher
//! stepped over the whole sequence from state 0. This must hold at
//! **every split point** of both valid sequences and sequences with
//! invalid tails, over **every** content model of both corpus schemas —
//! in particular at positions just after an *optional-particle prefix*
//! (e.g. `purchaseOrder` after `shipTo billTo comment`, where the
//! optional `comment` has shifted the state), the case the audit was
//! written to pin down.

use automata::{ContentDfa, Matcher};
use schema::corpus::{PURCHASE_ORDER_XSD, WML_XSD};
use schema::{CompiledSchema, TypeDef};

/// Every complex type of `xsd` that has an element-content DFA, by name.
fn content_dfas(xsd: &str) -> Vec<(String, std::sync::Arc<ContentDfa>)> {
    let compiled = CompiledSchema::parse(xsd).unwrap();
    let mut out = Vec::new();
    for (name, def) in &compiled.schema().types {
        if matches!(def, TypeDef::Complex(_)) {
            if let Ok(dfa) = compiled.content_dfa(name) {
                out.push((name.clone(), dfa));
            }
        }
    }
    assert!(!out.is_empty(), "no content models found in schema");
    out
}

/// A tiny deterministic LCG so the sequence set is reproducible without
/// pulling in a randomness crate.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[(self.next() as usize) % items.len()])
        }
    }
}

/// Generates symbol sequences against `dfa`: greedy-random walks that
/// follow `expected()` (valid prefixes, some complete), plus variants
/// with deliberately wrong tails. Every distinct shape matters more
/// than volume — the audit compares *behaviors*, so even rejected
/// suffixes are interesting.
fn sequences(dfa: &ContentDfa, seed: u64) -> Vec<Vec<String>> {
    let mut lcg = Lcg(seed);
    let mut out = vec![Vec::new()];
    for len in [1usize, 2, 3, 5, 8, 13] {
        for round in 0..6 {
            let mut m = dfa.start();
            let mut seq = Vec::new();
            for _ in 0..len {
                let choices = m.expected();
                let Some(sym) = lcg.pick(&choices) else { break };
                m.step(sym).expect("expected symbol steps");
                seq.push(sym.clone());
            }
            if seq.is_empty() && len > 1 {
                continue;
            }
            // valid-prefix form
            out.push(seq.clone());
            // wrong-tail form: append a symbol the model never uses, and
            // (every other round) a symbol it uses somewhere but which
            // may be wrong *here*
            let mut bad = seq.clone();
            bad.push("bogus-element".to_string());
            out.push(bad);
            if round % 2 == 0 && !seq.is_empty() {
                let mut shuffled = seq.clone();
                let take = (lcg.next() as usize) % shuffled.len();
                shuffled.rotate_left(take);
                out.push(shuffled);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// The audit core: for `seq`, compare a full walk from state 0 against a
/// resumed walk from every split point. The full walk's state sequence
/// is recorded first; the resumed matcher must then reproduce its exact
/// suffix behavior.
fn audit_sequence(type_name: &str, dfa: &ContentDfa, seq: &[String]) {
    // full walk, recording the state before every position + the outcome
    // of every step
    let mut m = dfa.start();
    let mut states = vec![m.state()];
    let mut outcomes: Vec<Result<(), Vec<String>>> = Vec::new();
    let mut alive = true;
    for sym in seq {
        if !alive {
            break;
        }
        match m.step(sym) {
            Ok(()) => outcomes.push(Ok(())),
            Err(e) => {
                outcomes.push(Err(e.expected));
                alive = false;
            }
        }
        states.push(m.state());
    }
    let full_accepting = alive && m.is_accepting();
    let full_expected = m.expected();
    // the prefix that can be replayed step-by-step: everything before the
    // first failed step (a failed step leaves no meaningful "after" state
    // to resume from)
    let replayable = if alive {
        outcomes.len()
    } else {
        outcomes.len() - 1
    };

    // resume at every split point along the valid prefix
    for split in 0..=replayable {
        let mut r = dfa.resume(states[split]);
        assert_eq!(
            r.state(),
            states[split],
            "{type_name}: resume({}) does not report its own state",
            states[split]
        );
        // the resumed matcher's view of the state must match the full
        // walk's view at the same position
        let mut probe = dfa.resume(states[split]);
        let full_probe = {
            let mut f = dfa.start();
            for sym in &seq[..split] {
                f.step(sym).expect("prefix replays");
            }
            f
        };
        assert_eq!(
            probe.expected(),
            full_probe.expected(),
            "{type_name}: expected() diverges at split {split}"
        );
        assert_eq!(
            probe.is_accepting(),
            full_probe.is_accepting(),
            "{type_name}: is_accepting() diverges at split {split}"
        );
        // try_step_sym parity with step() for one probe symbol
        if let Some(sym) = probe.expected().first().cloned() {
            let stepped = probe.try_step_sym(symbols::intern(&sym));
            assert!(
                stepped,
                "{type_name}: try_step_sym rejects an expected symbol"
            );
        }
        // walk the suffix; states and step outcomes must replay exactly
        for (offset, sym) in seq[split..].iter().enumerate() {
            let pos = split + offset;
            if pos >= outcomes.len() {
                break;
            }
            assert_eq!(
                r.state(),
                states[pos],
                "{type_name}: state diverges at position {pos} (split {split})"
            );
            match (&outcomes[pos], r.step(sym)) {
                (Ok(()), Ok(())) => {}
                (Err(expected), Err(e)) => {
                    assert_eq!(
                        *expected, e.expected,
                        "{type_name}: failure expected-set diverges at {pos}"
                    );
                    break; // full walk stopped here too
                }
                (full, resumed) => panic!(
                    "{type_name}: step outcome diverges at {pos} (split {split}): \
                     full={full:?} resumed={resumed:?}",
                    resumed = resumed.map_err(|e| e.expected),
                ),
            }
        }
        if alive || states[split..].len() > seq.len() - split {
            // both walks consumed the whole sequence (or stopped at the
            // same failure); final verdicts must agree
            if alive {
                assert_eq!(
                    r.is_accepting(),
                    full_accepting,
                    "{type_name}: acceptance diverges after resume at {split}"
                );
                assert_eq!(
                    r.expected(),
                    full_expected,
                    "{type_name}: final expected() diverges after resume at {split}"
                );
            }
        }
    }
}

/// Every content model of both corpus schemas, audited over generated
/// valid and invalid-tail sequences at every split point.
#[test]
fn resumed_stepping_matches_full_stepping_everywhere() {
    let mut models = content_dfas(PURCHASE_ORDER_XSD);
    models.extend(content_dfas(WML_XSD));
    let mut audited = 0usize;
    for (i, (type_name, dfa)) in models.iter().enumerate() {
        for seq in sequences(dfa, 0x5EED_0000 + i as u64) {
            audit_sequence(type_name, dfa, &seq);
            audited += 1;
        }
    }
    assert!(
        audited > 100,
        "suspiciously few sequences audited: {audited}"
    );
}

/// The regression the audit was commissioned for, spelled out by hand:
/// `purchaseOrder`'s model is `shipTo billTo comment? items` — position
/// 2 can be *two different states* depending on whether the optional
/// `comment` was consumed. Resuming must respect the actual state, not
/// the position.
#[test]
fn optional_particle_prefix_states_are_position_independent() {
    let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
    let dfa = compiled.content_dfa("PurchaseOrderType").unwrap();

    // path A: shipTo billTo           → expects comment | items
    let mut a = dfa.start();
    a.step("shipTo").unwrap();
    a.step("billTo").unwrap();
    assert_eq!(
        a.expected(),
        vec!["comment".to_string(), "items".to_string()]
    );

    // path B: shipTo billTo comment   → expects items only
    let mut b = dfa.resume(a.state());
    b.step("comment").unwrap();
    assert_eq!(b.expected(), vec!["items".to_string()]);
    assert_ne!(
        a.state(),
        b.state(),
        "consuming the optional particle must move the state"
    );

    // resuming each state reproduces each behavior
    let mut ra = dfa.resume(a.state());
    assert!(ra.step("comment").is_ok());
    let mut ra2 = dfa.resume(a.state());
    assert!(ra2.step("items").is_ok());
    assert!(ra2.is_accepting());
    let mut rb = dfa.resume(b.state());
    assert!(
        rb.step("comment").is_err(),
        "a second comment must be rejected after the optional slot is used"
    );
    let mut rb2 = dfa.resume(b.state());
    assert!(rb2.step("items").is_ok());
    assert!(rb2.is_accepting());
}

/// WML's `PType` is a mixed choice with unbounded repetition — every
/// state accepts every choice member, so resume must be stable under
/// long repetitions and the accepting flag must hold at every position.
#[test]
fn mixed_choice_repetition_resumes_stably() {
    let compiled = CompiledSchema::parse(WML_XSD).unwrap();
    let dfa = compiled.content_dfa("PType").unwrap();
    let members = dfa.start().expected();
    assert!(members.contains(&"b".to_string()), "{members:?}");
    let mut m = dfa.start();
    for (i, sym) in members.iter().cycle().take(24).enumerate() {
        let before = m.state();
        let mut r = dfa.resume(before);
        assert_eq!(r.expected(), m.expected(), "iteration {i}");
        assert_eq!(r.is_accepting(), m.is_accepting(), "iteration {i}");
        m.step(sym).unwrap();
        r.step(sym).unwrap();
        assert_eq!(r.state(), m.state(), "iteration {i}");
    }
    assert!(m.is_accepting());
}
