//! Metrics reconciliation: the server's exported counters must agree
//! exactly with a client-side tally of what was sent. This file holds
//! ONE test on purpose — the obs registry is process-global, so any
//! sibling test in the same binary would race its own requests into the
//! counters and turn exact reconciliation into a flaky inequality.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use serve::{Server, ServerConfig};
use webgen::SchemaRegistry;

const DEEP_NESTING: &str = include_str!("../corpora/hostile/deep_nesting.xml");

fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Value of `name{label}` (or bare `name`) in a Prometheus rendering.
fn counter_value(metrics: &str, name: &str) -> Option<u64> {
    metrics.lines().find_map(|line| {
        let line = line.trim();
        if line.starts_with('#') {
            return None;
        }
        let (key, value) = line.rsplit_once(' ')?;
        if key == name {
            value.parse().ok()
        } else {
            None
        }
    })
}

#[test]
fn exported_counters_reconcile_exactly_with_the_traffic_sent() {
    obs::install_collector(); // instrumentation is opt-in, as in the library
    let registry = Arc::new(SchemaRegistry::with_corpus().unwrap());
    let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();
    let doc = webgen::render_order_string(&webgen::generate_order(4, 3));

    // ground truth, tallied client-side as the traffic goes out
    let mut sent_by_code: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
    let mut tally = |status: u16| *sent_by_code.entry(status).or_insert(0) += 1;

    for _ in 0..3 {
        let (status, _) = post(addr, "/v1/validate/purchase-order", &doc);
        assert_eq!(status, 200);
        tally(status);
    }
    let (status, _) = post(
        addr,
        "/v1/validate/purchase-order",
        "<order><junk/></order>",
    );
    assert_eq!(status, 200); // invalid is still an answered question
    tally(status);
    let (status, _) = post(addr, "/v1/validate/no-such-schema", &doc);
    assert_eq!(status, 404);
    tally(status);
    let (status, _) = post(addr, "/v1/validate/purchase-order", DEEP_NESTING);
    assert_eq!(status, 422);
    tally(status);
    let (status, _) = request(
        addr,
        "POST /v1/validate/purchase-order HTTP/1.1\r\nHost: t\r\nContent-Length: 104857600\r\n\r\n",
    );
    assert_eq!(status, 413);
    tally(status);
    let (status, _) = request(addr, "NONSENSE\r\n\r\n");
    assert_eq!(status, 400);
    tally(status);
    for _ in 0..2 {
        let (status, _) = request(
            addr,
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
        tally(status);
    }

    // scrape AFTER the traffic; the scrape itself is counted only after
    // its body is rendered, so it does not appear in its own report
    let (status, metrics) = request(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);

    for (&code, &sent) in &sent_by_code {
        let got = counter_value(&metrics, &format!("http_requests_total{{code=\"{code}\"}}"))
            .unwrap_or_else(|| panic!("no http_requests_total for code {code} in:\n{metrics}"));
        assert_eq!(
            got, sent,
            "http_requests_total{{code=\"{code}\"}} disagrees with the {sent} requests sent"
        );
    }
    let total_sent: u64 = sent_by_code.values().sum();
    let connections =
        counter_value(&metrics, "http_connections_total").expect("http_connections_total missing");
    // every request above used Connection: close → one connection each,
    // plus the scrape's own connection (accepted before its body
    // rendered, unlike its request counter which lands after)
    assert_eq!(connections, total_sent + 1, "connection accounting drifted");
    // the validate endpoints really went through the registry
    assert!(
        metrics.contains("registry_validate_seconds"),
        "validation latency histogram missing:\n{metrics}"
    );
    // resource governance counted the two rejections (413 + 422)
    let trips = counter_value(&metrics, "limit_trips_total{kind=\"InputTooLarge\"}")
        .expect("limit_trips_total missing for InputTooLarge");
    assert_eq!(trips, 1);
    let rejected = counter_value(&metrics, "docs_rejected_total").expect("docs_rejected_total");
    assert_eq!(rejected, 2, "413 + 422 should each count one rejection");
    server.drain();
}
