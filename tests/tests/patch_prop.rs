//! Differential mutation battery: the incremental revalidator must be
//! *indistinguishable* from full revalidation.
//!
//! For randomly generated valid documents and random patch sequences,
//! after **every** patch:
//!
//! 1. the incremental verdict (accept, or the exact rejection error
//!    list with kinds and spans) equals running [`validate_document`]
//!    over the same tree patched independently with [`apply_unchecked`];
//! 2. an accepted patch leaves a document whose serialization passes
//!    [`validate_str_streaming`] cleanly;
//! 3. a rejected patch rolls back to a **byte-identical** serialization
//!    of the pre-patch document;
//! 4. when the serialize→reparse round trip is verdict-faithful (empty
//!    text nodes vanish and adjacent text merges on reparse, so it is
//!    not always), the streaming validator agrees on the error kinds.

use dom::{Document, NodeKind};
use proptest::prelude::*;
use schema::corpus::{PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;
use validator::{
    apply_unchecked, validate_document, validate_str_streaming, DomPatch, IncrementalValidator,
    NewNode, NodePath, PatchError, ValidationError,
};

// ---------------------------------------------------------------------------
// deterministic patch derivation from (op, seed) against the live tree
// ---------------------------------------------------------------------------

fn pick<T>(items: &[T], seed: u64) -> Option<&T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[(seed % items.len() as u64) as usize])
    }
}

/// All node paths in the document, bucketed by what a patch can do with
/// them. Paths are child-index chains from the document node.
struct Paths {
    texts: Vec<NodePath>,
    elements: Vec<NodePath>,
    /// parents with at least one child (targets for Remove/Replace)
    occupied: Vec<NodePath>,
}

fn collect_paths(doc: &Document) -> Paths {
    let mut paths = Paths {
        texts: Vec::new(),
        elements: Vec::new(),
        occupied: Vec::new(),
    };
    fn walk(doc: &Document, node: dom::NodeId, path: &mut NodePath, out: &mut Paths) {
        match doc.kind(node) {
            Ok(NodeKind::Text(_)) => out.texts.push(path.clone()),
            Ok(NodeKind::Element { .. }) => out.elements.push(path.clone()),
            _ => {}
        }
        if let Ok(children) = doc.child_slice(node) {
            if !children.is_empty()
                && matches!(
                    doc.kind(node),
                    Ok(NodeKind::Element { .. }) | Ok(NodeKind::Document)
                )
            {
                out.occupied.push(path.clone());
            }
            for (i, &child) in children.to_vec().iter().enumerate() {
                path.push(i);
                walk(doc, child, path, out);
                path.pop();
            }
        }
    }
    walk(doc, doc.document_node(), &mut Vec::new(), &mut paths);
    paths
}

const TEXT_POOL: &[&str] = &[
    "",
    "5",
    "99",
    "100",
    "hello world",
    "]]>",
    "939-AA",
    "1999-05-20",
    "US",
    "-3",
    "12.40",
    "not a number",
];

const ATTR_NAMES: &[&str] = &[
    "partNum",
    "orderDate",
    "country",
    "id",
    "title",
    "name",
    "align",
    "bogusAttr",
];

const ATTR_VALUES: &[&str] = &[
    "939-AA",
    "123-BC",
    "1999-05-20",
    "US",
    "not a partnum",
    "",
    "left",
    "c2",
];

fn new_node_pool() -> Vec<NewNode> {
    vec![
        NewNode::Element {
            xml: "<item partNum=\"111-AB\"><productName>Widget</productName>\
                  <quantity>3</quantity><USPrice>9.99</USPrice></item>"
                .into(),
        },
        NewNode::Element {
            xml: "<comment>generated note</comment>".into(),
        },
        NewNode::Element {
            xml: "<bogus/>".into(),
        },
        NewNode::Element {
            xml: "<shipDate>2001-01-01</shipDate>".into(),
        },
        NewNode::Element {
            xml: "<quantity>7</quantity>".into(),
        },
        NewNode::Element {
            xml: "<p>extra paragraph</p>".into(),
        },
        NewNode::Element {
            xml: "<card id=\"cx\" title=\"X\"><p>hi</p></card>".into(),
        },
        NewNode::Text("stray text".into()),
        NewNode::Text("".into()),
        NewNode::Comment("a note".into()),
        NewNode::Pi {
            target: "app".into(),
            data: "k=v".into(),
        },
    ]
}

/// Derives a concrete patch from the op selector and seed against the
/// current tree, or `None` when the tree has no viable target.
fn derive_patch(doc: &Document, op: u8, seed: u64) -> Option<DomPatch> {
    let paths = collect_paths(doc);
    let nodes = new_node_pool();
    let s2 = seed.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15;
    match op % 7 {
        0 => Some(DomPatch::SetText {
            at: pick(&paths.texts, seed)?.clone(),
            text: (*pick(TEXT_POOL, s2)?).to_string(),
        }),
        1 => Some(DomPatch::SetAttr {
            at: pick(&paths.elements, seed)?.clone(),
            name: (*pick(ATTR_NAMES, s2)?).to_string(),
            value: (*pick(ATTR_VALUES, s2 >> 7)?).to_string(),
        }),
        2 => Some(DomPatch::RemoveAttr {
            at: pick(&paths.elements, seed)?.clone(),
            name: (*pick(ATTR_NAMES, s2)?).to_string(),
        }),
        3 => Some(DomPatch::AppendChild {
            at: pick(&paths.elements, seed)?.clone(),
            child: pick(&nodes, s2)?.clone(),
        }),
        4 => {
            let at = pick(&paths.elements, seed)?.clone();
            let node = dom_node_at(doc, &at)?;
            let len = doc.child_slice(node).ok()?.len();
            Some(DomPatch::InsertChild {
                at,
                index: (s2 % (len as u64 + 1)) as usize,
                child: pick(&nodes, s2 >> 9)?.clone(),
            })
        }
        5 => {
            let at = pick(&paths.occupied, seed)?.clone();
            let node = dom_node_at(doc, &at)?;
            let len = doc.child_slice(node).ok()?.len();
            Some(DomPatch::RemoveChild {
                at,
                index: (s2 % len as u64) as usize,
            })
        }
        _ => {
            let at = pick(&paths.occupied, seed)?.clone();
            let node = dom_node_at(doc, &at)?;
            let len = doc.child_slice(node).ok()?.len();
            Some(DomPatch::ReplaceChild {
                at,
                index: (s2 % len as u64) as usize,
                child: pick(&nodes, s2 >> 11)?.clone(),
            })
        }
    }
}

fn dom_node_at(doc: &Document, path: &[usize]) -> Option<dom::NodeId> {
    let mut node = doc.document_node();
    for &i in path {
        node = *doc.child_slice(node).ok()?.get(i)?;
    }
    Some(node)
}

// ---------------------------------------------------------------------------
// the differential oracle
// ---------------------------------------------------------------------------

fn kind_label(e: &ValidationError) -> String {
    let dbg = format!("{:?}", e.kind);
    dbg.split(['(', '{', ' '])
        .next()
        .unwrap_or(&dbg)
        .to_string()
}

fn sorted_labels(errors: &[ValidationError]) -> Vec<String> {
    let mut labels: Vec<String> = errors.iter().map(kind_label).collect();
    labels.sort();
    labels.dedup();
    labels
}

/// Runs `ops` against a session over `xml`, checking every patch against
/// the three full-pass oracles. Returns (applied, rejected) for sanity.
fn run_differential(compiled: &CompiledSchema, xml: &str, ops: &[(u8, u64)]) -> (u64, u64) {
    let doc = xmlparse::parse_document(xml).expect("corpus document parses");
    let mut session = match IncrementalValidator::new(compiled.clone(), doc) {
        Ok(s) => s,
        Err(errors) => panic!("generated document must start valid: {errors:?}"),
    };

    for (step, &(op, seed)) in ops.iter().enumerate() {
        let Some(patch) = derive_patch(session.document(), op, seed) else {
            continue;
        };
        let before = dom::serialize(session.document(), session.document().document_node())
            .expect("pre-patch document serializes");

        // oracle: patch an independent clone structurally, then full-pass it
        let mut clone = session.document().clone();
        let oracle = apply_unchecked(&mut clone, &patch);
        let expected: Option<Vec<ValidationError>> = match &oracle {
            Ok(()) => Some(validate_document(compiled, &clone)),
            Err(_) => None, // structurally impossible; no verdict to compare
        };

        let verdict = session.apply(&patch);
        let after = dom::serialize(session.document(), session.document().document_node())
            .expect("post-patch document serializes");

        match (&expected, &verdict) {
            (Some(errors), Ok(())) if errors.is_empty() => {
                // accepted: session tree == independently patched tree, and
                // the serialization survives the streaming validator
                let clone_xml = dom::serialize(&clone, clone.document_node()).unwrap();
                assert_eq!(after, clone_xml, "step {step}: committed trees diverge");
                let streaming = validate_str_streaming(compiled, &after);
                assert!(
                    streaming.is_empty(),
                    "step {step}: committed document fails streaming validation: {streaming:?}"
                );
            }
            (Some(errors), Err(PatchError::Invalid(got))) if !errors.is_empty() => {
                assert_eq!(
                    got, errors,
                    "step {step}: incremental rejection diverges from full pass ({patch:?})"
                );
                assert_eq!(
                    after, before,
                    "step {step}: rejected patch did not roll back byte-identically"
                );
                // third oracle, where the round trip is verdict-faithful:
                // reparse the serialized patched clone; if a full pass over
                // the reparse still sees the same verdict, streaming must too
                if let Ok(clone_xml) = dom::serialize(&clone, clone.document_node()) {
                    if let Ok(reparsed) = xmlparse::parse_document(&clone_xml) {
                        let refull = validate_document(compiled, &reparsed);
                        if sorted_labels(&refull) == sorted_labels(errors) {
                            let streaming = validate_str_streaming(compiled, &clone_xml);
                            assert_eq!(
                                sorted_labels(&streaming),
                                sorted_labels(errors),
                                "step {step}: streaming error kinds diverge"
                            );
                        }
                    }
                }
            }
            (Some(errors), verdict) => panic!(
                "step {step}: verdict mismatch: full pass said {} but incremental said {verdict:?} \
                 for {patch:?}",
                if errors.is_empty() { "valid" } else { "invalid" },
            ),
            (None, Err(PatchError::Structure(_) | PatchError::Fragment(_))) => {
                assert_eq!(
                    after, before,
                    "step {step}: structurally rejected patch did not roll back"
                );
            }
            (None, verdict) => panic!(
                "step {step}: apply_unchecked refused {patch:?} structurally \
                 but incremental said {verdict:?}"
            ),
        }

        // the held document is valid after every patch, accepted or not
        let invariant = validate_document(compiled, session.document());
        assert!(
            invariant.is_empty(),
            "step {step}: session invariant broken: {invariant:?}"
        );
    }
    (session.applied_total(), session.rejected_total())
}

fn wml_doc(cards: usize, paras: usize) -> String {
    let mut s = String::from("<wml>");
    for c in 0..cards {
        s.push_str(&format!("<card id=\"c{c}\" title=\"Card {c}\">"));
        for p in 0..paras {
            s.push_str(&format!(
                "<p align=\"left\">para {p} <b>bold</b> tail <a href=\"#c{c}\">go</a></p>"
            ));
        }
        s.push_str("</card>");
    }
    s.push_str("</wml>");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn purchase_order_patches_match_full_revalidation(
        doc_seed in 0u64..5_000,
        item_count in 1usize..5,
        ops in prop::collection::vec((0u8..=u8::MAX, 0u64..=u64::MAX), 1..14),
    ) {
        let compiled = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
        let order = webgen::render_order_string(&webgen::generate_order(doc_seed, item_count));
        run_differential(&compiled, &order, &ops);
    }

    #[test]
    fn wml_patches_match_full_revalidation(
        cards in 1usize..4,
        paras in 0usize..4,
        ops in prop::collection::vec((0u8..=u8::MAX, 0u64..=u64::MAX), 1..14),
    ) {
        let compiled = CompiledSchema::parse(WML_XSD).unwrap();
        run_differential(&compiled, &wml_doc(cards, paras), &ops);
    }
}

/// A fixed long adversarial sequence kept outside proptest so CI always
/// exercises a deep mixed commit/reject run with both corpora.
#[test]
fn fixed_long_sequences_stay_in_lockstep() {
    let po = CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap();
    let wml = CompiledSchema::parse(WML_XSD).unwrap();
    let mut lcg = 0xDEAD_BEEF_u64;
    let mut ops = Vec::new();
    for _ in 0..120 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ops.push(((lcg >> 33) as u8, lcg.rotate_left(13)));
    }
    let order = webgen::render_order_string(&webgen::generate_order(7, 4));
    let (applied, rejected) = run_differential(&po, &order, &ops);
    assert!(applied > 0, "sequence never committed a patch");
    assert!(rejected > 0, "sequence never rejected a patch");
    let (applied, rejected) = run_differential(&wml, &wml_doc(2, 2), &ops);
    assert!(applied > 0, "WML sequence never committed a patch");
    assert!(rejected > 0, "WML sequence never rejected a patch");
}
