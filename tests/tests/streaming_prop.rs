//! Differential property tests for the streaming validator: on any
//! well-formed document — valid, mutated, or arbitrary junk that happens
//! to parse — `validator::validate_str_streaming` and
//! `validator::validate_document` must produce the *same* error list
//! (kinds and spans), and in particular the same valid/invalid verdict.

use proptest::prelude::*;
use schema::corpus::{PURCHASE_ORDER_XML, PURCHASE_ORDER_XSD, WML_XSD};
use schema::CompiledSchema;
use validator::{validate_document, validate_str_streaming, ValidationError, ValidationErrorKind};

fn po() -> CompiledSchema {
    CompiledSchema::parse(PURCHASE_ORDER_XSD).unwrap()
}

fn wml() -> CompiledSchema {
    CompiledSchema::parse(WML_XSD).unwrap()
}

/// Runs both validators on the same well-formed source and returns the
/// (asserted-identical) error list.
fn agree(c: &CompiledSchema, src: &str) -> Vec<ValidationError> {
    let streamed = validate_str_streaming(c, src);
    let doc = xmlparse::parse_document(src).expect("well-formed input");
    let treed = validate_document(c, &doc);
    assert_eq!(streamed, treed, "validators disagree on:\n{src}");
    streamed
}

/// Purchase-order mutations, each of which individually invalidates the
/// paper's Fig. 1 document while keeping it well-formed.
const PO_MUTATIONS: &[(&str, &str)] = &[
    ("<zip>90952</zip>", "<zip>not a number</zip>"),
    ("partNum=\"872-AA\"", "partNum=\"oops\""),
    ("<quantity>1</quantity>", "<quantity>900</quantity>"),
    ("country=\"US\"", "country=\"DE\""),
    ("orderDate=\"1999-10-20\"", "orderDate=\"soon\""),
    ("<state>CA</state>", ""),
    ("<city>Mill Valley</city>", "<town>Mill Valley</town>"),
    ("<items>", "<items>loose text"),
    (
        "<purchaseOrder orderDate",
        "<purchaseOrder bogus=\"1\" orderDate",
    ),
    (" partNum=\"926-AA\"", ""),
];

/// WML page mutations over the rendered directory page; index 0 leaves
/// the page valid, the rest each invalidate it.
fn mutate_wml_page(page: &str, mutation: usize) -> String {
    match mutation {
        0 => page.to_string(),
        1 => page.replacen("<card", "stray text<card", 1),
        2 => page.replacen("id=\"dirs\"", "id=\"dirs\" bogus=\"x\"", 1),
        3 => page.replacen("<br/>", "<bogus/>", 1),
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated (valid) orders: both validators return no errors.
    #[test]
    fn valid_orders_agree(seed in 0u64..500, items in 0usize..15) {
        let c = po();
        let order = webgen::generate_order(seed, items);
        let xml = webgen::render_order_string(&order);
        let errors = agree(&c, &xml);
        prop_assert!(errors.is_empty(), "{errors:#?}");
    }

    /// One or two random mutations of the paper document: both
    /// validators reject it, with identical error lists.
    #[test]
    fn mutated_orders_agree(
        picks in prop::collection::vec(0usize..10, 1..3),
    ) {
        let c = po();
        let mut src = PURCHASE_ORDER_XML.to_string();
        for &pick in &picks {
            let (from, to) = PO_MUTATIONS[pick];
            src = src.replace(from, to);
        }
        let errors = agree(&c, &src);
        prop_assert!(!errors.is_empty(), "mutations {picks:?} escaped both validators");
    }

    /// Rendered WML directory pages, pristine or mutated, for arbitrary
    /// (markup-hostile) directory names: identical error lists, and the
    /// right verdict on both sides.
    #[test]
    fn wml_pages_agree(
        dirs in prop::collection::vec("[a-zA-Z0-9 <>&\"']{1,12}", 0..6),
        mutation in 0usize..4,
    ) {
        let c = wml();
        let data = webgen::DirectoryPageData {
            sub_dirs: dirs,
            current_dir: "/media/archive".into(),
            parent_dir: "/media".into(),
        };
        let page = mutate_wml_page(&webgen::render_string(&data), mutation);
        let errors = agree(&c, &page);
        prop_assert_eq!(mutation == 0, errors.is_empty(), "{:#?}", errors);
    }

    /// Arbitrary short inputs never panic either validator; when the
    /// input parses, the validators agree, and when it does not, the
    /// streaming entry point reports it as not well-formed.
    #[test]
    fn arbitrary_input_agrees_or_reports_malformed(input in ".{0,48}") {
        let c = po();
        let streamed = validate_str_streaming(&c, &input);
        match xmlparse::parse_document(&input) {
            Ok(doc) => prop_assert_eq!(streamed, validate_document(&c, &doc)),
            Err(_) => prop_assert!(matches!(
                streamed.last().unwrap().kind,
                ValidationErrorKind::NotWellFormed(_)
            )),
        }
    }
}
