//! Socket-level battery for the `/v1/session` endpoints: create →
//! patch → invalid patch, with the wire verdict proven identical to the
//! library's [`webgen::DocSession`] for the same document and patch;
//! plus session expiry, capacity refusal, and a graceful drain that
//! completes an in-flight patch request.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use limits::Limits;
use serve::{Server, ServerConfig};
use validator::{DomPatch, PatchError};
use webgen::SchemaRegistry;

/// A compact purchase order with fully deterministic child indexes:
/// root `[0]`, items `[0,2]`, first item `[0,2,0]`, its quantity
/// `[0,2,0,1]`, the quantity text `[0,2,0,1,0]`.
const PO_DOC: &str = "<purchaseOrder orderDate=\"1999-10-20\">\
    <shipTo country=\"US\"><name>Alice</name><street>123 Maple</street>\
    <city>Mill Valley</city><state>CA</state><zip>90952</zip></shipTo>\
    <billTo country=\"US\"><name>Robert</name><street>8 Oak</street>\
    <city>Old Town</city><state>PA</state><zip>95819</zip></billTo>\
    <items><item partNum=\"872-AA\"><productName>Lawnmower</productName>\
    <quantity>1</quantity><USPrice>148.95</USPrice></item></items>\
    </purchaseOrder>";

const NEW_ITEM: &str = "<item partNum=\"926-AA\"><productName>Baby Monitor</productName>\
    <quantity>1</quantity><USPrice>39.98</USPrice></item>";

fn corpus_server(cfg: ServerConfig) -> (Arc<SchemaRegistry>, Server) {
    let registry = Arc::new(SchemaRegistry::with_corpus().unwrap());
    let server = Server::start(registry.clone(), "127.0.0.1:0", cfg).unwrap();
    (registry, server)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<u8>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .unwrap();
    let mut len = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            len = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).unwrap();
    (status, body)
}

fn request(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let (status, body) = read_response(&mut reader);
    (status, String::from_utf8(body).unwrap())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn delete(addr: SocketAddr, path: &str) -> (u16, String) {
    request(
        addr,
        &format!("DELETE {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

/// Creates a session over the wire and returns its id.
fn open_wire_session(addr: SocketAddr, schema: &str, doc: &str) -> String {
    let (status, body) = post(addr, &format!("/v1/session/{schema}"), doc);
    assert_eq!(status, 201, "session create failed: {body}");
    let parsed = serve::json::parse_json(&body).unwrap();
    parsed.get("session").unwrap().as_str().unwrap().to_string()
}

#[test]
fn session_lifecycle_matches_library_verdicts() {
    let (registry, server) = corpus_server(ServerConfig::default());
    let addr = server.addr();
    let id = open_wire_session(addr, "purchase-order", PO_DOC);

    // the library twin: same schema, same document, same patches
    let mut twin = registry
        .open_session("purchase-order", PO_DOC, Limits::default())
        .unwrap();

    // a committing patch reports locality counters
    let append = format!(
        "{{\"op\":\"append_child\",\"path\":[0,2],\"node\":{{\"kind\":\"element\",\"xml\":{}}}}}",
        {
            // escape_into renders a complete JSON string, quotes included
            let mut s = String::new();
            serve::json::escape_into(&mut s, NEW_ITEM);
            s
        }
    );
    let (status, body) = post(addr, &format!("/v1/session/{id}/patch"), &append);
    assert_eq!(status, 200, "{body}");
    let parsed = serve::json::parse_json(&body).unwrap();
    assert_eq!(parsed.get("applied").and_then(|v| v.as_str()), None);
    assert!(body.contains("\"applied\":true"), "{body}");
    assert!(body.contains("\"op\":\"append_child\""), "{body}");
    twin.apply(&DomPatch::AppendChild {
        at: vec![0, 2],
        child: validator::NewNode::Element {
            xml: NEW_ITEM.into(),
        },
    })
    .unwrap();
    let rechecked = parsed.get("nodes_rechecked").unwrap().as_usize().unwrap();
    assert_eq!(rechecked, twin.validator().nodes_rechecked());

    // an invalid patch comes back 200 {"applied":false, …} with the
    // exact typed error list the library reports
    let bad = "{\"op\":\"set_text\",\"path\":[0,2,0,1,0],\"text\":\"900\"}";
    let (status, body) = post(addr, &format!("/v1/session/{id}/patch"), bad);
    assert_eq!(status, 200, "{body}");
    let errors = match twin.apply(&DomPatch::SetText {
        at: vec![0, 2, 0, 1, 0],
        text: "900".into(),
    }) {
        Err(PatchError::Invalid(errors)) => errors,
        other => panic!("library verdict drifted: {other:?}"),
    };
    let expected = format!(
        "{{\"applied\":false,{}",
        &serve::json::verdict_json("purchase-order", &errors)[1..]
    );
    assert_eq!(body, expected, "wire rejection drifted from the library");

    // the held document is the patched-and-rolled-back one: identical to
    // the twin's, and still schema-valid
    let (status, xml) = get(addr, &format!("/v1/session/{id}"));
    assert_eq!(status, 200);
    assert_eq!(xml, twin.to_xml(), "wire document drifted from the library");
    assert!(registry
        .validate_streaming("purchase-order", &xml)
        .unwrap()
        .is_empty());

    // structurally impossible patches are 400, not 200-rejected
    let (status, body) = post(
        addr,
        &format!("/v1/session/{id}/patch"),
        "{\"op\":\"remove_child\",\"path\":[0],\"index\":99}",
    );
    assert_eq!(status, 400, "{body}");

    // malformed JSON and unknown ops are 400 with a typed message
    for bad in [
        "not json",
        "{}",
        "{\"op\":\"warp\",\"path\":[0]}",
        "{\"op\":\"set_text\",\"path\":\"zero\",\"text\":\"x\"}",
        "{\"op\":\"set_text\",\"path\":[0,-1],\"text\":\"x\"}",
    ] {
        let (status, body) = post(addr, &format!("/v1/session/{id}/patch"), bad);
        assert_eq!(status, 400, "{bad:?} → {body}");
    }

    // delete closes it; everything afterwards is 404
    let (status, body) = delete(addr, &format!("/v1/session/{id}"));
    assert_eq!(status, 200);
    assert!(body.contains("\"closed\":true"), "{body}");
    assert_eq!(delete(addr, &format!("/v1/session/{id}")).0, 404);
    assert_eq!(get(addr, &format!("/v1/session/{id}")).0, 404);
    assert_eq!(post(addr, &format!("/v1/session/{id}/patch"), bad).0, 404);

    server.drain();
}

#[test]
fn session_create_failures_are_typed() {
    let (registry, server) = corpus_server(ServerConfig::default());
    let addr = server.addr();

    // unknown schema
    let (status, _) = post(addr, "/v1/session/nope", PO_DOC);
    assert_eq!(status, 404);

    // invalid document: a session cannot open, and the error list is the
    // same one /v1/validate would produce
    let invalid = PO_DOC.replace("872-AA", "oops");
    let (status, body) = post(addr, "/v1/session/purchase-order", &invalid);
    assert_eq!(status, 422, "{body}");
    let expected_errors = registry
        .validate_streaming("purchase-order", &invalid)
        .unwrap();
    assert_eq!(
        body,
        serve::json::verdict_json("purchase-order", &expected_errors)
    );

    // malformed XML
    let (status, body) = post(addr, "/v1/session/purchase-order", "<purchaseOrder>");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("NotWellFormed"), "{body}");

    // wrong method on the session routes is 405
    let (status, _) = get(addr, "/v1/session");
    assert!(status == 404 || status == 405, "got {status}");
    let (status, _) = request(
        addr,
        "PUT /v1/session/1/patch HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);

    server.drain();
}

#[test]
fn session_capacity_and_idle_expiry() {
    let cfg = ServerConfig {
        max_sessions: 2,
        session_idle: Duration::from_millis(80),
        ..ServerConfig::default()
    };
    let (_registry, server) = corpus_server(cfg);
    let addr = server.addr();

    let _a = open_wire_session(addr, "purchase-order", PO_DOC);
    let b = open_wire_session(addr, "purchase-order", PO_DOC);

    // at capacity: refused with 503, not an eviction of a live session
    let (status, body) = post(addr, "/v1/session/purchase-order", PO_DOC);
    assert_eq!(status, 503, "{body}");
    // the parked sessions still answer
    assert_eq!(get(addr, &format!("/v1/session/{b}")).0, 200);

    // past the idle TTL both sessions are swept on the next access and
    // capacity frees up
    thread::sleep(Duration::from_millis(160));
    let c = open_wire_session(addr, "purchase-order", PO_DOC);
    assert_eq!(get(addr, &format!("/v1/session/{c}")).0, 200);
    // the expired ones are gone
    assert_eq!(get(addr, &format!("/v1/session/{b}")).0, 404);

    server.drain();
}

#[test]
fn drain_completes_in_flight_patch_requests() {
    let (_registry, server) = corpus_server(ServerConfig::default());
    let addr = server.addr();
    let id = open_wire_session(addr, "purchase-order", PO_DOC);

    // start a patch request but hold back the final body byte so it is
    // in flight when the drain begins
    let body = "{\"op\":\"set_attr\",\"path\":[0],\"name\":\"orderDate\",\"value\":\"2000-01-01\"}";
    let head = format!(
        "POST /v1/session/{id}/patch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(head.as_bytes()).unwrap();
    stream
        .write_all(&body.as_bytes()[..body.len() - 1])
        .unwrap();
    stream.flush().unwrap();

    let finisher = thread::spawn(move || {
        thread::sleep(Duration::from_millis(120));
        stream
            .write_all(&body.as_bytes()[body.len() - 1..])
            .unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        read_response(&mut reader)
    });

    // drain while the request above is mid-body: it must still complete
    server.drain();
    let (status, resp) = finisher.join().unwrap();
    let resp = String::from_utf8(resp).unwrap();
    assert_eq!(status, 200, "in-flight patch dropped during drain: {resp}");
    assert!(resp.contains("\"applied\":true"), "{resp}");
}
