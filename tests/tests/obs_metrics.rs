//! End-to-end agreement between the metrics the `obs` layer collects and
//! ground truth computed directly by the pipeline, on the purchase-order
//! corpus — the xmlstat workload in test form.
//!
//! The obs registry is process-global, so every test here takes
//! `OBS_LOCK` and asserts on *deltas* around the pipeline call it
//! exercises, never on absolute values.

use std::collections::BTreeMap;
use std::sync::Mutex;

use pool::ThreadPool;
use schema::{corpus, CompiledSchema};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn counter(name: &str) -> u64 {
    obs::metrics().counter(name, "").get()
}

fn labeled(name: &str, labels: &[(&str, &str)]) -> u64 {
    obs::metrics().counter_with(name, "", labels).get()
}

/// A purchase order with a wrong child order, a bogus date, and an
/// unknown element — exercising several distinct error kinds at once.
const BROKEN_PO: &str = r#"<purchaseOrder orderDate="not-a-date">
  <billTo country="US">
    <name>B. Smith</name><street>8 Oak</street><city>Old Town</city>
    <state>PA</state><zip>95819</zip>
  </billTo>
  <shipTo country="US">
    <name>A. Smith</name><street>123 Maple</street><city>Mill Valley</city>
    <state>CA</state><zip>90952</zip>
  </shipTo>
  <bogus/>
</purchaseOrder>"#;

fn by_kind(errors: &[validator::ValidationError]) -> BTreeMap<&'static str, u64> {
    let mut map = BTreeMap::new();
    for e in errors {
        *map.entry(e.kind.label()).or_insert(0) += 1;
    }
    map
}

#[test]
fn tree_validation_error_counters_match_ground_truth() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::install_collector();
    let compiled = CompiledSchema::parse(corpus::PURCHASE_ORDER_XSD).unwrap();
    let doc = xmlparse::parse_document(BROKEN_PO).unwrap();

    // ground truth first, with obs on: the instrumented call *is* the
    // measured call, so run it once and diff counters around it
    let expected = by_kind(&validator::validate_document(&compiled, &doc));
    assert!(!expected.is_empty(), "corpus document should be invalid");
    let before: BTreeMap<_, _> = expected
        .keys()
        .map(|k| {
            (
                *k,
                labeled("validator_errors_total", &[("kind", k), ("mode", "tree")]),
            )
        })
        .collect();
    let errors = validator::validate_document(&compiled, &doc);
    assert_eq!(by_kind(&errors), expected);
    for (kind, count) in &expected {
        let after = labeled(
            "validator_errors_total",
            &[("kind", kind), ("mode", "tree")],
        );
        assert_eq!(
            after - before[kind],
            *count,
            "tree error counter for kind {kind}"
        );
    }
}

#[test]
fn streaming_validation_counters_match_ground_truth() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::install_collector();
    let compiled = CompiledSchema::parse(corpus::PURCHASE_ORDER_XSD).unwrap();

    let expected = by_kind(&validator::validate_str_streaming(&compiled, BROKEN_PO));
    assert!(!expected.is_empty());
    let before: BTreeMap<_, _> = expected
        .keys()
        .map(|k| {
            (
                *k,
                labeled(
                    "validator_errors_total",
                    &[("kind", k), ("mode", "streaming")],
                ),
            )
        })
        .collect();
    let depth_before = obs::metrics()
        .histogram("validator_stream_max_depth", "", obs::DEPTH_BUCKETS)
        .count();
    let errors = validator::validate_str_streaming(&compiled, BROKEN_PO);
    assert_eq!(by_kind(&errors), expected);
    for (kind, count) in &expected {
        let after = labeled(
            "validator_errors_total",
            &[("kind", kind), ("mode", "streaming")],
        );
        assert_eq!(
            after - before[kind],
            *count,
            "streaming error counter for kind {kind}"
        );
    }
    let depth_after = obs::metrics()
        .histogram("validator_stream_max_depth", "", obs::DEPTH_BUCKETS)
        .count();
    assert_eq!(
        depth_after - depth_before,
        1,
        "one depth observation per run"
    );
}

#[test]
fn parser_counters_match_the_document() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::install_collector();

    // count events with an explicit reader, then diff around parse_document
    let mut reader = xmlparse::Reader::new(corpus::PURCHASE_ORDER_XML);
    let mut ground_truth_events = 0u64;
    while !matches!(reader.next_event().unwrap(), xmlparse::Event::Eof) {
        ground_truth_events += 1;
    }
    drop(reader);

    let events_before = counter("xmlparse_events_total");
    let bytes_before = counter("xmlparse_bytes_total");
    let errors_before = counter("xmlparse_errors_total");
    xmlparse::parse_document(corpus::PURCHASE_ORDER_XML).unwrap();
    assert_eq!(
        counter("xmlparse_events_total") - events_before,
        ground_truth_events
    );
    assert_eq!(
        counter("xmlparse_bytes_total") - bytes_before,
        corpus::PURCHASE_ORDER_XML.len() as u64
    );
    assert_eq!(counter("xmlparse_errors_total"), errors_before);

    // a malformed document moves the error counter
    assert!(xmlparse::parse_document("<a><b></a>").is_err());
    assert_eq!(counter("xmlparse_errors_total") - errors_before, 1);
}

/// Counters aggregated from concurrent pool workers must exactly match
/// single-threaded ground truth on the purchase-order corpus: no lost
/// updates under the 8-way race, histograms whose counts and cumulative
/// buckets sum to the number of observations.
#[test]
fn parallel_batch_counters_match_single_threaded_ground_truth() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::install_collector();
    let registry = webgen::SchemaRegistry::new();
    registry
        .register("po-parallel", corpus::PURCHASE_ORDER_XSD)
        .unwrap();

    // A batch with plenty of both valid and invalid documents.
    let docs_owned: Vec<String> = (0..24)
        .map(|i| {
            if i % 3 == 0 {
                BROKEN_PO.to_string()
            } else {
                webgen::render_order_string(&webgen::generate_order(i as u64, 5))
            }
        })
        .collect();
    let docs: Vec<&str> = docs_owned.iter().map(String::as_str).collect();

    // Single-threaded ground truth: the sequential batch, and the exact
    // per-kind error population it implies.
    let sequential = registry
        .validate_batch_streaming("po-parallel", &docs)
        .unwrap();
    let mut expected: BTreeMap<&'static str, u64> = BTreeMap::new();
    for errors in &sequential {
        for (kind, n) in by_kind(errors) {
            *expected.entry(kind).or_insert(0) += n;
        }
    }
    assert!(!expected.is_empty(), "batch must contain invalid documents");

    let error_counters_before: BTreeMap<_, _> = expected
        .keys()
        .map(|k| {
            (
                *k,
                labeled(
                    "validator_errors_total",
                    &[("kind", k), ("mode", "streaming")],
                ),
            )
        })
        .collect();
    let latency = obs::metrics().histogram_with(
        "registry_validate_seconds",
        "",
        &[("schema", "po-parallel")],
        obs::DURATION_BUCKETS,
    );
    let latency_before = latency.count();
    let batches_before = counter("pool_batches_total");
    let jobs_before: u64 = (0..8)
        .map(|w| labeled("pool_jobs_total", &[("worker", &w.to_string())]))
        .sum();
    let waits_before: u64 = (0..8)
        .map(|w| {
            obs::metrics()
                .histogram_with(
                    "pool_queue_wait_seconds",
                    "",
                    &[("worker", &w.to_string())],
                    obs::DURATION_BUCKETS,
                )
                .count()
        })
        .sum();

    // The measured run: 8 concurrent workers over the same batch.
    let pool = ThreadPool::new(8);
    let parallel = registry
        .validate_batch_streaming_parallel("po-parallel", &docs, &pool)
        .unwrap();
    assert_eq!(parallel, sequential, "parallel result must be identical");

    // Error counters: concurrent workers lost no updates.
    for (kind, count) in &expected {
        let after = labeled(
            "validator_errors_total",
            &[("kind", kind), ("mode", "streaming")],
        );
        assert_eq!(
            after - error_counters_before[kind],
            *count,
            "streaming error counter for kind {kind} under 8 workers"
        );
    }

    // Per-document latency histogram: one observation per document, and
    // the cumulative +Inf bucket agrees with the count (sums correctly).
    assert_eq!(latency.count() - latency_before, docs.len() as u64);
    let buckets = latency.cumulative_buckets();
    assert_eq!(buckets.last().unwrap().1, latency.count());

    // Pool accounting, flushed once per batch: the per-worker job
    // counters and queue-wait observations sum to exactly one per
    // document across the 8 workers.
    assert_eq!(counter("pool_batches_total") - batches_before, 1);
    let jobs_after: u64 = (0..8)
        .map(|w| labeled("pool_jobs_total", &[("worker", &w.to_string())]))
        .sum();
    assert_eq!(jobs_after - jobs_before, docs.len() as u64);
    let waits_after: u64 = (0..8)
        .map(|w| {
            obs::metrics()
                .histogram_with(
                    "pool_queue_wait_seconds",
                    "",
                    &[("worker", &w.to_string())],
                    obs::DURATION_BUCKETS,
                )
                .count()
        })
        .sum();
    assert_eq!(waits_after - waits_before, docs.len() as u64);
}

#[test]
fn registry_and_facet_counters_move() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::install_collector();

    let hits_before = labeled("registry_get_total", &[("result", "hit")]);
    let misses_before = labeled("registry_get_total", &[("result", "miss")]);
    let facets_before = counter("schema_facet_checks_total");

    let registry = webgen::SchemaRegistry::new();
    registry
        .register("purchase-order", corpus::PURCHASE_ORDER_XSD)
        .unwrap();
    assert!(registry.get("purchase-order").is_some());
    assert!(registry.get("absent").is_none());
    let errors = registry
        .validate_streaming("purchase-order", corpus::PURCHASE_ORDER_XML)
        .unwrap();
    assert!(errors.is_empty(), "{errors:#?}");

    // two hits: the explicit get plus the one inside validate_streaming
    assert_eq!(
        labeled("registry_get_total", &[("result", "hit")]) - hits_before,
        2
    );
    assert_eq!(
        labeled("registry_get_total", &[("result", "miss")]) - misses_before,
        1
    );
    // the Fig. 1 document carries facet-constrained values (SKU, zip)
    assert!(counter("schema_facet_checks_total") > facets_before);
}
