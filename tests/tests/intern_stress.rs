//! Concurrency stress tests for the process-global content-model DFA
//! intern table: N threads compiling overlapping schemas simultaneously
//! must (a) end up sharing pointer-equal `Arc<ContentDfa>`s for equal
//! content models, (b) compile each distinct model exactly once (per the
//! `obs` DFA-compile counter), and (c) never deadlock under repeated
//! `warm()` + validate interleavings.
//!
//! The obs registry and the intern table are process-global, so the
//! tests serialize on `OBS_LOCK`, assert on counter *deltas*, and use
//! element/type names unique to each test so a model can never have been
//! interned by another test in this binary beforehand.

use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use schema::CompiledSchema;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn compiled_total() -> u64 {
    obs::metrics()
        .counter("schema_dfa_compiled_total", "")
        .get()
}

/// Two schemas that overlap: `SharedT` is written identically in both
/// (one distinct model), `OnlyA`/`OnlyB` differ (two more), and the
/// empty content model of the leaf types adds one. Element names carry a
/// test-unique prefix so nothing here is interned before the test runs.
fn overlapping_schemas(prefix: &str) -> (String, String) {
    let shared = format!(
        r#"<xsd:complexType name="SharedT">
             <xsd:sequence>
               <xsd:element name="{prefix}A" type="xsd:string"/>
               <xsd:element name="{prefix}B" type="xsd:string"/>
               <xsd:element name="{prefix}C" type="xsd:string" minOccurs="0"/>
             </xsd:sequence>
           </xsd:complexType>"#
    );
    let a = format!(
        r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
             <xsd:element name="{prefix}Root" type="SharedT"/>
             {shared}
             <xsd:complexType name="OnlyA">
               <xsd:sequence>
                 <xsd:element name="{prefix}A" type="xsd:string" maxOccurs="unbounded"/>
               </xsd:sequence>
             </xsd:complexType>
           </xsd:schema>"#
    );
    let b = format!(
        r#"<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
             <xsd:element name="{prefix}Root" type="SharedT"/>
             {shared}
             <xsd:complexType name="OnlyB">
               <xsd:choice>
                 <xsd:element name="{prefix}A" type="xsd:string"/>
                 <xsd:element name="{prefix}B" type="xsd:string"/>
               </xsd:choice>
             </xsd:complexType>
           </xsd:schema>"#
    );
    (a, b)
}

#[test]
fn racing_threads_intern_each_distinct_model_exactly_once() {
    let _guard = OBS_LOCK.lock().unwrap();
    obs::install_collector();
    let (xsd_a, xsd_b) = overlapping_schemas("ixa");
    let before = compiled_total();

    // 8 threads, each compiling its own copy of both schemas and forcing
    // every DFA, all released through one barrier to maximize racing.
    let barrier = Arc::new(Barrier::new(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let (xsd_a, xsd_b) = (xsd_a.clone(), xsd_b.clone());
            let barrier = barrier.clone();
            thread::spawn(move || {
                let a = CompiledSchema::parse(&xsd_a).unwrap();
                let b = CompiledSchema::parse(&xsd_b).unwrap();
                barrier.wait();
                let da = a.content_dfa("SharedT").unwrap();
                let db = b.content_dfa("SharedT").unwrap();
                let oa = a.content_dfa("OnlyA").unwrap();
                let ob = b.content_dfa("OnlyB").unwrap();
                (da, db, oa, ob)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // (a) equal content models yield pointer-equal automata — across
    // schemas and across every racing thread
    let (first_da, ..) = &results[0];
    for (da, db, oa, ob) in &results {
        assert!(da.ptr_eq(db), "SharedT must be interned across schemas");
        assert!(
            da.ptr_eq(first_da),
            "SharedT must be interned across threads"
        );
        assert!(!oa.ptr_eq(ob), "distinct models must stay distinct");
    }

    // (b) exactly one compilation per distinct model: SharedT, OnlyA,
    // OnlyB — no double compiles under the race, no lost counts
    assert_eq!(
        compiled_total() - before,
        3,
        "each distinct content model must compile exactly once"
    );
    obs::shutdown();
}

#[test]
fn repeated_warm_and_validate_interleavings_do_not_deadlock() {
    let _guard = OBS_LOCK.lock().unwrap();
    let (xsd_a, xsd_b) = overlapping_schemas("iwk");
    let a = CompiledSchema::parse(&xsd_a).unwrap();
    let b = CompiledSchema::parse(&xsd_b).unwrap();
    let doc = "<iwkRoot><iwkA>x</iwkA><iwkB>y</iwkB></iwkRoot>";
    let bad = "<iwkRoot><iwkB>y</iwkB></iwkRoot>";

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let (a, b) = (a.clone(), b.clone());
            thread::spawn(move || {
                for i in 0..50 {
                    // warmers and validators interleave on the same
                    // caches and the same intern table
                    if (t + i) % 2 == 0 {
                        a.warm();
                        b.warm();
                    }
                    assert!(validator::validate_str_streaming(&a, doc).is_empty());
                    assert!(!validator::validate_str_streaming(&b, bad).is_empty());
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // both schemas ended fully warmed and agreeing with a fresh compile
    let fresh = CompiledSchema::parse(&xsd_a).unwrap();
    assert!(fresh
        .content_dfa("SharedT")
        .unwrap()
        .ptr_eq(&a.content_dfa("SharedT").unwrap()));
}
